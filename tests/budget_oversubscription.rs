//! Oversubscription regression: during a full pipeline run with nested
//! parallel stages (batch joins × soft-join scans, RIFS rounds × forest
//! fits × blocked linalg, the parallel τ-sweep), the total number of live
//! workers — spawned workers plus the calling thread — must never exceed
//! the work budget.
//!
//! This file holds exactly one `#[test]` on purpose: it reads the *global*
//! permit pool's instrumentation counters, and a sibling test running in
//! the same process would add its own spawns to the measurement.

use arda::prelude::*;
use arda_par::{
    live_spawned_workers, peak_spawned_workers, reset_spawn_counters, set_default_threads,
    total_spawned_workers,
};

#[test]
fn pipeline_never_exceeds_work_budget() {
    let sc = arda::synth::taxi(&ScenarioConfig {
        n_rows: 140,
        n_decoys: 3,
        seed: 31,
    });
    let repo = Repository::from_tables(sc.repository.clone());
    let config = ArdaConfig {
        selector: SelectorKind::Rifs(RifsConfig {
            repeats: 4,
            rf_trees: 10,
            ..Default::default()
        }),
        seed: 31,
        ..Default::default()
    };

    for budget in [3usize, 8] {
        set_default_threads(budget);
        reset_spawn_counters();
        let report = Arda::new(config.clone())
            .run(&sc.base, &repo, &sc.target)
            .unwrap();
        assert!(report.joins_executed > 0, "budget={budget}: pipeline ran");

        let peak = peak_spawned_workers();
        assert!(
            peak < budget,
            "budget={budget}: peak {peak} spawned workers + caller exceeds the budget"
        );
        assert!(
            total_spawned_workers() > 0,
            "budget={budget}: the parallel paths never engaged, the test has no teeth"
        );
        assert_eq!(
            live_spawned_workers(),
            0,
            "budget={budget}: every permit must be returned after the run"
        );
    }

    // A one-wide budget must never spawn at all, anywhere in the pipeline.
    set_default_threads(1);
    reset_spawn_counters();
    Arda::new(config.clone())
        .run(&sc.base, &repo, &sc.target)
        .unwrap();
    assert_eq!(
        total_spawned_workers(),
        0,
        "budget=1: nested stages must all run inline"
    );
}
