//! Integration tests spanning the whole workspace: synthetic scenarios →
//! discovery → join plans → joins → imputation → featurization → selection
//! → final estimate.

use arda::prelude::*;

fn fast_rifs() -> SelectorKind {
    SelectorKind::Rifs(RifsConfig {
        repeats: 4,
        rf_trees: 10,
        ..Default::default()
    })
}

#[test]
fn taxi_pipeline_beats_base_and_keeps_rows() {
    let sc = arda::synth::taxi(&ScenarioConfig {
        n_rows: 150,
        n_decoys: 5,
        seed: 0,
    });
    let repo = Repository::from_tables(sc.repository.clone());
    let report = Arda::new(ArdaConfig {
        selector: fast_rifs(),
        ..Default::default()
    })
    .run(&sc.base, &repo, &sc.target)
    .unwrap();
    assert_eq!(
        report.augmented.n_rows(),
        sc.base.n_rows(),
        "LEFT semantics: no fan-out"
    );
    assert!(
        report.augmented_score > report.base_score,
        "augmentation must help: {} vs {}",
        report.augmented_score,
        report.base_score
    );
    // Every base column must survive.
    for col in sc.base.columns() {
        assert!(
            report.augmented.column(col.name()).is_ok(),
            "{} retained",
            col.name()
        );
    }
}

#[test]
fn pickup_soft_join_pipeline_runs() {
    let sc = arda::synth::pickup(&ScenarioConfig {
        n_rows: 120,
        n_decoys: 3,
        seed: 1,
    });
    let repo = Repository::from_tables(sc.repository.clone());
    let report = Arda::new(ArdaConfig {
        selector: fast_rifs(),
        ..Default::default()
    })
    .run(&sc.base, &repo, &sc.target)
    .unwrap();
    assert!(report.joins_executed >= 1);
    assert!(report.augmented_score.is_finite());
}

#[test]
fn poverty_co_predictors_need_budget_join() {
    let sc = arda::synth::poverty(&ScenarioConfig {
        n_rows: 200,
        n_decoys: 4,
        seed: 2,
    });
    let repo = Repository::from_tables(sc.repository.clone());
    let budget = Arda::new(ArdaConfig {
        selector: SelectorKind::Ranking(RankingMethod::RandomForest),
        join_plan: JoinPlan::Budget { budget: None },
        seed: 2,
        ..Default::default()
    })
    .run(&sc.base, &repo, &sc.target)
    .unwrap();
    assert!(
        budget.augmented_score > budget.base_score,
        "budget join finds the education × employment interaction: {} vs {}",
        budget.augmented_score,
        budget.base_score
    );
}

#[test]
fn school_classification_improves_accuracy() {
    let sc = arda::synth::school(
        &ScenarioConfig {
            n_rows: 220,
            n_decoys: 5,
            seed: 3,
        },
        false,
    );
    let repo = Repository::from_tables(sc.repository.clone());
    let report = Arda::new(ArdaConfig {
        selector: fast_rifs(),
        seed: 3,
        ..Default::default()
    })
    .run(&sc.base, &repo, &sc.target)
    .unwrap();
    assert!(report.base_score > 0.4, "base sane: {}", report.base_score);
    assert!(
        report.augmented_score >= report.base_score,
        "augmentation helps classification: {} vs {}",
        report.augmented_score,
        report.base_score
    );
}

#[test]
fn all_join_plans_produce_valid_outputs() {
    let sc = arda::synth::taxi(&ScenarioConfig {
        n_rows: 100,
        n_decoys: 3,
        seed: 4,
    });
    let repo = Repository::from_tables(sc.repository.clone());
    for plan in [
        JoinPlan::Table,
        JoinPlan::Budget { budget: Some(20) },
        JoinPlan::FullMaterialization,
    ] {
        let report = Arda::new(ArdaConfig {
            selector: SelectorKind::Ranking(RankingMethod::RandomForest),
            join_plan: plan,
            seed: 4,
            ..Default::default()
        })
        .run(&sc.base, &repo, &sc.target)
        .unwrap();
        assert_eq!(report.augmented.n_rows(), 100, "{plan:?} preserves rows");
        assert!(report.augmented_score.is_finite(), "{plan:?} scored");
    }
}

#[test]
fn coreset_methods_flow_through_pipeline() {
    let sc = arda::synth::school(
        &ScenarioConfig {
            n_rows: 300,
            n_decoys: 2,
            seed: 5,
        },
        false,
    );
    let repo = Repository::from_tables(sc.repository.clone());
    for method in [CoresetMethod::Uniform, CoresetMethod::Stratified] {
        let report = Arda::new(ArdaConfig {
            selector: SelectorKind::Ranking(RankingMethod::FTest),
            coreset: CoresetSpec {
                method,
                size: Some(150),
                seed: 5,
            },
            seed: 5,
            ..Default::default()
        })
        .run(&sc.base, &repo, &sc.target)
        .unwrap();
        assert_eq!(
            report.augmented.n_rows(),
            150,
            "{method:?} coreset size respected"
        );
    }
}

#[test]
fn discovery_feeds_pipeline_with_ranked_candidates() {
    let sc = arda::synth::taxi(&ScenarioConfig {
        n_rows: 80,
        n_decoys: 6,
        seed: 6,
    });
    let repo = Repository::from_tables(sc.repository.clone());
    let cands = discover_joins(&sc.base, &repo, &DiscoveryConfig::default()).unwrap();
    assert!(!cands.is_empty());
    // Relevant tables rank above the median candidate.
    let weather_pos = cands.iter().position(|c| c.table_name == "weather");
    assert!(weather_pos.is_some(), "weather discovered");
    for w in cands.windows(2) {
        assert!(w[0].score >= w[1].score, "ranked descending");
    }
}

#[test]
fn micro_noise_injection_then_rifs_filters_noise() {
    use arda::select::{rifs_fractions, RifsConfig};
    let micro = arda::synth::kraken(7);
    let noisy = arda::synth::append_noise_columns(&micro, 2, 7);
    let ds = featurize(
        &noisy.table,
        &noisy.target,
        true,
        &FeaturizeOptions::default(),
    )
    .unwrap();
    // Subsample rows for test speed.
    let rows: Vec<usize> = (0..300).collect();
    let ds = ds.select_rows(&rows).unwrap();
    let cfg = RifsConfig {
        repeats: 4,
        rf_trees: 10,
        ..Default::default()
    };
    let fr = rifs_fractions(&ds, &cfg, 7).unwrap();

    // Average fraction of informative sensors must beat average fraction of
    // injected noise columns.
    let informative_avg: f64 = ds
        .feature_names
        .iter()
        .zip(&fr)
        .filter(|(n, _)| noisy.informative.contains(n))
        .map(|(_, &f)| f)
        .sum::<f64>()
        / noisy.informative.len() as f64;
    let noise_avg: f64 = ds
        .feature_names
        .iter()
        .zip(&fr)
        .filter(|(n, _)| n.starts_with("synthnoise_"))
        .map(|(_, &f)| f)
        .sum::<f64>()
        / ds.feature_names
            .iter()
            .filter(|n| n.starts_with("synthnoise_"))
            .count() as f64;
    assert!(
        informative_avg > noise_avg + 0.2,
        "informative {informative_avg:.2} vs noise {noise_avg:.2}"
    );
}

#[test]
fn csv_round_trip_through_pipeline() {
    let sc = arda::synth::taxi(&ScenarioConfig {
        n_rows: 60,
        n_decoys: 1,
        seed: 8,
    });
    // Serialise the base table to CSV and back, then run the pipeline on it.
    let mut buf = Vec::new();
    arda::table::write_csv(&sc.base, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let base2 = arda::table::read_csv_str("taxi", &text).unwrap();
    assert_eq!(base2.n_rows(), sc.base.n_rows());
    let repo = Repository::from_tables(sc.repository.clone());
    // CSV loses the Timestamp dtype (becomes Int) — join keys still work as
    // hard keys.
    let report = Arda::new(ArdaConfig {
        selector: SelectorKind::Ranking(RankingMethod::RandomForest),
        seed: 8,
        ..Default::default()
    })
    .run(&base2, &repo, &sc.target)
    .unwrap();
    assert!(report.augmented_score.is_finite());
}

#[test]
fn automl_comparator_runs_on_augmented_output() {
    let sc = arda::synth::school(
        &ScenarioConfig {
            n_rows: 150,
            n_decoys: 2,
            seed: 9,
        },
        false,
    );
    let repo = Repository::from_tables(sc.repository.clone());
    let report = Arda::new(ArdaConfig {
        selector: SelectorKind::Ranking(RankingMethod::MutualInfo),
        seed: 9,
        ..Default::default()
    })
    .run(&sc.base, &repo, &sc.target)
    .unwrap();
    let ds = featurize(
        &report.augmented,
        &sc.target,
        false,
        &FeaturizeOptions::default(),
    )
    .unwrap();
    let automl = automl_search(&ds, std::time::Duration::from_secs(5), 9).unwrap();
    assert!(
        automl.best_score > 0.5,
        "automl score {}",
        automl.best_score
    );
    assert!(automl.evaluated >= 1);
}
