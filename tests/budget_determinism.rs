//! Work-budget determinism properties: every budget-aware path in the
//! workspace must produce output identical to its sequential run, across
//! budgets {1, 2, 3, 8} and nested split shapes.
//!
//! This extends `tests/par_determinism.rs` for the PR-3 budget scheduler:
//! chunk layouts derive from a budget's *nominal width* — never from how
//! many spawn permits the pool actually granted — and results are stitched
//! in chunk order, so parallel output equals sequential output for any
//! budget, any split, and any permit availability. The budgets here are
//! driven through `set_default_threads` (which resizes the global permit
//! pool and every ambient width derived from it) plus explicit
//! `Budget::isolated` pools for the split-shape cases.

use arda::prelude::*;
use arda_par::{set_default_threads, Budget};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BUDGETS: [usize; 4] = [1, 2, 3, 8];

/// `set_default_threads` mutates the process-wide budget, so the sweeps
/// serialize behind this lock — otherwise a sibling test could resize the
/// global mid-iteration and an iteration would not actually run at the
/// budget it claims to test (outputs are budget-invariant, so the
/// assertions would still pass and the coverage would be lost silently).
static BUDGET_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Run `f` once per budget and assert every output equals the first.
fn assert_identical_across_budgets<T: PartialEq + std::fmt::Debug>(
    what: &str,
    mut f: impl FnMut() -> T,
) {
    let _serialize = BUDGET_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let mut reference: Option<T> = None;
    for budget in BUDGETS {
        set_default_threads(budget);
        let got = f();
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(&got, r, "{what}: budget={budget}"),
        }
    }
}

/// RIFS — including the now-parallel τ-threshold holdout sweep — selects
/// the same features, threshold and score at every budget.
#[test]
fn rifs_with_tau_sweep_identical_across_budgets() {
    let mut rng = StdRng::seed_from_u64(600);
    let n = 130;
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let cls = (i % 2) as f64;
            let mut row = vec![
                cls * 3.0 + rng.gen_range(-0.4..0.4),
                -cls * 2.0 + rng.gen_range(-0.4..0.4),
            ];
            for _ in 0..7 {
                row.push(rng.gen_range(-1.0..1.0));
            }
            row
        })
        .collect();
    let ds = Dataset::new(
        arda::linalg::Matrix::from_rows(&rows).unwrap(),
        (0..n).map(|i| (i % 2) as f64).collect(),
        (0..9).map(|i| format!("f{i}")).collect(),
        Task::Classification { n_classes: 2 },
    )
    .unwrap();
    let ctx = SelectionContext::standard(&ds, 3);
    let cfg = RifsConfig {
        repeats: 4,
        rf_trees: 8,
        ..Default::default()
    };
    assert_identical_across_budgets("rifs_select", || {
        let r = arda::select::rifs_select(&ds, &ctx, &cfg).unwrap();
        (
            r.selected,
            r.fractions,
            r.threshold_used.to_bits(),
            r.holdout_score.to_bits(),
        )
    });
}

/// Hard joins (with the parallel group-by pre-aggregation forced by
/// duplicate foreign keys and many value columns) and both soft joins
/// produce identical tables at every budget.
#[test]
fn joins_identical_across_budgets() {
    let mut rng = StdRng::seed_from_u64(700);
    let n_base = 6_000;
    let n_foreign = 9_000; // heavy duplication → pre-aggregation runs
    let base = Table::new(
        "b",
        vec![Column::from_i64(
            "k",
            (0..n_base).map(|_| rng.gen_range(0i64..500)).collect(),
        )],
    )
    .unwrap();
    let foreign = Table::new(
        "f",
        vec![
            Column::from_i64(
                "k",
                (0..n_foreign).map(|_| rng.gen_range(0i64..500)).collect(),
            ),
            Column::from_f64(
                "v1",
                (0..n_foreign).map(|_| rng.gen_range(-3.0..3.0)).collect(),
            ),
            Column::from_f64(
                "v2",
                (0..n_foreign).map(|_| rng.gen_range(0.0..1.0)).collect(),
            ),
            Column::from_str(
                "c",
                (0..n_foreign)
                    .map(|i| ["x", "y", "z"][i % 3])
                    .collect::<Vec<_>>(),
            ),
        ],
    )
    .unwrap();

    let hard = JoinSpec::hard("k", "k");
    let nearest = JoinSpec::soft(
        "k",
        "k",
        SoftMethod::Nearest {
            tolerance: Some(25.0),
        },
    );
    let two_way = JoinSpec::soft("k", "k", SoftMethod::TwoWayNearest);
    assert_identical_across_budgets("joins", || {
        (
            execute_join(&base, &foreign, &hard, 9).unwrap(),
            execute_join(&base, &foreign, &nearest, 9).unwrap(),
            execute_join(&base, &foreign, &two_way, 9).unwrap(),
        )
    });
}

/// Join discovery mines and ranks the same candidate list at every budget.
#[test]
fn discovery_identical_across_budgets() {
    let mut rng = StdRng::seed_from_u64(800);
    let base = Table::new(
        "taxi",
        vec![
            Column::from_timestamps("date", (0..200).map(|i| i * 86_400).collect()),
            Column::from_str(
                "borough",
                (0..200)
                    .map(|i| ["bronx", "queens", "manhattan"][i % 3])
                    .collect::<Vec<_>>(),
            ),
            Column::from_f64("trips", (0..200).map(|_| rng.gen_range(0.0..9.0)).collect()),
        ],
    )
    .unwrap();
    let tables: Vec<Table> = (0..6)
        .map(|t| {
            Table::new(
                format!("ext{t}"),
                vec![
                    Column::from_timestamps("date", (0..300).map(|i| i * 43_200 + t * 7).collect()),
                    Column::from_str(
                        "borough",
                        (0..300)
                            .map(|i| {
                                ["bronx", "queens", "manhattan", "brooklyn"][(i + t as usize) % 4]
                            })
                            .collect::<Vec<_>>(),
                    ),
                    Column::from_f64("m", (0..300).map(|_| rng.gen_range(-1.0..1.0)).collect()),
                ],
            )
            .unwrap()
        })
        .collect();
    let repo = Repository::from_tables(tables);
    assert_identical_across_budgets("discover_joins", || {
        discover_joins(&base, &repo, &DiscoveryConfig::default())
            .unwrap()
            .into_iter()
            .map(|c| {
                (
                    c.table_index,
                    c.table_name,
                    c.base_key,
                    c.foreign_key,
                    c.kind,
                    c.score.to_bits(),
                )
            })
            .collect::<Vec<_>>()
    });
}

/// The full pipeline — discovery, batch joins with per-candidate budget
/// splits, group-by pre-aggregation, featurization, RIFS with the parallel
/// τ-sweep, final estimate — is deterministic in the seed at any budget.
#[test]
fn pipeline_identical_across_budgets() {
    let sc = arda::synth::taxi(&ScenarioConfig {
        n_rows: 130,
        n_decoys: 3,
        seed: 21,
    });
    let repo = Repository::from_tables(sc.repository.clone());
    let config = ArdaConfig {
        selector: SelectorKind::Rifs(RifsConfig {
            repeats: 3,
            rf_trees: 8,
            ..Default::default()
        }),
        seed: 21,
        ..Default::default()
    };
    assert_identical_across_budgets("pipeline", || {
        let report = Arda::new(config.clone())
            .run(&sc.base, &repo, &sc.target)
            .unwrap();
        (
            report.base_score.to_bits(),
            report.augmented_score.to_bits(),
            report
                .selected
                .iter()
                .map(|s| format!("{}.{}", s.table, s.column))
                .collect::<Vec<_>>(),
        )
    });
}

/// Streaming CSV ingestion — chunked boundary scan, parallel per-block
/// type inference with the widen-merge, parallel typed build — yields a
/// bit-identical table at every budget (satellite of PR 4; budgets {1, 2,
/// 8} required, {1, 2, 3, 8} swept). Small chunks force many blocks so
/// the parallel path genuinely engages at wide budgets.
#[test]
fn csv_ingestion_identical_across_budgets() {
    // Hostile content: embedded newlines/CRLF in quoted cells, quotes,
    // commas, blank interior line, type widening, trailing nulls.
    let text = "id,score,who,note\n\
                1,2.5,\"a,b\",\"line one\nline two\"\n\
                2,,c d,\"q\"\"uote\"\n\
                \n\
                3,4,\"crlf\r\nin cell\",\n\
                4,5.5,αβ🦀,end\r\n";
    assert_identical_across_budgets("csv_ingestion", || {
        arda::table::read_csv_str_with("t", text, &arda::table::CsvReadOptions { chunk_size: 16 })
            .unwrap()
    });
}

/// Directory-sharded repositories: manifest scan + lazy parallel shard
/// loads (with an LRU bound forcing reloads) discover identical
/// candidates and drive an identical pipeline at every budget.
#[test]
fn sharded_repository_identical_across_budgets() {
    let sc = arda::synth::school(
        &ScenarioConfig {
            n_rows: 90,
            n_decoys: 3,
            seed: 33,
        },
        false,
    );
    let dir = std::env::temp_dir().join(format!("arda_budget_shards_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for t in &sc.repository {
        let f = std::fs::File::create(dir.join(format!("{}.csv", t.name()))).unwrap();
        arda::table::write_csv(t, f).unwrap();
    }
    let config = ArdaConfig {
        selector: SelectorKind::Rifs(RifsConfig {
            repeats: 3,
            rf_trees: 8,
            ..Default::default()
        }),
        seed: 33,
        ..Default::default()
    };
    assert_identical_across_budgets("sharded pipeline", || {
        // Fresh repository per run: every budget re-scans the manifest
        // and re-loads shards through its own cache (capacity 2 keeps
        // eviction/reload on the hot path).
        let repo = Repository::from_dir(&dir).unwrap().with_cache_capacity(2);
        let report = Arda::new(config.clone())
            .run(&sc.base, &repo, &sc.target)
            .unwrap();
        (
            report.base_score.to_bits(),
            report.augmented_score.to_bits(),
            report
                .selected
                .iter()
                .map(|s| format!("{}.{}", s.table, s.column))
                .collect::<Vec<_>>(),
        )
    });
    std::fs::remove_dir_all(&dir).ok();
}

/// Explicit nested split shapes over isolated pools: an outer fan-out whose
/// body runs a nested budget-aware map produces the same result for every
/// (width, split) combination, including widths larger than the item count
/// and splits that starve the inner stage to one worker.
#[test]
fn nested_split_shapes_identical() {
    let groups: Vec<Vec<u64>> = (0..7)
        .map(|g| (0..53).map(|i| g * 100 + i).collect())
        .collect();
    let reference: Vec<Vec<u64>> = groups
        .iter()
        .map(|g| g.iter().map(|&x| x * 3 + 1).collect())
        .collect();
    for width in BUDGETS {
        for stages in [1usize, 2, 4, 16] {
            let budget = Budget::isolated(width);
            let outer = budget.split(stages);
            let got: Vec<Vec<u64>> = arda_par::par_map_budget(&groups, &outer, |_, g| {
                // Nested stage picks the ambient split up via threads = 0.
                arda_par::par_map(g, 0, |_, &x| x * 3 + 1)
            });
            assert_eq!(got, reference, "width={width} stages={stages}");
            assert_eq!(
                budget.live_workers(),
                0,
                "width={width} stages={stages}: permits returned"
            );
        }
    }
}
