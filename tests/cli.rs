//! End-to-end test of the `arda-cli` binary: CSV repository in, augmented
//! CSV out.

use std::path::PathBuf;
use std::process::Command;

fn write(path: &PathBuf, content: &str) {
    std::fs::write(path, content).unwrap();
}

#[test]
fn cli_augments_csv_repository() {
    let dir = std::env::temp_dir().join(format!("arda_cli_test_{}", std::process::id()));
    let repo = dir.join("repo");
    std::fs::create_dir_all(&repo).unwrap();

    // Base: y depends on `boost` from the repository table.
    let mut base_csv = String::from("key,y\n");
    let mut ext_csv = String::from("key,boost\n");
    for i in 0..60 {
        let boost = (i * 7 % 13) as f64;
        base_csv.push_str(&format!("{i},{}\n", 2.0 * boost + 1.0));
        ext_csv.push_str(&format!("{i},{boost}\n"));
    }
    write(&dir.join("base.csv"), &base_csv);
    write(&repo.join("ext.csv"), &ext_csv);

    // A second shard exercises the lazy directory ingest with an LRU
    // cache bound of one resident shard.
    let mut decoy_csv = String::from("code,junk\n");
    for i in 0..20 {
        decoy_csv.push_str(&format!("z{i},{}\n", i % 3));
    }
    write(&repo.join("decoy.csv"), &decoy_csv);

    let out = dir.join("augmented.csv");
    let output = Command::new(env!("CARGO_BIN_EXE_arda-cli"))
        .args([
            "--base",
            dir.join("base.csv").to_str().unwrap(),
            "--target",
            "y",
            "--repo",
            repo.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--selector",
            "rf",
            "--cache-tables",
            "1",
        ])
        .output()
        .expect("run arda-cli");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("indexed 2 repository shard(s)") && stderr.contains("cache 1"),
        "sharded ingest reported: {stderr}"
    );

    let augmented = arda::table::read_csv(&out).unwrap();
    assert_eq!(augmented.n_rows(), 60);
    assert!(augmented.column("y").is_ok());
    assert!(
        augmented.column("boost").is_ok(),
        "signal column joined and selected"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `--save-repo` without `--base`/`--target` is a pure conversion run:
/// CSV shards become typed binary `.arda` shards plus a `_catalog.arda`,
/// and a pipeline run over the converted directory starts warm (catalog
/// hit, zero header reads) and still augments.
#[test]
fn cli_save_repo_converts_and_reloads_via_catalog() {
    let dir = std::env::temp_dir().join(format!("arda_cli_save_{}", std::process::id()));
    let repo = dir.join("repo");
    let bin_repo = dir.join("repo_bin");
    std::fs::create_dir_all(&repo).unwrap();

    let mut base_csv = String::from("key,y\n");
    let mut ext_csv = String::from("key,boost\n");
    for i in 0..60 {
        let boost = (i * 7 % 13) as f64;
        base_csv.push_str(&format!("{i},{}\n", 2.0 * boost + 1.0));
        ext_csv.push_str(&format!("{i},{boost}\n"));
    }
    write(&dir.join("base.csv"), &base_csv);
    write(&repo.join("ext.csv"), &ext_csv);

    // Conversion-only: no --base / --target.
    let output = Command::new(env!("CARGO_BIN_EXE_arda-cli"))
        .args([
            "--repo",
            repo.to_str().unwrap(),
            "--save-repo",
            bin_repo.to_str().unwrap(),
        ])
        .output()
        .expect("run arda-cli");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(bin_repo.join("ext.arda").exists(), "binary shard written");
    assert!(bin_repo.join("_catalog.arda").exists(), "catalog written");

    // Pipeline over the converted directory: warm start, same signal.
    let out = dir.join("augmented.csv");
    let output = Command::new(env!("CARGO_BIN_EXE_arda-cli"))
        .args([
            "--base",
            dir.join("base.csv").to_str().unwrap(),
            "--target",
            "y",
            "--repo",
            bin_repo.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--selector",
            "rf",
        ])
        .output()
        .expect("run arda-cli");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "stderr: {stderr}");
    assert!(
        stderr.contains("catalog hit, 0 header reads"),
        "warm manifest reported: {stderr}"
    );
    let augmented = arda::table::read_csv(&out).unwrap();
    assert!(augmented.column("boost").is_ok(), "signal column selected");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_reports_usage_errors() {
    let out = Command::new(env!("CARGO_BIN_EXE_arda-cli"))
        .args(["--base", "missing.csv"])
        .output()
        .expect("run arda-cli");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("required") || stderr.contains("usage"),
        "stderr: {stderr}"
    );

    // --base without --target is a usage error even with --save-repo —
    // it must not silently convert-and-exit-0 while skipping the
    // pipeline the caller asked for.
    let out = Command::new(env!("CARGO_BIN_EXE_arda-cli"))
        .args(["--base", "b.csv", "--repo", "r", "--save-repo", "s"])
        .output()
        .expect("run arda-cli");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--base and --target must be given together"),
        "stderr: {stderr}"
    );
}

#[test]
fn cli_rejects_unknown_selector() {
    let dir = std::env::temp_dir().join(format!("arda_cli_sel_{}", std::process::id()));
    let repo = dir.join("repo");
    std::fs::create_dir_all(&repo).unwrap();
    write(&dir.join("base.csv"), "k,y\n1,2.0\n2,3.0\n");
    write(&repo.join("t.csv"), "k,v\n1,5\n2,6\n");
    let out = Command::new(env!("CARGO_BIN_EXE_arda-cli"))
        .args([
            "--base",
            dir.join("base.csv").to_str().unwrap(),
            "--target",
            "y",
            "--repo",
            repo.to_str().unwrap(),
            "--selector",
            "bogus",
        ])
        .output()
        .expect("run arda-cli");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown selector"));
    std::fs::remove_dir_all(&dir).ok();
}
