//! Parallel-vs-sequential determinism properties: every parallel hot path
//! in the workspace must produce output identical to its sequential run,
//! across random shapes, seeds and thread counts {1, 2, 8}.
//!
//! The `arda-par` primitives hand each worker contiguous, ordered chunks
//! and stitch results back in order, so these are *exact* equality
//! assertions (no tolerances). Tests that exercise paths which read the
//! global default worker count flip it with `set_default_threads`; that is
//! safe to do concurrently precisely because of the property under test —
//! results do not depend on the thread count.

use arda::linalg::Matrix;
use arda::prelude::*;
use arda_par::set_default_threads;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize, sparse: bool) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| {
            if sparse && rng.gen_bool(0.4) {
                0.0
            } else {
                rng.gen_range(-5.0..5.0)
            }
        })
        .collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

/// Naive i-k-j reference product, independent of the library kernels.
fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a.get(i, k);
            if av == 0.0 {
                continue;
            }
            for j in 0..b.cols() {
                out.set(i, j, out.get(i, j) + av * b.get(k, j));
            }
        }
    }
    out
}

#[test]
fn blocked_matmul_matches_reference_across_shapes_and_threads() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(case);
        let n = rng.gen_range(1usize..90);
        let k = rng.gen_range(1usize..300);
        let m = rng.gen_range(1usize..90);
        let a = random_matrix(&mut rng, n, k, case % 2 == 0);
        let b = random_matrix(&mut rng, k, m, case % 3 == 0);
        let expect = reference_matmul(&a, &b);
        for threads in THREAD_COUNTS {
            let got = a.matmul_threads(&b, threads).unwrap();
            assert_eq!(
                got.data(),
                expect.data(),
                "case {case}: {n}x{k} * {k}x{m} at {threads} threads"
            );
        }
    }
}

#[test]
fn gram_matches_transpose_product_across_shapes_and_threads() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(100 + case);
        let n = rng.gen_range(1usize..400);
        let d = rng.gen_range(1usize..60);
        let x = random_matrix(&mut rng, n, d, case % 2 == 0);
        let sequential = x.gram_threads(1);
        // Mathematical oracle (different accumulation order → tolerance).
        let explicit = reference_matmul(&x.transpose_threads(1), &x);
        for (g, e) in sequential.data().iter().zip(explicit.data()) {
            assert!(
                (g - e).abs() < 1e-9 * (1.0 + e.abs()),
                "case {case}: gram vs XᵀX"
            );
        }
        for threads in THREAD_COUNTS {
            assert_eq!(
                x.gram_threads(threads).data(),
                sequential.data(),
                "case {case}: gram {n}x{d} at {threads} threads"
            );
            assert_eq!(
                x.transpose_threads(threads).data(),
                x.transpose_threads(1).data(),
                "case {case}: transpose {n}x{d} at {threads} threads"
            );
        }
    }
}

/// Soft joins run their row scans in parallel above an internal row
/// threshold read from the global default worker count; results must be
/// identical at every count.
#[test]
fn soft_joins_identical_across_thread_counts() {
    for case in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(200 + case);
        let n_base = 6_000;
        let n_foreign = 500;
        let base = Table::new(
            "b",
            vec![Column::from_i64(
                "k",
                (0..n_base)
                    .map(|_| rng.gen_range(-10_000i64..10_000))
                    .collect(),
            )],
        )
        .unwrap();
        let foreign = Table::new(
            "f",
            vec![
                Column::from_i64(
                    "k",
                    (0..n_foreign)
                        .map(|_| rng.gen_range(-10_000i64..10_000))
                        .collect(),
                ),
                Column::from_f64(
                    "v",
                    (0..n_foreign).map(|_| rng.gen_range(-3.0..3.0)).collect(),
                ),
                Column::from_str(
                    "c",
                    (0..n_foreign)
                        .map(|i| if i % 2 == 0 { "even" } else { "odd" })
                        .collect(),
                ),
            ],
        )
        .unwrap();

        let nearest = JoinSpec::soft(
            "k",
            "k",
            SoftMethod::Nearest {
                tolerance: Some(40.0),
            },
        );
        let two_way = JoinSpec::soft("k", "k", SoftMethod::TwoWayNearest);
        let mut reference: Option<(Table, Table)> = None;
        for threads in THREAD_COUNTS {
            set_default_threads(threads);
            let a = execute_join(&base, &foreign, &nearest, case).unwrap();
            let b = execute_join(&base, &foreign, &two_way, case).unwrap();
            match &reference {
                None => reference = Some((a, b)),
                Some((ra, rb)) => {
                    assert_eq!(&a, ra, "case {case}: nearest join at {threads} threads");
                    assert_eq!(&b, rb, "case {case}: two-way join at {threads} threads");
                }
            }
        }
    }
}

#[test]
fn forest_fit_identical_across_thread_counts() {
    for case in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(300 + case);
        let n = 240;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let cls = (i % 2) as f64;
                vec![
                    cls * 2.0 + rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                ]
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
        let mut reference: Option<(Vec<f64>, Vec<f64>)> = None;
        for threads in THREAD_COUNTS {
            let cfg = arda::ml::ForestConfig {
                n_trees: 12,
                seed: case,
                n_threads: threads,
                ..Default::default()
            };
            let rf =
                arda::ml::RandomForest::fit_xy(&x, &y, Task::Classification { n_classes: 2 }, &cfg)
                    .unwrap();
            let got = (rf.predict(&x).unwrap(), rf.importances().to_vec());
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(&got, r, "case {case}: forest at {threads} threads"),
            }
        }
    }
}

#[test]
fn featurize_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(400);
    let n = 4_000;
    let cats = ["a", "b", "c", "d", "e"];
    let t = Table::new(
        "t",
        vec![
            Column::from_f64_opt(
                "num",
                (0..n)
                    .map(|_| {
                        if rng.gen_bool(0.1) {
                            None
                        } else {
                            Some(rng.gen_range(-9.0..9.0))
                        }
                    })
                    .collect(),
            ),
            Column::from_str(
                "cat",
                (0..n).map(|_| cats[rng.gen_range(0..cats.len())]).collect(),
            ),
            Column::from_i64("count", (0..n).map(|_| rng.gen_range(0i64..50)).collect()),
            Column::from_f64("target", (0..n).map(|_| rng.gen_range(0.0..1.0)).collect()),
        ],
    )
    .unwrap();
    let mut reference: Option<Dataset> = None;
    for threads in THREAD_COUNTS {
        set_default_threads(threads);
        let d = featurize(&t, "target", false, &FeaturizeOptions::default()).unwrap();
        match &reference {
            None => reference = Some(d),
            Some(r) => {
                assert_eq!(d.feature_names, r.feature_names, "{threads} threads");
                assert_eq!(d.x.data(), r.x.data(), "{threads} threads");
                assert_eq!(d.y, r.y, "{threads} threads");
            }
        }
    }
}

#[test]
fn rifs_fractions_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(500);
    let n = 120;
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let cls = (i % 2) as f64;
            let mut row = vec![cls * 3.0 + rng.gen_range(-0.4..0.4)];
            for _ in 0..5 {
                row.push(rng.gen_range(-1.0..1.0));
            }
            row
        })
        .collect();
    let ds = Dataset::new(
        Matrix::from_rows(&rows).unwrap(),
        (0..n).map(|i| (i % 2) as f64).collect(),
        (0..6).map(|i| format!("f{i}")).collect(),
        Task::Classification { n_classes: 2 },
    )
    .unwrap();
    let cfg = RifsConfig {
        repeats: 4,
        rf_trees: 8,
        ..Default::default()
    };
    let mut reference: Option<Vec<f64>> = None;
    for threads in THREAD_COUNTS {
        set_default_threads(threads);
        let fr = arda::select::rifs_fractions(&ds, &cfg, 7).unwrap();
        match &reference {
            None => reference = Some(fr),
            Some(r) => assert_eq!(&fr, r, "{threads} threads"),
        }
    }
}

/// The full pipeline — coreset, parallel batch joins, imputation, parallel
/// featurization, RIFS, final estimate — is deterministic in the seed at
/// any worker count.
#[test]
fn pipeline_identical_across_thread_counts() {
    let sc = arda::synth::taxi(&ScenarioConfig {
        n_rows: 140,
        n_decoys: 3,
        seed: 11,
    });
    let repo = Repository::from_tables(sc.repository.clone());
    let config = ArdaConfig {
        selector: SelectorKind::Rifs(RifsConfig {
            repeats: 3,
            rf_trees: 8,
            ..Default::default()
        }),
        seed: 11,
        ..Default::default()
    };
    let mut reference: Option<(f64, f64, Vec<String>)> = None;
    for threads in THREAD_COUNTS {
        set_default_threads(threads);
        let report = Arda::new(config.clone())
            .run(&sc.base, &repo, &sc.target)
            .unwrap();
        let got = (
            report.base_score,
            report.augmented_score,
            report
                .selected
                .iter()
                .map(|s| format!("{}.{}", s.table, s.column))
                .collect(),
        );
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(&got, r, "{threads} threads"),
        }
    }
}
