//! Property-based tests on the core data-structure invariants: join row
//! preservation, group-by partitioning, coreset sizing and stratification,
//! sketch linearity, imputation completeness, ranking permutation validity
//! and CSV round-trips.
//!
//! The workspace builds offline (no proptest), so each property runs over a
//! seeded sweep of randomly generated inputs; failures print the case seed
//! for reproduction. Parallel-vs-sequential determinism properties live in
//! `tests/par_determinism.rs`.

use arda::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 32;

/// Finite, modest-magnitude f64 (no NaN), mirroring the old proptest
/// strategy.
fn small_f64(rng: &mut StdRng) -> f64 {
    rng.gen_range(-1000i64..1000) as f64 / 10.0
}

fn vec_of<T>(
    rng: &mut StdRng,
    lo: usize,
    hi: usize,
    mut f: impl FnMut(&mut StdRng) -> T,
) -> Vec<T> {
    let len = rng.gen_range(lo..hi);
    (0..len).map(|_| f(rng)).collect()
}

/// LEFT hard joins preserve base row count and order for ANY foreign table
/// content.
#[test]
fn hard_join_preserves_base_rows() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let base_keys = vec_of(&mut rng, 1, 40, |r| r.gen_range(0i64..20));
        let foreign_keys = vec_of(&mut rng, 0, 40, |r| r.gen_range(0i64..20));
        let base = Table::new(
            "b",
            vec![
                Column::from_i64("k", base_keys.clone()),
                Column::from_f64("row_id", (0..base_keys.len()).map(|i| i as f64).collect()),
            ],
        )
        .unwrap();
        let foreign = Table::new(
            "f",
            vec![
                Column::from_i64("k", foreign_keys.clone()),
                Column::from_f64("v", foreign_keys.iter().map(|&k| k as f64 * 2.0).collect()),
            ],
        )
        .unwrap();
        let out = execute_join(&base, &foreign, &JoinSpec::hard("k", "k"), 0).unwrap();
        assert_eq!(out.n_rows(), base.n_rows(), "case {case}");
        // Row order is untouched.
        for i in 0..out.n_rows() {
            assert_eq!(
                out.column("row_id").unwrap().get_f64(i),
                Some(i as f64),
                "case {case}"
            );
        }
        // Matched rows carry a value iff the key exists in the foreign side.
        for (i, k) in base_keys.iter().enumerate() {
            let matched = foreign_keys.contains(k);
            let got = out.column("v").unwrap().get(i);
            assert_eq!(matched, !got.is_null(), "case {case} row {i}");
        }
    }
}

/// Soft nearest joins never null-fill (without tolerance) when the foreign
/// table is non-empty, and always pick a key minimising the distance.
#[test]
fn nearest_join_minimises_distance() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1000 + case);
        let base_keys = vec_of(&mut rng, 1, 30, |r| r.gen_range(-500i64..500));
        let foreign_keys = vec_of(&mut rng, 1, 30, |r| r.gen_range(-500i64..500));
        let base = Table::new("b", vec![Column::from_i64("k", base_keys.clone())]).unwrap();
        let mut fk = foreign_keys.clone();
        fk.sort_unstable();
        fk.dedup();
        let foreign = Table::new(
            "f",
            vec![
                Column::from_i64("k", fk.clone()),
                Column::from_f64("fkey_copy", fk.iter().map(|&k| k as f64).collect()),
            ],
        )
        .unwrap();
        let out = arda::join::soft::nearest_join(&base, &foreign, "k", "k", None).unwrap();
        for (i, &bk) in base_keys.iter().enumerate() {
            let joined_key = out.column("fkey_copy").unwrap().get_f64(i).unwrap();
            let best = fk
                .iter()
                .map(|&f| (f as f64 - bk as f64).abs())
                .fold(f64::INFINITY, f64::min);
            assert!(
                ((joined_key - bk as f64).abs() - best).abs() < 1e-9,
                "case {case} row {i}: joined {joined_key}, base {bk}, best dist {best}"
            );
        }
    }
}

/// Group-by groups partition the non-null-key rows exactly.
#[test]
fn groupby_partitions_rows() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2000 + case);
        let keys = vec_of(&mut rng, 1, 60, |r| r.gen_range(0i64..8));
        let vals = vec_of(&mut rng, 1, 60, small_f64);
        let n = keys.len().min(vals.len());
        let t = Table::new(
            "t",
            vec![
                Column::from_i64("k", keys[..n].to_vec()),
                Column::from_f64("v", vals[..n].to_vec()),
            ],
        )
        .unwrap();
        let gb = arda::table::GroupBy::new(&t, &["k"]).unwrap();
        let (group_keys, rows) = gb.groups().unwrap();
        assert_eq!(group_keys.len(), rows.len(), "case {case}");
        let mut seen: Vec<usize> = rows.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..n).collect();
        assert_eq!(
            seen, expected,
            "case {case}: every row in exactly one group"
        );
    }
}

/// Aggregated tables have one row per distinct key and mean within min/max
/// bounds.
#[test]
fn aggregate_mean_bounded() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3000 + case);
        let keys = vec_of(&mut rng, 2, 40, |r| r.gen_range(0i64..5));
        let vals = vec_of(&mut rng, 2, 40, small_f64);
        let n = keys.len().min(vals.len());
        let t = Table::new(
            "t",
            vec![
                Column::from_i64("k", keys[..n].to_vec()),
                Column::from_f64("v", vals[..n].to_vec()),
            ],
        )
        .unwrap();
        let agg = arda::table::GroupBy::new(&t, &["k"])
            .unwrap()
            .aggregate_default()
            .unwrap();
        let mut distinct = keys[..n].to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(agg.n_rows(), distinct.len(), "case {case}");
        let lo = vals[..n].iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals[..n].iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for i in 0..agg.n_rows() {
            let m = agg.column("v").unwrap().get_f64(i).unwrap();
            assert!(m >= lo - 1e-9 && m <= hi + 1e-9, "case {case}");
        }
    }
}

/// Uniform coresets produce sorted, distinct, in-bounds indices of the
/// requested size.
#[test]
fn uniform_coreset_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(4000 + case);
        let n = rng.gen_range(1usize..500);
        let size = rng.gen_range(1usize..200);
        let seed = rng.gen_range(0u64..50);
        let idx = arda::coreset::uniform_indices(n, size, seed);
        assert_eq!(idx.len(), size.min(n), "case {case}");
        assert!(
            idx.windows(2).all(|w| w[0] < w[1]),
            "case {case}: sorted distinct"
        );
        assert!(idx.iter().all(|&i| i < n), "case {case}");
    }
}

/// Stratified coresets represent every class when capacity allows.
#[test]
fn stratified_coreset_keeps_classes() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(5000 + case);
        let labels: Vec<f64> = vec_of(&mut rng, 8, 120, |r| r.gen_range(0i64..4))
            .iter()
            .map(|&v| v as f64)
            .collect();
        let seed = rng.gen_range(0u64..20);
        let mut classes: Vec<i64> = labels.iter().map(|&v| v as i64).collect();
        classes.sort_unstable();
        classes.dedup();
        let size = classes.len().max(labels.len() / 2);
        let idx = arda::coreset::stratified_indices(&labels, size, seed);
        for c in classes {
            assert!(
                idx.iter().any(|&i| labels[i] as i64 == c),
                "case {case}: class {c} represented in coreset"
            );
        }
    }
}

/// OSNAP sketching is linear: Π(Ax) == (ΠA)x.
#[test]
fn osnap_linearity() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(6000 + case);
        let rows = rng.gen_range(4usize..40);
        let x0 = small_f64(&mut rng);
        let x1 = small_f64(&mut rng);
        let seed = rng.gen_range(0u64..20);
        let data: Vec<Vec<f64>> = (0..rows)
            .map(|r| vec![(r as f64).sin(), (r as f64).cos()])
            .collect();
        let a = arda::linalg::Matrix::from_rows(&data).unwrap();
        let os = arda::linalg::Osnap::new(rows, (rows / 2).max(1), seed);
        let x = vec![x0, x1];
        let ax = a.matvec(&x).unwrap();
        let left = os.apply_vec(&ax);
        let right = os.apply(&a).matvec(&x).unwrap();
        for (l, r) in left.iter().zip(&right) {
            assert!((l - r).abs() < 1e-8, "case {case}");
        }
    }
}

/// Imputation removes every null except in all-null columns.
#[test]
fn imputation_completeness() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(7000 + case);
        let vals = vec_of(&mut rng, 1, 60, |r| {
            if r.gen_bool(0.3) {
                None
            } else {
                Some(small_f64(r))
            }
        });
        let seed = rng.gen_range(0u64..20);
        let t = Table::new("t", vec![Column::from_f64_opt("x", vals.clone())]).unwrap();
        let (out, filled) = arda::join::impute::impute(&t, seed).unwrap();
        let n_null = vals.iter().filter(|v| v.is_none()).count();
        if n_null == vals.len() {
            assert_eq!(filled, 0, "case {case}: all-null column untouched");
        } else {
            assert_eq!(filled, n_null, "case {case}");
            assert_eq!(out.null_count(), 0, "case {case}");
        }
    }
}

/// Ranking orders are permutations of 0..d.
#[test]
fn ranking_order_is_permutation() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(8000 + case);
        let scores = vec_of(&mut rng, 0, 50, small_f64);
        let order = arda::select::ranking::order_by_scores(&scores);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        let expected: Vec<usize> = (0..scores.len()).collect();
        assert_eq!(sorted, expected, "case {case}");
        // Scores along the order are non-increasing.
        for w in order.windows(2) {
            assert!(scores[w[0]] >= scores[w[1]], "case {case}");
        }
    }
}

/// CSV write→read round-trips row counts and null positions for numeric
/// tables.
#[test]
fn csv_round_trip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(9000 + case);
        let vals = vec_of(&mut rng, 1, 50, |r| {
            if r.gen_bool(0.2) {
                None
            } else {
                Some(r.gen_range(-10_000i64..10_000))
            }
        });
        let t = Table::new("t", vec![Column::from_i64_opt("x", vals.clone())]).unwrap();
        let mut buf = Vec::new();
        arda::table::write_csv(&t, &mut buf).unwrap();
        let back = arda::table::read_csv_str("t", std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(back.n_rows(), t.n_rows(), "case {case}");
        for (i, v) in vals.iter().enumerate() {
            match v {
                None => assert!(
                    back.column("x").unwrap().get(i).is_null(),
                    "case {case} row {i}"
                ),
                Some(x) => assert_eq!(
                    back.column("x").unwrap().get(i).as_i64(),
                    Some(*x),
                    "case {case} row {i}"
                ),
            }
        }
    }
}

/// Granularity detection divides every gap between distinct keys.
#[test]
fn granularity_divides_gaps() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(10_000 + case);
        let base = rng.gen_range(1i64..1000);
        let mults = vec_of(&mut rng, 2, 30, |r| r.gen_range(0i64..100));
        let keys: Vec<i64> = mults.iter().map(|&m| m * base).collect();
        let g = arda::join::resample::detect_granularity(&keys);
        let mut distinct = keys.clone();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() >= 2 {
            for w in distinct.windows(2) {
                assert_eq!(
                    (w[1] - w[0]) % g,
                    0,
                    "case {case}: granularity {} divides gap {}",
                    g,
                    w[1] - w[0]
                );
            }
        }
    }
}

/// Tables survive take(shuffle) without changing the multiset of values.
#[test]
fn take_is_multiset_stable() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(11_000 + case);
        let vals = vec_of(&mut rng, 1, 50, small_f64);
        let t = Table::new("t", vec![Column::from_f64("x", vals.clone())]).unwrap();
        let rev: Vec<usize> = (0..vals.len()).rev().collect();
        let taken = t.take(&rev).unwrap();
        let mut a = vals.clone();
        let mut b: Vec<f64> = (0..taken.n_rows())
            .map(|i| taken.column("x").unwrap().get_f64(i).unwrap())
            .collect();
        a.sort_by(|x, y| x.total_cmp(y));
        b.sort_by(|x, y| x.total_cmp(y));
        assert_eq!(a, b, "case {case}");
    }
}
