//! Property-based tests (proptest) on the core data-structure invariants:
//! join row preservation, group-by partitioning, coreset sizing and
//! stratification, sketch linearity, imputation completeness, ranking
//! permutation validity and CSV round-trips.

use arda::prelude::*;
use proptest::prelude::*;

fn small_f64() -> impl Strategy<Value = f64> {
    // Finite, modest magnitude, no NaN.
    (-1000i64..1000).prop_map(|v| v as f64 / 10.0)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// LEFT hard joins preserve base row count and order for ANY foreign
    /// table content.
    #[test]
    fn hard_join_preserves_base_rows(
        base_keys in prop::collection::vec(0i64..20, 1..40),
        foreign_keys in prop::collection::vec(0i64..20, 0..40),
    ) {
        let base = Table::new(
            "b",
            vec![
                Column::from_i64("k", base_keys.clone()),
                Column::from_f64("row_id", (0..base_keys.len()).map(|i| i as f64).collect()),
            ],
        ).unwrap();
        let foreign = Table::new(
            "f",
            vec![
                Column::from_i64("k", foreign_keys.clone()),
                Column::from_f64("v", foreign_keys.iter().map(|&k| k as f64 * 2.0).collect()),
            ],
        ).unwrap();
        let out = execute_join(&base, &foreign, &JoinSpec::hard("k", "k"), 0).unwrap();
        prop_assert_eq!(out.n_rows(), base.n_rows());
        // Row order is untouched.
        for i in 0..out.n_rows() {
            prop_assert_eq!(out.column("row_id").unwrap().get_f64(i), Some(i as f64));
        }
        // Matched rows carry a value iff the key exists in the foreign side.
        for (i, k) in base_keys.iter().enumerate() {
            let matched = foreign_keys.contains(k);
            let got = out.column("v").unwrap().get(i);
            prop_assert_eq!(matched, !got.is_null());
        }
    }

    /// Soft nearest joins never null-fill (without tolerance) when the
    /// foreign table is non-empty, and always pick a key minimising the
    /// distance.
    #[test]
    fn nearest_join_minimises_distance(
        base_keys in prop::collection::vec(-500i64..500, 1..30),
        foreign_keys in prop::collection::vec(-500i64..500, 1..30),
    ) {
        let base = Table::new("b", vec![Column::from_i64("k", base_keys.clone())]).unwrap();
        let mut fk = foreign_keys.clone();
        fk.sort_unstable();
        fk.dedup();
        let foreign = Table::new(
            "f",
            vec![
                Column::from_i64("k", fk.clone()),
                Column::from_f64("fkey_copy", fk.iter().map(|&k| k as f64).collect()),
            ],
        ).unwrap();
        let out = arda::join::soft::nearest_join(&base, &foreign, "k", "k", None).unwrap();
        for (i, &bk) in base_keys.iter().enumerate() {
            let joined_key = out.column("fkey_copy").unwrap().get_f64(i).unwrap();
            let best = fk.iter().map(|&f| (f as f64 - bk as f64).abs()).fold(f64::INFINITY, f64::min);
            prop_assert!(((joined_key - bk as f64).abs() - best).abs() < 1e-9,
                "row {i}: joined {joined_key}, base {bk}, best dist {best}");
        }
    }

    /// Group-by groups partition the non-null-key rows exactly.
    #[test]
    fn groupby_partitions_rows(
        keys in prop::collection::vec(0i64..8, 1..60),
        vals in prop::collection::vec(small_f64(), 1..60),
    ) {
        let n = keys.len().min(vals.len());
        let t = Table::new(
            "t",
            vec![
                Column::from_i64("k", keys[..n].to_vec()),
                Column::from_f64("v", vals[..n].to_vec()),
            ],
        ).unwrap();
        let gb = arda::table::GroupBy::new(&t, &["k"]).unwrap();
        let (group_keys, rows) = gb.groups().unwrap();
        prop_assert_eq!(group_keys.len(), rows.len());
        let mut seen: Vec<usize> = rows.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..n).collect();
        prop_assert_eq!(seen, expected, "every row in exactly one group");
    }

    /// Aggregated tables have one row per distinct key and mean within
    /// min/max bounds.
    #[test]
    fn aggregate_mean_bounded(
        keys in prop::collection::vec(0i64..5, 2..40),
        vals in prop::collection::vec(small_f64(), 2..40),
    ) {
        let n = keys.len().min(vals.len());
        let t = Table::new(
            "t",
            vec![
                Column::from_i64("k", keys[..n].to_vec()),
                Column::from_f64("v", vals[..n].to_vec()),
            ],
        ).unwrap();
        let agg = arda::table::GroupBy::new(&t, &["k"]).unwrap().aggregate_default().unwrap();
        let mut distinct = keys[..n].to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(agg.n_rows(), distinct.len());
        let lo = vals[..n].iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals[..n].iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for i in 0..agg.n_rows() {
            let m = agg.column("v").unwrap().get_f64(i).unwrap();
            prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
        }
    }

    /// Uniform coresets produce sorted, distinct, in-bounds indices of the
    /// requested size.
    #[test]
    fn uniform_coreset_invariants(n in 1usize..500, size in 1usize..200, seed in 0u64..50) {
        let idx = arda::coreset::uniform_indices(n, size, seed);
        prop_assert_eq!(idx.len(), size.min(n));
        prop_assert!(idx.windows(2).all(|w| w[0] < w[1]), "sorted distinct");
        prop_assert!(idx.iter().all(|&i| i < n));
    }

    /// Stratified coresets represent every class when capacity allows.
    #[test]
    fn stratified_coreset_keeps_classes(
        labels in prop::collection::vec(0i64..4, 8..120),
        seed in 0u64..20,
    ) {
        let labels: Vec<f64> = labels.iter().map(|&v| v as f64).collect();
        let mut classes: Vec<i64> = labels.iter().map(|&v| v as i64).collect();
        classes.sort_unstable();
        classes.dedup();
        let size = classes.len().max(labels.len() / 2);
        let idx = arda::coreset::stratified_indices(&labels, size, seed);
        for c in classes {
            prop_assert!(
                idx.iter().any(|&i| labels[i] as i64 == c),
                "class {c} represented in coreset"
            );
        }
    }

    /// OSNAP sketching is linear: Π(Ax) == (ΠA)x.
    #[test]
    fn osnap_linearity(
        rows in 4usize..40,
        x0 in small_f64(),
        x1 in small_f64(),
        seed in 0u64..20,
    ) {
        let data: Vec<Vec<f64>> = (0..rows)
            .map(|r| vec![(r as f64).sin(), (r as f64).cos()])
            .collect();
        let a = arda::linalg::Matrix::from_rows(&data).unwrap();
        let os = arda::linalg::Osnap::new(rows, (rows / 2).max(1), seed);
        let x = vec![x0, x1];
        let ax = a.matvec(&x).unwrap();
        let left = os.apply_vec(&ax);
        let right = os.apply(&a).matvec(&x).unwrap();
        for (l, r) in left.iter().zip(&right) {
            prop_assert!((l - r).abs() < 1e-8);
        }
    }

    /// Imputation removes every null except in all-null columns.
    #[test]
    fn imputation_completeness(
        vals in prop::collection::vec(prop::option::of(small_f64()), 1..60),
        seed in 0u64..20,
    ) {
        let t = Table::new("t", vec![Column::from_f64_opt("x", vals.clone())]).unwrap();
        let (out, filled) = arda::join::impute::impute(&t, seed).unwrap();
        let n_null = vals.iter().filter(|v| v.is_none()).count();
        if n_null == vals.len() {
            prop_assert_eq!(filled, 0, "all-null column untouched");
        } else {
            prop_assert_eq!(filled, n_null);
            prop_assert_eq!(out.null_count(), 0);
        }
    }

    /// Ranking orders are permutations of 0..d.
    #[test]
    fn ranking_order_is_permutation(scores in prop::collection::vec(small_f64(), 0..50)) {
        let order = arda::select::ranking::order_by_scores(&scores);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        let expected: Vec<usize> = (0..scores.len()).collect();
        prop_assert_eq!(sorted, expected);
        // Scores along the order are non-increasing.
        for w in order.windows(2) {
            prop_assert!(scores[w[0]] >= scores[w[1]]);
        }
    }

    /// CSV write→read round-trips row counts and null positions for numeric
    /// tables.
    #[test]
    fn csv_round_trip(
        vals in prop::collection::vec(prop::option::of(-10_000i64..10_000), 1..50),
    ) {
        let t = Table::new("t", vec![Column::from_i64_opt("x", vals.clone())]).unwrap();
        let mut buf = Vec::new();
        arda::table::write_csv(&t, &mut buf).unwrap();
        let back = arda::table::read_csv_str("t", std::str::from_utf8(&buf).unwrap()).unwrap();
        prop_assert_eq!(back.n_rows(), t.n_rows());
        for (i, v) in vals.iter().enumerate() {
            match v {
                None => prop_assert!(back.column("x").unwrap().get(i).is_null()),
                Some(x) => prop_assert_eq!(back.column("x").unwrap().get(i).as_i64(), Some(*x)),
            }
        }
    }

    /// Granularity detection divides every gap between distinct keys.
    #[test]
    fn granularity_divides_gaps(
        base in 1i64..1000,
        mults in prop::collection::vec(0i64..100, 2..30),
    ) {
        let keys: Vec<i64> = mults.iter().map(|&m| m * base).collect();
        let g = arda::join::resample::detect_granularity(&keys);
        let mut distinct = keys.clone();
        distinct.sort_unstable();
        distinct.dedup();
        if distinct.len() >= 2 {
            for w in distinct.windows(2) {
                prop_assert_eq!((w[1] - w[0]) % g, 0, "granularity {} divides gap {}", g, w[1]-w[0]);
            }
        }
    }

    /// Tables survive take(shuffle) without changing multiset of values.
    #[test]
    fn take_is_multiset_stable(vals in prop::collection::vec(small_f64(), 1..50)) {
        let t = Table::new("t", vec![Column::from_f64("x", vals.clone())]).unwrap();
        let rev: Vec<usize> = (0..vals.len()).rev().collect();
        let taken = t.take(&rev).unwrap();
        let mut a = vals.clone();
        let mut b: Vec<f64> = (0..taken.n_rows())
            .map(|i| taken.column("x").unwrap().get_f64(i).unwrap())
            .collect();
        a.sort_by(|x, y| x.total_cmp(y));
        b.sort_by(|x, y| x.total_cmp(y));
        prop_assert_eq!(a, b);
    }
}
