//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the small subset of the `rand 0.8` API the codebase actually uses:
//!
//! * [`rngs::StdRng`] — a seedable PRNG (xoshiro256++, seeded via SplitMix64).
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool` over the primitive types.
//! * [`SeedableRng`] — `seed_from_u64`.
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! The stream differs from upstream `rand` (no ChaCha), but every consumer
//! in this workspace only relies on *seed-determinism*, never on the exact
//! upstream byte stream. All generators are plain `Clone` values, so cloning
//! an RNG forks its stream — the property the deterministic parallel fits
//! in `arda-ml`/`arda-select` rely on.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a primitive type from its "standard" distribution:
    /// uniform `[0, 1)` for floats, uniform over all values for integers,
    /// fair coin for `bool`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (half-open or inclusive). Panics on an
    /// empty range, matching upstream `rand`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p.clamp(0.0, 1.0)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
fn unit_f64(word: u64) -> f64 {
    // 53 random mantissa bits → uniform in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Draw one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Types with a uniform range sampler, mirroring `rand::distributions
/// ::uniform::SampleUniform` closely enough for `gen_range` inference.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "gen_range on empty range"
                );
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_uniform!(usize, u64, u32, i64, i32, isize);

macro_rules! float_uniform {
    ($($t:ty => $unit:expr),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "gen_range on empty range");
                let u = $unit(rng);
                let v = lo + (hi - lo) * u;
                // Guard against rounding up to an excluded endpoint.
                if !inclusive && v >= hi {
                    lo
                } else {
                    v
                }
            }
        }
    )*};
}

float_uniform!(
    f64 => |rng: &mut R| unit_f64(rng.next_u64()),
    f32 => |rng: &mut R| f32::sample_standard(rng)
);

/// Ranges accepted by [`Rng::gen_range`]. The element type parameter lets
/// inference flow from the expected output type into the range's literals,
/// matching upstream `rand` (`let x: i64 = rng.gen_range(0..40);`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ with SplitMix64 seeding.
    ///
    /// Fast, 256-bit state, passes BigCrush; *not* the upstream ChaCha12
    /// stream, but seed-deterministic, `Clone` and `Send` which is all the
    /// workspace requires.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Slice element type.
        type Item;

        /// Fisher–Yates shuffle, in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element (`None` on an empty slice).
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            // Single-point inclusive range is valid (matches rand 0.8).
            assert_eq!(rng.gen_range(5..=5usize), 5);
            let f = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn choose_and_bool() {
        let mut rng = StdRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&heads), "{heads}");
    }
}
