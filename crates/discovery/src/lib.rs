//! # arda-discovery
//!
//! A join-discovery simulator standing in for Aurum / NYU Auctus.
//!
//! ARDA assumes "an external data discovery system automatically determines
//! a collection of candidate joins: columns in the base table that are
//! potentially foreign keys into another table" (§2), possibly *very noisy*
//! — most candidates are semantically meaningless. This crate reproduces
//! that artifact from a raw [`Repository`] of tables:
//!
//! * column-pair candidate mining with type-compatibility rules,
//! * value-overlap (intersection / Jaccard) scoring, with a bonus for
//!   matching column names,
//! * hard/soft key classification — timestamp-typed pairs and numeric pairs
//!   with range overlap but little exact-value overlap become *soft* keys
//!   (the weather-vs-taxi time-key situation), everything else *hard*,
//! * relevance-ranked output: a `Vec<CandidateJoin>` exactly like the input
//!   ARDA expects, including the ranking "ARDA can optionally make use of
//!   ... to prioritize its search" (§3).

use arda_join::stats::join_stats;
use arda_table::{DataType, Table, TableError};

/// Hard vs soft key classification of a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyKind {
    /// Exact-equality joinable.
    Hard,
    /// Proximity-joinable (time, GPS, age, ...).
    Soft,
}

/// One discovered candidate join.
#[derive(Debug, Clone)]
pub struct CandidateJoin {
    /// Index of the foreign table in the repository.
    pub table_index: usize,
    /// Foreign table name.
    pub table_name: String,
    /// Base-table key column.
    pub base_key: String,
    /// Foreign-table key column.
    pub foreign_key: String,
    /// Hard or soft key.
    pub kind: KeyKind,
    /// Relevance score (higher = more promising).
    pub score: f64,
}

/// A pool of candidate tables (the "data repository" of Figure 1).
#[derive(Debug, Clone, Default)]
pub struct Repository {
    tables: Vec<Table>,
}

impl Repository {
    /// Empty repository.
    pub fn new() -> Self {
        Repository { tables: Vec::new() }
    }

    /// Build from tables.
    pub fn from_tables(tables: Vec<Table>) -> Self {
        Repository { tables }
    }

    /// Add a table, returning its index.
    pub fn add(&mut self, table: Table) -> usize {
        self.tables.push(table);
        self.tables.len() - 1
    }

    /// All tables.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// Table by index.
    pub fn get(&self, index: usize) -> Option<&Table> {
        self.tables.get(index)
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

/// Discovery tuning knobs.
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Candidates scoring below this are dropped.
    pub min_score: f64,
    /// Keep at most this many candidates per foreign table (best first).
    pub max_candidates_per_table: usize,
    /// Emit soft-key candidates (numeric proximity joins).
    pub enable_soft_keys: bool,
    /// Name-match bonus added to the overlap score.
    pub name_bonus: f64,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            min_score: 0.05,
            max_candidates_per_table: 2,
            enable_soft_keys: true,
            name_bonus: 0.25,
        }
    }
}

/// Column types that can key a join at all (floats of measurements are
/// excluded — joining on a measured value is meaningless).
fn keyable(dtype: DataType) -> bool {
    matches!(dtype, DataType::Int | DataType::Str | DataType::Timestamp)
}

fn compatible(a: DataType, b: DataType) -> bool {
    matches!(
        (a, b),
        (DataType::Str, DataType::Str)
            | (DataType::Int, DataType::Int)
            | (DataType::Timestamp, DataType::Timestamp)
            | (DataType::Timestamp, DataType::Int)
            | (DataType::Int, DataType::Timestamp)
    )
}

/// Numeric range overlap in `[0, 1]` (intersection over union of ranges).
fn range_overlap(base: &Table, bcol: &str, foreign: &Table, fcol: &str) -> f64 {
    let minmax = |t: &Table, c: &str| -> Option<(f64, f64)> {
        let col = t.column(c).ok()?;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..col.len() {
            if let Some(v) = col.get_f64(i) {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if lo.is_finite() {
            Some((lo, hi))
        } else {
            None
        }
    };
    match (minmax(base, bcol), minmax(foreign, fcol)) {
        (Some((bl, bh)), Some((fl, fh))) => {
            let inter = (bh.min(fh) - bl.max(fl)).max(0.0);
            let union = (bh.max(fh) - bl.min(fl)).max(1e-12);
            inter / union
        }
        _ => 0.0,
    }
}

/// Mine and score every candidate of `base` against one repository table,
/// returning that table's best candidates (descending score, capped).
fn mine_table(
    base: &Table,
    ti: usize,
    foreign: &Table,
    cfg: &DiscoveryConfig,
) -> Result<Vec<CandidateJoin>, TableError> {
    let mut per_table: Vec<CandidateJoin> = Vec::new();
    for bcol in base.columns() {
        if !keyable(bcol.dtype()) {
            continue;
        }
        for fcol in foreign.columns() {
            if !keyable(fcol.dtype()) || !compatible(bcol.dtype(), fcol.dtype()) {
                continue;
            }
            let stats =
                join_stats(base, foreign, &[bcol.name()], &[fcol.name()]).map_err(|e| match e {
                    arda_join::JoinError::Table(t) => t,
                    other => TableError::Invalid(other.to_string()),
                })?;
            let exact = stats.intersection_score();
            let name_match = bcol.name().eq_ignore_ascii_case(fcol.name())
                || bcol
                    .name()
                    .to_lowercase()
                    .contains(&fcol.name().to_lowercase())
                || fcol
                    .name()
                    .to_lowercase()
                    .contains(&bcol.name().to_lowercase());

            let timey = bcol.dtype() == DataType::Timestamp || fcol.dtype() == DataType::Timestamp;
            let (kind, mut score) = if timey && cfg.enable_soft_keys {
                // Time keys: proximity matters more than exact equality.
                let overlap = range_overlap(base, bcol.name(), foreign, fcol.name());
                (KeyKind::Soft, overlap.max(exact))
            } else if exact <= 0.02
                && cfg.enable_soft_keys
                && bcol.dtype() == DataType::Int
                && fcol.dtype() == DataType::Int
            {
                // Near-zero exact overlap but overlapping ranges →
                // plausible soft key.
                let overlap = range_overlap(base, bcol.name(), foreign, fcol.name());
                if overlap > 0.3 {
                    (KeyKind::Soft, overlap * 0.5)
                } else {
                    (KeyKind::Hard, exact)
                }
            } else {
                (KeyKind::Hard, exact)
            };
            if name_match {
                score += cfg.name_bonus;
            }
            if score >= cfg.min_score {
                per_table.push(CandidateJoin {
                    table_index: ti,
                    table_name: foreign.name().to_string(),
                    base_key: bcol.name().to_string(),
                    foreign_key: fcol.name().to_string(),
                    kind,
                    score,
                });
            }
        }
    }
    per_table.sort_by(|a, b| b.score.total_cmp(&a.score));
    per_table.truncate(cfg.max_candidates_per_table);
    Ok(per_table)
}

/// Mine, score and rank candidate joins of `base` against every repository
/// table. Results are sorted by descending score.
///
/// Each table's column-pair scoring (value-overlap statistics over every
/// compatible pair) is independent of every other table's, so the per-table
/// mining fans out on the ambient `arda-par` work budget; the ordered
/// results are folded back in repository order before the global rank, so
/// the candidate list is identical to the sequential scan at any budget.
pub fn discover_joins(
    base: &Table,
    repo: &Repository,
    cfg: &DiscoveryConfig,
) -> Result<Vec<CandidateJoin>, TableError> {
    let mined = arda_par::par_map(repo.tables(), 0, |ti, foreign| {
        mine_table(base, ti, foreign, cfg)
    });
    let mut all = Vec::new();
    for per_table in mined {
        all.extend(per_table?);
    }
    all.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then(a.table_index.cmp(&b.table_index))
    });
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arda_table::Column;

    fn base() -> Table {
        Table::new(
            "taxi",
            vec![
                Column::from_timestamps("date", (0..30).map(|i| i * 86_400).collect()),
                Column::from_str(
                    "borough",
                    (0..30)
                        .map(|i| ["bronx", "queens", "manhattan"][i % 3])
                        .collect(),
                ),
                Column::from_f64("trips", (0..30).map(|i| i as f64).collect()),
            ],
        )
        .unwrap()
    }

    fn weather() -> Table {
        Table::new(
            "weather",
            vec![
                Column::from_timestamps("date", (0..720).map(|i| i * 3_600).collect()),
                Column::from_f64("temp", (0..720).map(|i| (i % 24) as f64).collect()),
            ],
        )
        .unwrap()
    }

    fn population() -> Table {
        Table::new(
            "population",
            vec![
                Column::from_str("borough", vec!["bronx", "queens", "manhattan", "brooklyn"]),
                Column::from_f64("pop", vec![1.4, 2.3, 1.6, 2.6]),
            ],
        )
        .unwrap()
    }

    fn junk() -> Table {
        Table::new(
            "junk",
            vec![
                Column::from_str("code", vec!["zz1", "zz2"]),
                Column::from_f64("x", vec![0.0, 1.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn finds_hard_and_soft_candidates() {
        let repo = Repository::from_tables(vec![weather(), population(), junk()]);
        let cands = discover_joins(&base(), &repo, &DiscoveryConfig::default()).unwrap();
        let names: Vec<&str> = cands.iter().map(|c| c.table_name.as_str()).collect();
        assert!(names.contains(&"weather"), "weather discovered: {names:?}");
        assert!(
            names.contains(&"population"),
            "population discovered: {names:?}"
        );
        assert!(!names.contains(&"junk"), "junk filtered: {names:?}");
        let w = cands.iter().find(|c| c.table_name == "weather").unwrap();
        assert_eq!(w.kind, KeyKind::Soft, "time keys are soft");
        let p = cands.iter().find(|c| c.table_name == "population").unwrap();
        assert_eq!(p.kind, KeyKind::Hard);
        assert_eq!(p.base_key, "borough");
    }

    #[test]
    fn ranking_is_descending() {
        let repo = Repository::from_tables(vec![weather(), population()]);
        let cands = discover_joins(&base(), &repo, &DiscoveryConfig::default()).unwrap();
        for w in cands.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn name_bonus_boosts_matching_columns() {
        let mut cfg = DiscoveryConfig {
            name_bonus: 0.0,
            ..Default::default()
        };
        let repo = Repository::from_tables(vec![population()]);
        let without = discover_joins(&base(), &repo, &cfg).unwrap();
        cfg.name_bonus = 0.5;
        let with = discover_joins(&base(), &repo, &cfg).unwrap();
        assert!(with[0].score > without[0].score + 0.4);
    }

    #[test]
    fn soft_keys_can_be_disabled() {
        let cfg = DiscoveryConfig {
            enable_soft_keys: false,
            ..Default::default()
        };
        let repo = Repository::from_tables(vec![weather()]);
        let cands = discover_joins(&base(), &repo, &cfg).unwrap();
        assert!(cands.iter().all(|c| c.kind == KeyKind::Hard));
    }

    #[test]
    fn measurement_floats_never_key() {
        let repo = Repository::from_tables(vec![weather()]);
        let cands = discover_joins(&base(), &repo, &DiscoveryConfig::default()).unwrap();
        assert!(cands
            .iter()
            .all(|c| c.base_key != "trips" && c.foreign_key != "temp"));
    }

    #[test]
    fn per_table_cap_respected() {
        let cfg = DiscoveryConfig {
            max_candidates_per_table: 1,
            ..Default::default()
        };
        let repo = Repository::from_tables(vec![weather(), population()]);
        let cands = discover_joins(&base(), &repo, &cfg).unwrap();
        for ti in [0usize, 1] {
            assert!(cands.iter().filter(|c| c.table_index == ti).count() <= 1);
        }
    }

    #[test]
    fn repository_basics() {
        let mut repo = Repository::new();
        assert!(repo.is_empty());
        let i = repo.add(junk());
        assert_eq!(repo.len(), 1);
        assert_eq!(repo.get(i).unwrap().name(), "junk");
        assert!(repo.get(9).is_none());
    }
}
