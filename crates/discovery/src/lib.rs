//! # arda-discovery
//!
//! A join-discovery simulator standing in for Aurum / NYU Auctus.
//!
//! ARDA assumes "an external data discovery system automatically determines
//! a collection of candidate joins: columns in the base table that are
//! potentially foreign keys into another table" (§2), possibly *very noisy*
//! — most candidates are semantically meaningless. This crate reproduces
//! that artifact from a raw [`Repository`] of tables:
//!
//! * column-pair candidate mining with type-compatibility rules,
//! * value-overlap (intersection / Jaccard) scoring, with a bonus for
//!   matching column names,
//! * hard/soft key classification — timestamp-typed pairs and numeric pairs
//!   with range overlap but little exact-value overlap become *soft* keys
//!   (the weather-vs-taxi time-key situation), everything else *hard*,
//! * relevance-ranked output: a `Vec<CandidateJoin>` exactly like the input
//!   ARDA expects, including the ranking "ARDA can optionally make use of
//!   ... to prioritize its search" (§3).
//!
//! ## Sharded repositories
//!
//! A [`Repository`] is a pool of candidate tables addressed by index. Two
//! backing stores coexist behind one API:
//!
//! * **eager** — the original `Vec<Table>` path ([`Repository::from_tables`]
//!   / [`Repository::add`]), every table resident up front;
//! * **directory-sharded** — [`Repository::from_dir`] scans a directory of
//!   shards into a *manifest* (name, path, column count and — when the
//!   format records them — dtypes and row count per shard) and each shard
//!   is parsed lazily on first [`Repository::table`] access. Loaded shards
//!   are cached as [`Arc<Table>`] behind an LRU bound
//!   ([`Repository::with_cache_capacity`]), so repositories far larger
//!   than memory can be mined; eviction only drops the cache's reference,
//!   never a table a caller still holds.
//!
//! Two shard formats mix freely behind one manifest:
//!
//! * `*.csv` — header-only scan via [`arda_table::read_csv_header`]
//!   (names/width known, dtypes/rows unknown until a full parse), bodies
//!   streamed in by the budget-parallel CSV engine;
//! * `*.arda` — the typed binary columnar store: the header scan
//!   ([`arda_table::read_arda_header`]) also yields exact dtypes and row
//!   counts, so planning can be dtype-aware without loading anything, and
//!   every [`arda_table::DataType`] (Timestamps included) survives
//!   persistence bit-exactly. [`Repository::save_dir`] converts any
//!   repository into this form.
//!
//! ## The persistent catalog (`_catalog.arda`)
//!
//! A cold `from_dir` opens every shard for its header. To make warm runs
//! free, the manifest is persisted as `_catalog.arda` in the shard
//! directory — itself an `.arda` table with one row per shard: file name,
//! width, dtypes, row count, and the file's `(mtime_ns, size)` at scan
//! time. Invalidation rules:
//!
//! * the catalog is used **only** when it covers *exactly* the directory's
//!   current shard set and every shard's `(mtime_ns, size)` matches the
//!   recorded pair — then `from_dir` performs **zero** per-shard header
//!   reads ([`Repository::header_scans`] returns 0 and
//!   [`Repository::catalog_hit`] is true);
//! * any added, removed or modified shard invalidates the whole catalog:
//!   `from_dir` falls back to a full header scan and atomically rewrites
//!   `_catalog.arda` (temp file + rename), so a torn write can never be
//!   read back;
//! * a missing, unreadable or malformed catalog is simply a cold scan —
//!   never an error — and catalog *writing* is best-effort (a read-only
//!   shard directory still works, it is just always cold).
//!
//! The manifest is sorted by file name, and a reloaded shard parses to the
//! exact same table, so discovery and the downstream pipeline are
//! deterministic regardless of cache hits, evictions, catalog hits or
//! load order.

use arda_join::stats::join_stats;
use arda_table::{Column, CsvReadOptions, DataType, Table, TableError};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Hard vs soft key classification of a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyKind {
    /// Exact-equality joinable.
    Hard,
    /// Proximity-joinable (time, GPS, age, ...).
    Soft,
}

/// One discovered candidate join.
#[derive(Debug, Clone)]
pub struct CandidateJoin {
    /// Index of the foreign table in the repository.
    pub table_index: usize,
    /// Foreign table name.
    pub table_name: String,
    /// Base-table key column.
    pub base_key: String,
    /// Foreign-table key column.
    pub foreign_key: String,
    /// Hard or soft key.
    pub kind: KeyKind,
    /// Relevance score (higher = more promising).
    pub score: f64,
}

/// One entry of a repository: either a resident table or a shard on disk,
/// loaded on demand.
#[derive(Debug, Clone)]
enum Source {
    Mem(Arc<Table>),
    Disk(ShardMeta),
}

/// On-disk shard encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShardFormat {
    /// Text shard parsed by the streaming CSV engine.
    Csv,
    /// Typed binary columnar shard (`arda_table::store`).
    Arda,
}

impl ShardFormat {
    fn from_path(path: &Path) -> Option<ShardFormat> {
        match path.extension().and_then(|e| e.to_str()) {
            Some("csv") => Some(ShardFormat::Csv),
            Some("arda") => Some(ShardFormat::Arda),
            _ => None,
        }
    }
}

/// Manifest entry for one on-disk shard (CSV or binary). The catalog
/// fields are embedded as one [`CatalogEntry`], so the warm path, the
/// cold path and the catalog rewrite all share a single source of truth.
#[derive(Debug, Clone)]
struct ShardMeta {
    name: String,
    path: PathBuf,
    format: ShardFormat,
    entry: CatalogEntry,
}

/// `(mtime_ns, size)` of a file; mtime falls back to 0 on filesystems
/// that cannot report one (such a shard then never catalog-validates as
/// fresh against a different size, but same-size rewrites go unseen —
/// the documented, degraded-but-safe-enough fallback).
fn stat_pair(path: &Path) -> Result<(i64, u64), TableError> {
    let md = std::fs::metadata(path)
        .map_err(|e| TableError::Store(format!("cannot stat {}: {e}", path.display())))?;
    let mtime_ns = md
        .modified()
        .ok()
        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
        .map(|d| d.as_nanos().min(i64::MAX as u128) as i64)
        .unwrap_or(0);
    Ok((mtime_ns, md.len()))
}

fn file_stem(path: &Path) -> String {
    path.file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("table")
        .to_string()
}

/// Make a table name safe to use as a shard file stem: path separators
/// and NUL become `_`, and stems that would escape or hide the file
/// (`..`, `.`, empty, leading `.`) fall back to a plain name. Keeps
/// `save_dir` writing strictly inside its target directory no matter
/// what a repository's tables are called.
fn sanitize_stem(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| match c {
            '/' | '\\' | '\0' => '_',
            c => c,
        })
        .collect();
    match cleaned.as_str() {
        "" | "." | ".." => "table".to_string(),
        s if s.starts_with('.') => format!("table{s}"),
        _ => cleaned,
    }
}

/// Name of the persistent shard-metadata catalog inside a shard
/// directory. Never listed as a shard itself.
pub const CATALOG_FILE: &str = "_catalog.arda";

/// One catalog row: everything the manifest scan would have learned about
/// a shard, plus the freshness pair.
#[derive(Debug, Clone)]
struct CatalogEntry {
    /// File name within the shard directory (the catalog key).
    file_name: String,
    n_cols: usize,
    /// Exact row count — known for `.arda` shards, unknown for CSV until
    /// a full parse.
    n_rows: Option<usize>,
    /// Exact column dtypes — known for `.arda` shards only.
    dtypes: Option<Vec<DataType>>,
    /// File modification time (ns since epoch) and byte size at scan
    /// time; the catalog invalidation pair.
    mtime_ns: i64,
    size: u64,
}

/// Read and decode `_catalog.arda`. Any failure — missing file, corrupt
/// bytes, unexpected schema, malformed dtype strings — yields `None`: a
/// bad catalog is a cold scan, never an error.
fn read_catalog(dir: &Path) -> Option<HashMap<String, CatalogEntry>> {
    let table = arda_table::read_arda(dir.join(CATALOG_FILE)).ok()?;
    let file = table.column("file").ok()?;
    let n_cols = table.column("n_cols").ok()?;
    let n_rows = table.column("n_rows").ok()?;
    let dtypes = table.column("dtypes").ok()?;
    let mtime_ns = table.column("mtime_ns").ok()?;
    let size = table.column("size").ok()?;
    let mut out = HashMap::with_capacity(table.n_rows());
    for i in 0..table.n_rows() {
        let file_name = file.get(i).as_str()?.to_string();
        // "?" = dtypes unknown (CSV shard); "" = known zero-column
        // schema; otherwise a comma-joined dtype list — so a warm
        // manifest reproduces the cold scan exactly, empty schemas
        // included.
        let dtypes = match dtypes.get(i).as_str()? {
            "?" => None,
            "" => Some(Vec::new()),
            joined => Some(
                joined
                    .split(',')
                    .map(|s| s.parse::<DataType>().ok())
                    .collect::<Option<Vec<_>>>()?,
            ),
        };
        let rows = n_rows.get(i).as_i64()?;
        out.insert(
            file_name.clone(),
            CatalogEntry {
                file_name,
                n_cols: usize::try_from(n_cols.get(i).as_i64()?).ok()?,
                n_rows: usize::try_from(rows).ok(),
                dtypes,
                mtime_ns: mtime_ns.get(i).as_i64()?,
                size: u64::try_from(size.get(i).as_i64()?).ok()?,
            },
        );
    }
    Some(out)
}

/// Serial number for catalog temp files, so concurrent writers in one
/// process never collide.
static CATALOG_TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Atomically (re)write `_catalog.arda`: encode to a temp file in the
/// same directory, then rename over the target, so a concurrent
/// [`read_catalog`] sees either the old or the new catalog — never a
/// torn one.
fn write_catalog(dir: &Path, entries: Vec<CatalogEntry>) -> Result<(), TableError> {
    let join_dtypes = |d: &Option<Vec<DataType>>| -> String {
        d.as_ref().map_or("?".to_string(), |v| {
            v.iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
    };
    let table = Table::new(
        "_catalog",
        vec![
            Column::from_strings(
                "file",
                entries.iter().map(|e| e.file_name.clone()).collect(),
            ),
            Column::from_i64("n_cols", entries.iter().map(|e| e.n_cols as i64).collect()),
            Column::from_i64(
                "n_rows",
                entries
                    .iter()
                    .map(|e| e.n_rows.map_or(-1, |n| n as i64))
                    .collect(),
            ),
            Column::from_strings(
                "dtypes",
                entries.iter().map(|e| join_dtypes(&e.dtypes)).collect(),
            ),
            Column::from_i64("mtime_ns", entries.iter().map(|e| e.mtime_ns).collect()),
            Column::from_i64("size", entries.iter().map(|e| e.size as i64).collect()),
        ],
    )?;
    let seq = CATALOG_TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = dir.join(format!(".{CATALOG_FILE}.tmp-{}-{seq}", std::process::id()));
    if let Err(e) = arda_table::write_arda_file(&table, &tmp) {
        let _ = std::fs::remove_file(&tmp); // no stray temp on a failed write
        return Err(e);
    }
    std::fs::rename(&tmp, dir.join(CATALOG_FILE)).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        TableError::Store(format!("cannot publish {CATALOG_FILE}: {e}"))
    })
}

/// LRU cache of lazily loaded shards, keyed by repository index.
#[derive(Debug, Default)]
struct ShardCache {
    loaded: HashMap<usize, Arc<Table>>,
    /// Access order, most recent last.
    lru: Vec<usize>,
}

impl ShardCache {
    fn touch(&mut self, index: usize) {
        self.lru.retain(|&i| i != index);
        self.lru.push(index);
    }

    fn evict_to(&mut self, capacity: usize) {
        while self.loaded.len() > capacity.max(1) {
            let oldest = self.lru.remove(0);
            self.loaded.remove(&oldest);
        }
    }
}

/// A pool of candidate tables (the "data repository" of Figure 1),
/// addressed by index. See the crate docs for the eager vs
/// directory-sharded backing stores.
#[derive(Debug, Clone)]
pub struct Repository {
    sources: Vec<Source>,
    cache: Arc<Mutex<ShardCache>>,
    /// Max shards resident in the cache (`usize::MAX` = unbounded).
    cache_capacity: usize,
    read_opts: CsvReadOptions,
    /// Per-shard header reads the constructing manifest scan performed
    /// (0 on a catalog hit or an eager repository).
    header_scans: usize,
    /// True when `from_dir` satisfied the whole manifest from a fresh
    /// `_catalog.arda`.
    catalog_hit: bool,
}

impl Default for Repository {
    fn default() -> Self {
        Repository::new()
    }
}

impl Repository {
    /// Empty repository.
    pub fn new() -> Self {
        Repository {
            sources: Vec::new(),
            cache: Arc::new(Mutex::new(ShardCache::default())),
            cache_capacity: usize::MAX,
            read_opts: CsvReadOptions::default(),
            header_scans: 0,
            catalog_hit: false,
        }
    }

    /// Build from resident tables (the eager path).
    pub fn from_tables(tables: Vec<Table>) -> Self {
        let mut repo = Repository::new();
        for t in tables {
            repo.sources.push(Source::Mem(Arc::new(t)));
        }
        repo
    }

    /// Build a directory-sharded repository: every `*.csv` and `*.arda`
    /// file directly in `dir` becomes one shard, named after its file stem
    /// and sorted by file name for determinism. Only headers are read here
    /// (the manifest scan) — and not even those when a fresh
    /// `_catalog.arda` covers the directory (see the crate docs for the
    /// invalidation rules). Table bodies are parsed lazily by
    /// [`Self::table`].
    pub fn from_dir(dir: impl AsRef<Path>) -> Result<Self, TableError> {
        Repository::from_dir_with(dir, &CsvReadOptions::default())
    }

    /// [`Self::from_dir`] with explicit streaming-read options for the
    /// lazy CSV shard loads.
    pub fn from_dir_with(dir: impl AsRef<Path>, opts: &CsvReadOptions) -> Result<Self, TableError> {
        let dir = dir.as_ref();
        let entries = std::fs::read_dir(dir).map_err(|e| {
            TableError::Csv(format!("cannot read repository dir {}: {e}", dir.display()))
        })?;
        let mut paths: Vec<(PathBuf, ShardFormat)> = Vec::new();
        for entry in entries {
            let path = entry.map_err(|e| TableError::Csv(e.to_string()))?.path();
            if !path.is_file() || path.file_name().and_then(|n| n.to_str()) == Some(CATALOG_FILE) {
                continue;
            }
            if let Some(format) = ShardFormat::from_path(&path) {
                paths.push((path, format));
            }
        }
        paths.sort_by(|a, b| a.0.cmp(&b.0));

        let mut repo = Repository::new();
        repo.read_opts = opts.clone();

        // Stat every shard up front: the pairs both validate the catalog
        // and (on a cold scan) become the next catalog's contents.
        let mut stats = Vec::with_capacity(paths.len());
        for (path, _) in &paths {
            stats.push(stat_pair(path)?);
        }

        // Warm path: a catalog that covers exactly this file set with
        // matching (mtime_ns, size) pairs supplies the whole manifest.
        if let Some(catalog) = read_catalog(dir) {
            if paths.len() == catalog.len() {
                let fresh = paths.iter().zip(&stats).all(|((path, _), &(mtime, size))| {
                    path.file_name()
                        .and_then(|n| n.to_str())
                        .and_then(|n| catalog.get(n))
                        .is_some_and(|e| e.mtime_ns == mtime && e.size == size)
                });
                if fresh {
                    for (path, format) in &paths {
                        let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                        repo.sources.push(Source::Disk(ShardMeta {
                            name: file_stem(path),
                            path: path.clone(),
                            format: *format,
                            entry: catalog[file_name].clone(),
                        }));
                    }
                    repo.catalog_hit = true;
                    return Ok(repo);
                }
            }
        }

        // Cold path: open every shard for its header, then persist what
        // was learned so the next scan is free.
        for ((path, format), (mtime_ns, size)) in paths.iter().zip(&stats) {
            let (n_cols, n_rows, dtypes) = match format {
                ShardFormat::Csv => {
                    let names = arda_table::read_csv_header(path)
                        .map_err(|e| TableError::Csv(format!("shard {}: {e}", path.display())))?;
                    (names.len(), None, None)
                }
                ShardFormat::Arda => {
                    let header = arda_table::read_arda_header(path)
                        .map_err(|e| TableError::Store(format!("shard {}: {e}", path.display())))?;
                    let dtypes: Vec<DataType> =
                        header.schema.fields().iter().map(|f| f.dtype).collect();
                    (header.schema.len(), Some(header.n_rows), Some(dtypes))
                }
            };
            repo.header_scans += 1;
            repo.sources.push(Source::Disk(ShardMeta {
                name: file_stem(path),
                path: path.clone(),
                format: *format,
                entry: CatalogEntry {
                    file_name: path
                        .file_name()
                        .and_then(|n| n.to_str())
                        .unwrap_or("")
                        .to_string(),
                    n_cols,
                    n_rows,
                    dtypes,
                    mtime_ns: *mtime_ns,
                    size: *size,
                },
            }));
        }
        if !repo.sources.is_empty() {
            // Best-effort: a read-only directory still works, just cold.
            let _ = write_catalog(dir, repo.disk_metas());
        }
        Ok(repo)
    }

    /// Persist every table of this repository into `dir` as typed binary
    /// `.arda` shards plus a fresh `_catalog.arda`, so a later
    /// [`Self::from_dir`] rebuilds the manifest — dtypes, row counts and
    /// all — without a single header read. Shards load through
    /// [`Self::table`], so a directory-sharded source converts
    /// (e.g. CSV → binary) under the configured cache bound; every
    /// [`arda_table::DataType`] survives bit-exactly, Timestamps included.
    ///
    /// Shard files are named `<table name>.arda`, with the name sanitized
    /// (path separators become `_`; `..`/empty/dot-leading stems fall
    /// back to `table…`) so a shard always lands inside `dir`. A name
    /// that collides — with another table (compared case-insensitively,
    /// so case-preserving filesystems like APFS/NTFS can't clobber
    /// either), or with the reserved `_catalog.arda` — gets its
    /// repository index (and, if still taken, a counter) appended, so no
    /// shard ever silently overwrites another.
    ///
    /// Saving twice into the same directory replaces the previous save:
    /// stale `.arda` shards recorded in the directory's existing
    /// `_catalog.arda` are removed (best-effort), so a later
    /// [`Self::from_dir`] cannot resurrect tables from an earlier save.
    /// Files the catalog never recorded — and `.csv` sources in
    /// particular — are **never** deleted; if unrelated shards sit in the
    /// directory, the next scan simply indexes the union, as for any
    /// hand-assembled shard directory.
    pub fn save_dir(&self, dir: impl AsRef<Path>) -> Result<(), TableError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| TableError::Store(format!("cannot create {}: {e}", dir.display())))?;
        // Snapshot the previous save's manifest before overwriting it;
        // these are the only files cleanup may touch.
        let previous: Vec<String> = read_catalog(dir)
            .map(|cat| cat.into_keys().collect())
            .unwrap_or_default();
        // Collision set is case-folded so case-preserving filesystems
        // (APFS/NTFS) can't silently overwrite "Sales.arda" with
        // "sales.arda"; `written` keeps the exact names for cleanup.
        let mut used = std::collections::HashSet::new();
        used.insert(CATALOG_FILE.to_lowercase());
        let mut written = std::collections::HashSet::new();
        let mut entries = Vec::with_capacity(self.len());
        for i in 0..self.len() {
            let table = self.table(i)?;
            let stem = sanitize_stem(self.name(i).unwrap_or("table"));
            let mut file_name = format!("{stem}.arda");
            let mut salt = 0usize;
            while !used.insert(file_name.to_lowercase()) {
                file_name = match salt {
                    0 => format!("{stem}_{i}.arda"),
                    s => format!("{stem}_{i}_{s}.arda"),
                };
                salt += 1;
            }
            written.insert(file_name.clone());
            let path = dir.join(&file_name);
            arda_table::write_arda_file(&table, &path)?;
            let (mtime_ns, size) = stat_pair(&path)?;
            entries.push(CatalogEntry {
                file_name,
                n_cols: table.n_cols(),
                n_rows: Some(table.n_rows()),
                dtypes: Some(table.columns().iter().map(|c| c.dtype()).collect()),
                mtime_ns,
                size,
            });
        }
        // Remove binary shards left over from a previous save into this
        // directory: without this, the next `from_dir` would cold-scan
        // the union and silently mine phantom tables. Scope is strictly
        // "`.arda` files the old catalog recorded and this save did not
        // rewrite" — user files (CSV sources included) are never touched.
        // The rewrite check is case-folded like the collision set: on a
        // case-insensitive filesystem, old "Sales.arda" IS freshly
        // written "sales.arda", and deleting it would destroy the shard
        // this very save produced.
        let written_folded: std::collections::HashSet<String> =
            written.iter().map(|n| n.to_lowercase()).collect();
        for old in previous {
            if old.ends_with(".arda")
                && old != CATALOG_FILE
                && !written_folded.contains(&old.to_lowercase())
            {
                let _ = std::fs::remove_file(dir.join(&old));
            }
        }
        write_catalog(dir, entries)
    }

    /// Catalog entries for the disk-backed shards of this repository.
    fn disk_metas(&self) -> Vec<CatalogEntry> {
        self.sources
            .iter()
            .filter_map(|s| match s {
                Source::Disk(m) => Some(m.entry.clone()),
                Source::Mem(_) => None,
            })
            .collect()
    }

    /// Bound the lazy-load cache to at most `capacity` resident shards
    /// (LRU eviction; clamped to ≥ 1). Eager tables are unaffected.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity.max(1);
        self.cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .evict_to(self.cache_capacity);
        self
    }

    /// Add a resident table, returning its index.
    pub fn add(&mut self, table: Table) -> usize {
        self.sources.push(Source::Mem(Arc::new(table)));
        self.sources.len() - 1
    }

    /// Table by index, loading a sharded table from disk on first access.
    /// The returned [`Arc`] stays valid even if the cache later evicts the
    /// shard.
    pub fn table(&self, index: usize) -> Result<Arc<Table>, TableError> {
        let source = self.sources.get(index).ok_or_else(|| {
            TableError::Invalid(format!(
                "repository table {index} out of range ({} tables)",
                self.sources.len()
            ))
        })?;
        match source {
            Source::Mem(t) => Ok(Arc::clone(t)),
            Source::Disk(meta) => {
                {
                    let mut cache = self.cache.lock().unwrap_or_else(|p| p.into_inner());
                    if let Some(t) = cache.loaded.get(&index) {
                        let t = Arc::clone(t);
                        cache.touch(index);
                        return Ok(t);
                    }
                }
                // Load outside the lock so distinct shards parse
                // concurrently; a racing duplicate load of the same shard
                // yields an identical table, so first-insert-wins is safe.
                let loaded = match meta.format {
                    ShardFormat::Csv => Arc::new(
                        arda_table::read_csv_with(&meta.path, &self.read_opts).map_err(|e| {
                            TableError::Csv(format!("shard {}: {e}", meta.path.display()))
                        })?,
                    ),
                    ShardFormat::Arda => {
                        Arc::new(arda_table::read_arda(&meta.path).map_err(|e| {
                            TableError::Store(format!("shard {}: {e}", meta.path.display()))
                        })?)
                    }
                };
                let mut cache = self.cache.lock().unwrap_or_else(|p| p.into_inner());
                let entry = cache
                    .loaded
                    .entry(index)
                    .or_insert_with(|| Arc::clone(&loaded));
                let out = Arc::clone(entry);
                cache.touch(index);
                cache.evict_to(self.cache_capacity);
                Ok(out)
            }
        }
    }

    /// Table by index; `None` when out of range or the shard fails to
    /// load. Prefer [`Self::table`] where the error matters.
    pub fn get(&self, index: usize) -> Option<Arc<Table>> {
        self.table(index).ok()
    }

    /// Table name by index (from the manifest — never loads a shard).
    pub fn name(&self, index: usize) -> Option<&str> {
        self.sources.get(index).map(|s| match s {
            Source::Mem(t) => t.name(),
            Source::Disk(meta) => meta.name.as_str(),
        })
    }

    /// Column count by index (from the manifest — never loads a shard).
    pub fn n_cols(&self, index: usize) -> Option<usize> {
        self.sources.get(index).map(|s| match s {
            Source::Mem(t) => t.n_cols(),
            Source::Disk(meta) => meta.entry.n_cols,
        })
    }

    /// Column dtypes by index, when the manifest knows them — resident
    /// tables and `.arda` shards (header or catalog), but not yet-unparsed
    /// CSV shards. Never loads a shard; this is what lets discovery skip
    /// type-incompatible shards without touching their bodies.
    pub fn dtypes(&self, index: usize) -> Option<Vec<DataType>> {
        match self.sources.get(index)? {
            Source::Mem(t) => Some(t.columns().iter().map(|c| c.dtype()).collect()),
            Source::Disk(meta) => meta.entry.dtypes.clone(),
        }
    }

    /// Row count by index, when the manifest knows it (resident tables and
    /// `.arda` shards). Never loads a shard.
    pub fn n_rows(&self, index: usize) -> Option<usize> {
        match self.sources.get(index)? {
            Source::Mem(t) => Some(t.n_rows()),
            Source::Disk(meta) => meta.entry.n_rows,
        }
    }

    /// Per-shard header reads performed while building this repository:
    /// one per shard on a cold `from_dir`, **zero** on a catalog hit (and
    /// always zero for eager repositories). Construction-time
    /// instrumentation for the catalog's whole point.
    pub fn header_scans(&self) -> usize {
        self.header_scans
    }

    /// True when `from_dir` rebuilt the entire manifest from a fresh
    /// `_catalog.arda` without opening any shard.
    pub fn catalog_hit(&self) -> bool {
        self.catalog_hit
    }

    /// Number of lazily loaded shards currently resident in the cache.
    pub fn resident_shards(&self) -> usize {
        self.cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .loaded
            .len()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }
}

/// Discovery tuning knobs.
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Candidates scoring below this are dropped.
    pub min_score: f64,
    /// Keep at most this many candidates per foreign table (best first).
    pub max_candidates_per_table: usize,
    /// Emit soft-key candidates (numeric proximity joins).
    pub enable_soft_keys: bool,
    /// Name-match bonus added to the overlap score.
    pub name_bonus: f64,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            min_score: 0.05,
            max_candidates_per_table: 2,
            enable_soft_keys: true,
            name_bonus: 0.25,
        }
    }
}

/// Column types that can key a join at all (floats of measurements are
/// excluded — joining on a measured value is meaningless).
fn keyable(dtype: DataType) -> bool {
    matches!(dtype, DataType::Int | DataType::Str | DataType::Timestamp)
}

fn compatible(a: DataType, b: DataType) -> bool {
    matches!(
        (a, b),
        (DataType::Str, DataType::Str)
            | (DataType::Int, DataType::Int)
            | (DataType::Timestamp, DataType::Timestamp)
            | (DataType::Timestamp, DataType::Int)
            | (DataType::Int, DataType::Timestamp)
    )
}

/// Numeric range overlap in `[0, 1]` (intersection over union of ranges).
fn range_overlap(base: &Table, bcol: &str, foreign: &Table, fcol: &str) -> f64 {
    let minmax = |t: &Table, c: &str| -> Option<(f64, f64)> {
        let col = t.column(c).ok()?;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..col.len() {
            if let Some(v) = col.get_f64(i) {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if lo.is_finite() {
            Some((lo, hi))
        } else {
            None
        }
    };
    match (minmax(base, bcol), minmax(foreign, fcol)) {
        (Some((bl, bh)), Some((fl, fh))) => {
            let inter = (bh.min(fh) - bl.max(fl)).max(0.0);
            let union = (bh.max(fh) - bl.min(fl)).max(1e-12);
            inter / union
        }
        _ => 0.0,
    }
}

/// Mine and score every candidate of `base` against one repository table,
/// returning that table's best candidates (descending score, capped).
fn mine_table(
    base: &Table,
    ti: usize,
    foreign: &Table,
    cfg: &DiscoveryConfig,
) -> Result<Vec<CandidateJoin>, TableError> {
    let mut per_table: Vec<CandidateJoin> = Vec::new();
    for bcol in base.columns() {
        if !keyable(bcol.dtype()) {
            continue;
        }
        for fcol in foreign.columns() {
            if !keyable(fcol.dtype()) || !compatible(bcol.dtype(), fcol.dtype()) {
                continue;
            }
            let stats =
                join_stats(base, foreign, &[bcol.name()], &[fcol.name()]).map_err(|e| match e {
                    arda_join::JoinError::Table(t) => t,
                    other => TableError::Invalid(other.to_string()),
                })?;
            let exact = stats.intersection_score();
            let name_match = bcol.name().eq_ignore_ascii_case(fcol.name())
                || bcol
                    .name()
                    .to_lowercase()
                    .contains(&fcol.name().to_lowercase())
                || fcol
                    .name()
                    .to_lowercase()
                    .contains(&bcol.name().to_lowercase());

            let timey = bcol.dtype() == DataType::Timestamp || fcol.dtype() == DataType::Timestamp;
            let (kind, mut score) = if timey && cfg.enable_soft_keys {
                // Time keys: proximity matters more than exact equality.
                let overlap = range_overlap(base, bcol.name(), foreign, fcol.name());
                (KeyKind::Soft, overlap.max(exact))
            } else if exact <= 0.02
                && cfg.enable_soft_keys
                && bcol.dtype() == DataType::Int
                && fcol.dtype() == DataType::Int
            {
                // Near-zero exact overlap but overlapping ranges →
                // plausible soft key.
                let overlap = range_overlap(base, bcol.name(), foreign, fcol.name());
                if overlap > 0.3 {
                    (KeyKind::Soft, overlap * 0.5)
                } else {
                    (KeyKind::Hard, exact)
                }
            } else {
                (KeyKind::Hard, exact)
            };
            if name_match {
                score += cfg.name_bonus;
            }
            if score >= cfg.min_score {
                per_table.push(CandidateJoin {
                    table_index: ti,
                    table_name: foreign.name().to_string(),
                    base_key: bcol.name().to_string(),
                    foreign_key: fcol.name().to_string(),
                    kind,
                    score,
                });
            }
        }
    }
    per_table.sort_by(|a, b| b.score.total_cmp(&a.score));
    per_table.truncate(cfg.max_candidates_per_table);
    Ok(per_table)
}

/// Mine, score and rank candidate joins of `base` against every repository
/// table. Results are sorted by descending score.
///
/// Each table's column-pair scoring (value-overlap statistics over every
/// compatible pair) is independent of every other table's, so the per-table
/// mining fans out on the ambient `arda-par` work budget; on a
/// directory-sharded repository each worker lazily loads (and, under a
/// cache bound, later evicts) its own shards concurrently. When the
/// manifest knows a shard's dtypes (`.arda` header or catalog), shards
/// with no column type-compatible with any keyable base column are
/// skipped **without loading** — exactly equivalent to mining them, since
/// such a table can contribute no candidate pair. The ordered results are
/// folded back in repository order before the global rank, so the
/// candidate list is identical to the sequential scan at any budget,
/// cache state, catalog state or load interleaving.
pub fn discover_joins(
    base: &Table,
    repo: &Repository,
    cfg: &DiscoveryConfig,
) -> Result<Vec<CandidateJoin>, TableError> {
    let base_key_dtypes: Vec<DataType> = base
        .columns()
        .iter()
        .map(|c| c.dtype())
        .filter(|&d| keyable(d))
        .collect();
    let indices: Vec<usize> = (0..repo.len()).collect();
    let mined = arda_par::par_map(&indices, 0, |_, &ti| {
        if let Some(dtypes) = repo.dtypes(ti) {
            let joinable = dtypes
                .iter()
                .any(|&fd| keyable(fd) && base_key_dtypes.iter().any(|&bd| compatible(bd, fd)));
            if !joinable {
                return Ok(Vec::new());
            }
        }
        let foreign = repo.table(ti)?;
        mine_table(base, ti, &foreign, cfg)
    });
    let mut all = Vec::new();
    for per_table in mined {
        all.extend(per_table?);
    }
    all.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then(a.table_index.cmp(&b.table_index))
    });
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arda_table::Column;

    fn base() -> Table {
        Table::new(
            "taxi",
            vec![
                Column::from_timestamps("date", (0..30).map(|i| i * 86_400).collect()),
                Column::from_str(
                    "borough",
                    (0..30)
                        .map(|i| ["bronx", "queens", "manhattan"][i % 3])
                        .collect(),
                ),
                Column::from_f64("trips", (0..30).map(|i| i as f64).collect()),
            ],
        )
        .unwrap()
    }

    fn weather() -> Table {
        Table::new(
            "weather",
            vec![
                Column::from_timestamps("date", (0..720).map(|i| i * 3_600).collect()),
                Column::from_f64("temp", (0..720).map(|i| (i % 24) as f64).collect()),
            ],
        )
        .unwrap()
    }

    fn population() -> Table {
        Table::new(
            "population",
            vec![
                Column::from_str("borough", vec!["bronx", "queens", "manhattan", "brooklyn"]),
                Column::from_f64("pop", vec![1.4, 2.3, 1.6, 2.6]),
            ],
        )
        .unwrap()
    }

    fn junk() -> Table {
        Table::new(
            "junk",
            vec![
                Column::from_str("code", vec!["zz1", "zz2"]),
                Column::from_f64("x", vec![0.0, 1.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn finds_hard_and_soft_candidates() {
        let repo = Repository::from_tables(vec![weather(), population(), junk()]);
        let cands = discover_joins(&base(), &repo, &DiscoveryConfig::default()).unwrap();
        let names: Vec<&str> = cands.iter().map(|c| c.table_name.as_str()).collect();
        assert!(names.contains(&"weather"), "weather discovered: {names:?}");
        assert!(
            names.contains(&"population"),
            "population discovered: {names:?}"
        );
        assert!(!names.contains(&"junk"), "junk filtered: {names:?}");
        let w = cands.iter().find(|c| c.table_name == "weather").unwrap();
        assert_eq!(w.kind, KeyKind::Soft, "time keys are soft");
        let p = cands.iter().find(|c| c.table_name == "population").unwrap();
        assert_eq!(p.kind, KeyKind::Hard);
        assert_eq!(p.base_key, "borough");
    }

    #[test]
    fn ranking_is_descending() {
        let repo = Repository::from_tables(vec![weather(), population()]);
        let cands = discover_joins(&base(), &repo, &DiscoveryConfig::default()).unwrap();
        for w in cands.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn name_bonus_boosts_matching_columns() {
        let mut cfg = DiscoveryConfig {
            name_bonus: 0.0,
            ..Default::default()
        };
        let repo = Repository::from_tables(vec![population()]);
        let without = discover_joins(&base(), &repo, &cfg).unwrap();
        cfg.name_bonus = 0.5;
        let with = discover_joins(&base(), &repo, &cfg).unwrap();
        assert!(with[0].score > without[0].score + 0.4);
    }

    #[test]
    fn soft_keys_can_be_disabled() {
        let cfg = DiscoveryConfig {
            enable_soft_keys: false,
            ..Default::default()
        };
        let repo = Repository::from_tables(vec![weather()]);
        let cands = discover_joins(&base(), &repo, &cfg).unwrap();
        assert!(cands.iter().all(|c| c.kind == KeyKind::Hard));
    }

    #[test]
    fn measurement_floats_never_key() {
        let repo = Repository::from_tables(vec![weather()]);
        let cands = discover_joins(&base(), &repo, &DiscoveryConfig::default()).unwrap();
        assert!(cands
            .iter()
            .all(|c| c.base_key != "trips" && c.foreign_key != "temp"));
    }

    #[test]
    fn per_table_cap_respected() {
        let cfg = DiscoveryConfig {
            max_candidates_per_table: 1,
            ..Default::default()
        };
        let repo = Repository::from_tables(vec![weather(), population()]);
        let cands = discover_joins(&base(), &repo, &cfg).unwrap();
        for ti in [0usize, 1] {
            assert!(cands.iter().filter(|c| c.table_index == ti).count() <= 1);
        }
    }

    #[test]
    fn repository_basics() {
        let mut repo = Repository::new();
        assert!(repo.is_empty());
        let i = repo.add(junk());
        assert_eq!(repo.len(), 1);
        assert_eq!(repo.get(i).unwrap().name(), "junk");
        assert_eq!(repo.name(i), Some("junk"));
        assert_eq!(repo.n_cols(i), Some(2));
        assert!(repo.get(9).is_none());
        assert!(repo.table(9).is_err());
    }

    /// Write every table of an eager repository into `dir` as CSV shards.
    fn write_shards(dir: &std::path::Path, tables: &[Table]) {
        std::fs::create_dir_all(dir).unwrap();
        for t in tables {
            let f = std::fs::File::create(dir.join(format!("{}.csv", t.name()))).unwrap();
            arda_table::write_csv(t, f).unwrap();
        }
    }

    #[test]
    fn sharded_repository_loads_lazily_and_evicts() {
        let dir = std::env::temp_dir().join(format!("arda_disc_shards_{}", std::process::id()));
        write_shards(&dir, &[junk(), population(), weather()]);

        let repo = Repository::from_dir(&dir).unwrap().with_cache_capacity(1);
        // Manifest only: sorted by file name, metadata available, nothing
        // loaded yet.
        assert_eq!(repo.len(), 3);
        assert_eq!(repo.name(0), Some("junk"));
        assert_eq!(repo.name(1), Some("population"));
        assert_eq!(repo.name(2), Some("weather"));
        assert_eq!(repo.n_cols(1), Some(2));
        assert_eq!(repo.resident_shards(), 0, "manifest scan loads nothing");

        // Loads on demand; the cache bound evicts the least recent shard.
        let pop = repo.table(1).unwrap();
        assert_eq!(pop.name(), "population");
        assert_eq!(pop.n_rows(), 4);
        assert_eq!(repo.resident_shards(), 1);
        let w = repo.table(2).unwrap();
        assert_eq!(w.n_rows(), 720);
        assert_eq!(repo.resident_shards(), 1, "capacity 1 evicted population");
        // The evicted Arc stays usable.
        assert_eq!(pop.column("borough").unwrap().len(), 4);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_discovery_matches_eager() {
        let dir = std::env::temp_dir().join(format!("arda_disc_eq_{}", std::process::id()));
        // Since PR 5 timestamps round-trip CSV via `@tick`, so reloaded
        // shards equal the originals; comparing against an eager
        // repository built from the reloaded tables keeps the test
        // self-contained either way.
        write_shards(&dir, &[junk(), population(), weather()]);
        let sharded = Repository::from_dir(&dir).unwrap().with_cache_capacity(2);
        let eager = Repository::from_tables(
            (0..sharded.len())
                .map(|i| (*sharded.table(i).unwrap()).clone())
                .collect(),
        );

        let cfg = DiscoveryConfig::default();
        let a = discover_joins(&base(), &sharded, &cfg).unwrap();
        let b = discover_joins(&base(), &eager, &cfg).unwrap();
        let key = |cands: &[CandidateJoin]| {
            cands
                .iter()
                .map(|c| {
                    (
                        c.table_index,
                        c.table_name.clone(),
                        c.base_key.clone(),
                        c.foreign_key.clone(),
                        c.kind,
                        c.score.to_bits(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b), "lazy shards mine identically");
        assert!(!a.is_empty(), "candidates found through sharded path");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_dir_missing_and_empty() {
        assert!(Repository::from_dir("/definitely/not/a/dir").is_err());
        let dir = std::env::temp_dir().join(format!("arda_disc_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let repo = Repository::from_dir(&dir).unwrap();
        assert!(repo.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    // ---- PR 5: binary shards, catalog, dtype-aware planning --------------

    /// Encode a table's shard bytes (bit-exact comparison helper).
    fn arda_bytes(t: &Table) -> Vec<u8> {
        let mut buf = Vec::new();
        arda_table::write_arda(t, &mut buf).unwrap();
        buf
    }

    /// `.csv` and `.arda` shards mix behind one manifest; the binary
    /// shards expose dtypes and row counts without loading.
    #[test]
    fn mixed_format_directory() {
        let dir = std::env::temp_dir().join(format!("arda_disc_mixed_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let f = std::fs::File::create(dir.join("population.csv")).unwrap();
        arda_table::write_csv(&population(), f).unwrap();
        arda_table::write_arda_file(&weather(), dir.join("weather.arda")).unwrap();

        let repo = Repository::from_dir(&dir).unwrap();
        assert_eq!(repo.len(), 2);
        assert_eq!(repo.name(0), Some("population"));
        assert_eq!(repo.name(1), Some("weather"));
        // CSV shard: width known, dtypes/rows unknown until parse.
        assert_eq!(repo.n_cols(0), Some(2));
        assert_eq!(repo.dtypes(0), None);
        assert_eq!(repo.n_rows(0), None);
        // Binary shard: full schema from the header, nothing loaded.
        assert_eq!(repo.n_cols(1), Some(2));
        assert_eq!(
            repo.dtypes(1),
            Some(vec![DataType::Timestamp, DataType::Float])
        );
        assert_eq!(repo.n_rows(1), Some(720));
        assert_eq!(repo.resident_shards(), 0, "manifest scan loads nothing");

        // Both formats load to the expected tables; the binary one is
        // bit-identical to the original (dtypes included).
        assert_eq!(repo.table(0).unwrap().n_rows(), 4);
        assert_eq!(arda_bytes(&repo.table(1).unwrap()), arda_bytes(&weather()));

        std::fs::remove_dir_all(&dir).ok();
    }

    /// The acceptance-criterion pair: a cold scan reads one header per
    /// shard and writes `_catalog.arda`; an unchanged directory then
    /// rebuilds the manifest with **zero** per-shard header reads.
    #[test]
    fn warm_catalog_skips_all_header_reads() {
        let dir = std::env::temp_dir().join(format!("arda_disc_warm_{}", std::process::id()));
        write_shards(&dir, &[junk(), population()]);
        arda_table::write_arda_file(&weather(), dir.join("weather.arda")).unwrap();

        let cold = Repository::from_dir(&dir).unwrap();
        assert!(!cold.catalog_hit());
        assert_eq!(cold.header_scans(), 3, "one header read per shard");
        assert!(dir.join(CATALOG_FILE).exists(), "catalog persisted");

        let warm = Repository::from_dir(&dir).unwrap();
        assert!(warm.catalog_hit(), "unchanged directory hits the catalog");
        assert_eq!(warm.header_scans(), 0, "zero per-shard header reads");
        // The catalog-built manifest is identical to the scanned one.
        assert_eq!(warm.len(), cold.len());
        for i in 0..warm.len() {
            assert_eq!(warm.name(i), cold.name(i));
            assert_eq!(warm.n_cols(i), cold.n_cols(i));
            assert_eq!(warm.n_rows(i), cold.n_rows(i));
            assert_eq!(warm.dtypes(i), cold.dtypes(i));
        }
        // And shards still load correctly through it.
        assert_eq!(arda_bytes(&warm.table(2).unwrap()), arda_bytes(&weather()));

        std::fs::remove_dir_all(&dir).ok();
    }

    /// Any modification — changed bytes, added shard, removed shard —
    /// invalidates the catalog: the next scan is cold (and correct), and
    /// the rewritten catalog makes the scan after it warm again.
    #[test]
    fn stale_catalog_forces_rescan() {
        let dir = std::env::temp_dir().join(format!("arda_disc_stale_{}", std::process::id()));
        write_shards(&dir, &[junk(), population()]);
        assert!(!Repository::from_dir(&dir).unwrap().catalog_hit());
        assert!(Repository::from_dir(&dir).unwrap().catalog_hit());

        // Modify a shard (different size guarantees the pair changes even
        // on coarse-mtime filesystems).
        let bigger = Table::new(
            "junk",
            vec![
                Column::from_str("code", vec!["zz1", "zz2", "zz3"]),
                Column::from_f64("x", vec![0.0, 1.0, 2.0]),
            ],
        )
        .unwrap();
        let f = std::fs::File::create(dir.join("junk.csv")).unwrap();
        arda_table::write_csv(&bigger, f).unwrap();
        let repo = Repository::from_dir(&dir).unwrap();
        assert!(!repo.catalog_hit(), "modified shard invalidates");
        assert_eq!(repo.header_scans(), 2);
        assert_eq!(repo.table(0).unwrap().n_rows(), 3, "fresh data served");
        assert!(Repository::from_dir(&dir).unwrap().catalog_hit());

        // Added shard invalidates.
        arda_table::write_arda_file(&weather(), dir.join("weather.arda")).unwrap();
        assert!(!Repository::from_dir(&dir).unwrap().catalog_hit());
        assert!(Repository::from_dir(&dir).unwrap().catalog_hit());

        // Removed shard invalidates.
        std::fs::remove_file(dir.join("population.csv")).unwrap();
        let repo = Repository::from_dir(&dir).unwrap();
        assert!(!repo.catalog_hit());
        assert_eq!(repo.len(), 2);

        // A corrupt catalog is a cold scan, never an error.
        std::fs::write(dir.join(CATALOG_FILE), b"garbage").unwrap();
        let repo = Repository::from_dir(&dir).unwrap();
        assert!(!repo.catalog_hit());
        assert_eq!(repo.len(), 2);

        std::fs::remove_dir_all(&dir).ok();
    }

    /// `save_dir` → `from_dir` preserves every dtype bit-exactly —
    /// including `Timestamp`, which the old CSV-only path silently
    /// demoted — and the saved directory is born warm (its catalog was
    /// written by `save_dir` itself).
    #[test]
    fn save_dir_round_trips_timestamps_bit_exactly() {
        let tables = [weather(), population(), junk()];
        let src = Repository::from_tables(tables.to_vec());
        let dir = std::env::temp_dir().join(format!("arda_disc_save_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        src.save_dir(&dir).unwrap();

        let back = Repository::from_dir(&dir).unwrap();
        assert!(back.catalog_hit(), "save_dir writes the catalog");
        assert_eq!(back.header_scans(), 0);
        assert_eq!(back.len(), 3);
        // from_dir sorts by file name: junk, population, weather.
        let by_name = |name: &str| -> Arc<Table> {
            (0..back.len())
                .find(|&i| back.name(i) == Some(name))
                .map(|i| back.table(i).unwrap())
                .unwrap()
        };
        for t in &tables {
            let reloaded = by_name(t.name());
            assert_eq!(
                arda_bytes(&reloaded),
                arda_bytes(t),
                "{} round-trips bit-exactly",
                t.name()
            );
        }
        assert_eq!(
            by_name("weather").column("date").unwrap().dtype(),
            DataType::Timestamp,
            "the root fix: dtypes survive storage"
        );

        // Discovery over the reloaded repository finds the same
        // candidates with bit-identical scores — no more
        // Timestamp-degraded-to-Str drift. (Table *indices* differ —
        // `from_dir` orders by file name — so compare index-free keys.)
        let cfg = DiscoveryConfig::default();
        let key = |cands: &[CandidateJoin]| {
            let mut k: Vec<_> = cands
                .iter()
                .map(|c| {
                    (
                        c.table_name.clone(),
                        c.base_key.clone(),
                        c.foreign_key.clone(),
                        c.kind == KeyKind::Soft,
                        c.score.to_bits(),
                    )
                })
                .collect();
            k.sort();
            k
        };
        let a = discover_joins(&base(), &src, &cfg).unwrap();
        let b = discover_joins(&base(), &back, &cfg).unwrap();
        assert_eq!(key(&a), key(&b));

        std::fs::remove_dir_all(&dir).ok();
    }

    /// `save_dir` never lets one shard overwrite another: duplicate table
    /// names, names that collide with a `<dup>_<i>` fallback, and even a
    /// table named `_catalog` all land in distinct files, and every table
    /// survives the round-trip.
    #[test]
    fn save_dir_resolves_hostile_name_collisions() {
        let t =
            |name: &str, v: i64| Table::new(name, vec![Column::from_i64("k", vec![v])]).unwrap();
        // Index 2's duplicate "a" falls back to "a_2.arda", which must
        // not clobber table "a_2"; "_catalog" must not clobber the
        // catalog file itself; path-separator and ".." names must stay
        // inside the directory.
        let src = Repository::from_tables(vec![
            t("a", 0),
            t("a_2", 1),
            t("a", 2),
            t("_catalog", 3),
            t("../escape", 4),
            t("..", 5),
        ]);
        let dir = std::env::temp_dir().join(format!("arda_disc_names_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        src.save_dir(&dir).unwrap();
        assert!(
            !dir.parent().unwrap().join("escape.arda").exists(),
            "no shard escaped the target directory"
        );

        let back = Repository::from_dir(&dir).unwrap();
        assert!(back.catalog_hit(), "catalog survived the hostile names");
        assert_eq!(back.len(), 6, "no shard was overwritten");
        let mut values: Vec<i64> = (0..back.len())
            .map(|i| {
                back.table(i)
                    .unwrap()
                    .column("k")
                    .unwrap()
                    .get(0)
                    .as_i64()
                    .unwrap()
            })
            .collect();
        values.sort_unstable();
        assert_eq!(
            values,
            vec![0, 1, 2, 3, 4, 5],
            "every table's data survived"
        );

        std::fs::remove_dir_all(&dir).ok();
    }

    /// A second `save_dir` into the same directory removes the previous
    /// save's shard files: the directory mirrors the repository exactly,
    /// so `from_dir` can never mine phantom tables from an earlier save.
    #[test]
    fn save_dir_removes_stale_shards_from_earlier_saves() {
        let dir = std::env::temp_dir().join(format!("arda_disc_resave_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        Repository::from_tables(vec![junk(), weather()])
            .save_dir(&dir)
            .unwrap();
        assert!(dir.join("weather.arda").exists());
        // A user file the catalog never recorded must survive the resave.
        std::fs::write(dir.join("user_data.csv"), "k,v\n1,2\n").unwrap();

        Repository::from_tables(vec![population()])
            .save_dir(&dir)
            .unwrap();
        assert!(!dir.join("junk.arda").exists(), "stale shard removed");
        assert!(!dir.join("weather.arda").exists(), "stale shard removed");
        assert!(
            dir.join("user_data.csv").exists(),
            "cleanup never touches files outside the previous catalog"
        );
        let back = Repository::from_dir(&dir).unwrap();
        assert_eq!(back.len(), 2, "population shard + the user's CSV");
        assert_eq!(back.name(0), Some("population"));
        assert_eq!(back.name(1), Some("user_data"));

        std::fs::remove_dir_all(&dir).ok();
    }

    /// With dtypes in the manifest, discovery skips shards that cannot
    /// key a join — without ever loading them. A float-only shard has no
    /// keyable column, so it stays on disk.
    #[test]
    fn dtype_aware_discovery_skips_unjoinable_shards() {
        let floats_only = Table::new(
            "sensors",
            vec![
                Column::from_f64("a", vec![0.1, 0.2]),
                Column::from_f64("b", vec![1.5, 2.5]),
            ],
        )
        .unwrap();
        let dir = std::env::temp_dir().join(format!("arda_disc_skip_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        arda_table::write_arda_file(&floats_only, dir.join("sensors.arda")).unwrap();
        arda_table::write_arda_file(&population(), dir.join("population.arda")).unwrap();

        let repo = Repository::from_dir(&dir).unwrap();
        let cands = discover_joins(&base(), &repo, &DiscoveryConfig::default()).unwrap();
        assert!(cands.iter().any(|c| c.table_name == "population"));
        assert!(cands.iter().all(|c| c.table_name != "sensors"));
        assert_eq!(
            repo.resident_shards(),
            1,
            "the float-only shard was never loaded"
        );

        std::fs::remove_dir_all(&dir).ok();
    }
}
