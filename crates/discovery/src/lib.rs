//! # arda-discovery
//!
//! A join-discovery simulator standing in for Aurum / NYU Auctus.
//!
//! ARDA assumes "an external data discovery system automatically determines
//! a collection of candidate joins: columns in the base table that are
//! potentially foreign keys into another table" (§2), possibly *very noisy*
//! — most candidates are semantically meaningless. This crate reproduces
//! that artifact from a raw [`Repository`] of tables:
//!
//! * column-pair candidate mining with type-compatibility rules,
//! * value-overlap (intersection / Jaccard) scoring, with a bonus for
//!   matching column names,
//! * hard/soft key classification — timestamp-typed pairs and numeric pairs
//!   with range overlap but little exact-value overlap become *soft* keys
//!   (the weather-vs-taxi time-key situation), everything else *hard*,
//! * relevance-ranked output: a `Vec<CandidateJoin>` exactly like the input
//!   ARDA expects, including the ranking "ARDA can optionally make use of
//!   ... to prioritize its search" (§3).
//!
//! ## Sharded repositories
//!
//! A [`Repository`] is a pool of candidate tables addressed by index. Two
//! backing stores coexist behind one API:
//!
//! * **eager** — the original `Vec<Table>` path ([`Repository::from_tables`]
//!   / [`Repository::add`]), every table resident up front;
//! * **directory-sharded** — [`Repository::from_dir`] scans a directory of
//!   CSV shards into a *manifest* (name, path and column count per shard,
//!   read via [`arda_table::read_csv_header`] without parsing table
//!   bodies), and each shard is parsed lazily — with the streaming,
//!   budget-parallel CSV engine — on first [`Repository::table`] access.
//!   Loaded shards are cached as [`Arc<Table>`] behind an LRU bound
//!   ([`Repository::with_cache_capacity`]), so repositories far larger
//!   than memory can be mined; eviction only drops the cache's reference,
//!   never a table a caller still holds.
//!
//! The manifest is sorted by file name, and a reloaded shard parses to the
//! exact same table, so discovery and the downstream pipeline are
//! deterministic regardless of cache hits, evictions or load order.

use arda_join::stats::join_stats;
use arda_table::{CsvReadOptions, DataType, Table, TableError};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Hard vs soft key classification of a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyKind {
    /// Exact-equality joinable.
    Hard,
    /// Proximity-joinable (time, GPS, age, ...).
    Soft,
}

/// One discovered candidate join.
#[derive(Debug, Clone)]
pub struct CandidateJoin {
    /// Index of the foreign table in the repository.
    pub table_index: usize,
    /// Foreign table name.
    pub table_name: String,
    /// Base-table key column.
    pub base_key: String,
    /// Foreign-table key column.
    pub foreign_key: String,
    /// Hard or soft key.
    pub kind: KeyKind,
    /// Relevance score (higher = more promising).
    pub score: f64,
}

/// One entry of a repository: either a resident table or a CSV shard on
/// disk, loaded on demand.
#[derive(Debug, Clone)]
enum Source {
    Mem(Arc<Table>),
    Disk(ShardMeta),
}

/// Manifest entry for one on-disk CSV shard.
#[derive(Debug, Clone)]
struct ShardMeta {
    name: String,
    path: PathBuf,
    n_cols: usize,
}

/// LRU cache of lazily loaded shards, keyed by repository index.
#[derive(Debug, Default)]
struct ShardCache {
    loaded: HashMap<usize, Arc<Table>>,
    /// Access order, most recent last.
    lru: Vec<usize>,
}

impl ShardCache {
    fn touch(&mut self, index: usize) {
        self.lru.retain(|&i| i != index);
        self.lru.push(index);
    }

    fn evict_to(&mut self, capacity: usize) {
        while self.loaded.len() > capacity.max(1) {
            let oldest = self.lru.remove(0);
            self.loaded.remove(&oldest);
        }
    }
}

/// A pool of candidate tables (the "data repository" of Figure 1),
/// addressed by index. See the crate docs for the eager vs
/// directory-sharded backing stores.
#[derive(Debug, Clone)]
pub struct Repository {
    sources: Vec<Source>,
    cache: Arc<Mutex<ShardCache>>,
    /// Max shards resident in the cache (`usize::MAX` = unbounded).
    cache_capacity: usize,
    read_opts: CsvReadOptions,
}

impl Default for Repository {
    fn default() -> Self {
        Repository::new()
    }
}

impl Repository {
    /// Empty repository.
    pub fn new() -> Self {
        Repository {
            sources: Vec::new(),
            cache: Arc::new(Mutex::new(ShardCache::default())),
            cache_capacity: usize::MAX,
            read_opts: CsvReadOptions::default(),
        }
    }

    /// Build from resident tables (the eager path).
    pub fn from_tables(tables: Vec<Table>) -> Self {
        let mut repo = Repository::new();
        for t in tables {
            repo.sources.push(Source::Mem(Arc::new(t)));
        }
        repo
    }

    /// Build a directory-sharded repository: every `*.csv` file directly
    /// in `dir` becomes one shard, named after its file stem and sorted by
    /// file name for determinism. Only headers are read here (the
    /// manifest scan); table bodies are parsed lazily by [`Self::table`].
    pub fn from_dir(dir: impl AsRef<Path>) -> Result<Self, TableError> {
        Repository::from_dir_with(dir, &CsvReadOptions::default())
    }

    /// [`Self::from_dir`] with explicit streaming-read options for the
    /// lazy shard loads.
    pub fn from_dir_with(dir: impl AsRef<Path>, opts: &CsvReadOptions) -> Result<Self, TableError> {
        let dir = dir.as_ref();
        let entries = std::fs::read_dir(dir).map_err(|e| {
            TableError::Csv(format!("cannot read repository dir {}: {e}", dir.display()))
        })?;
        let mut paths: Vec<PathBuf> = Vec::new();
        for entry in entries {
            let path = entry.map_err(|e| TableError::Csv(e.to_string()))?.path();
            if path.is_file() && path.extension().and_then(|e| e.to_str()) == Some("csv") {
                paths.push(path);
            }
        }
        paths.sort();
        let mut repo = Repository::new();
        repo.read_opts = opts.clone();
        for path in paths {
            let n_cols = arda_table::read_csv_header(&path)
                .map_err(|e| TableError::Csv(format!("shard {}: {e}", path.display())))?
                .len();
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("table")
                .to_string();
            repo.sources
                .push(Source::Disk(ShardMeta { name, path, n_cols }));
        }
        Ok(repo)
    }

    /// Bound the lazy-load cache to at most `capacity` resident shards
    /// (LRU eviction; clamped to ≥ 1). Eager tables are unaffected.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity.max(1);
        self.cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .evict_to(self.cache_capacity);
        self
    }

    /// Add a resident table, returning its index.
    pub fn add(&mut self, table: Table) -> usize {
        self.sources.push(Source::Mem(Arc::new(table)));
        self.sources.len() - 1
    }

    /// Table by index, loading a sharded table from disk on first access.
    /// The returned [`Arc`] stays valid even if the cache later evicts the
    /// shard.
    pub fn table(&self, index: usize) -> Result<Arc<Table>, TableError> {
        let source = self.sources.get(index).ok_or_else(|| {
            TableError::Invalid(format!(
                "repository table {index} out of range ({} tables)",
                self.sources.len()
            ))
        })?;
        match source {
            Source::Mem(t) => Ok(Arc::clone(t)),
            Source::Disk(meta) => {
                {
                    let mut cache = self.cache.lock().unwrap_or_else(|p| p.into_inner());
                    if let Some(t) = cache.loaded.get(&index) {
                        let t = Arc::clone(t);
                        cache.touch(index);
                        return Ok(t);
                    }
                }
                // Load outside the lock so distinct shards parse
                // concurrently; a racing duplicate load of the same shard
                // yields an identical table, so first-insert-wins is safe.
                let loaded = Arc::new(
                    arda_table::read_csv_with(&meta.path, &self.read_opts).map_err(|e| {
                        TableError::Csv(format!("shard {}: {e}", meta.path.display()))
                    })?,
                );
                let mut cache = self.cache.lock().unwrap_or_else(|p| p.into_inner());
                let entry = cache
                    .loaded
                    .entry(index)
                    .or_insert_with(|| Arc::clone(&loaded));
                let out = Arc::clone(entry);
                cache.touch(index);
                cache.evict_to(self.cache_capacity);
                Ok(out)
            }
        }
    }

    /// Table by index; `None` when out of range or the shard fails to
    /// load. Prefer [`Self::table`] where the error matters.
    pub fn get(&self, index: usize) -> Option<Arc<Table>> {
        self.table(index).ok()
    }

    /// Table name by index (from the manifest — never loads a shard).
    pub fn name(&self, index: usize) -> Option<&str> {
        self.sources.get(index).map(|s| match s {
            Source::Mem(t) => t.name(),
            Source::Disk(meta) => meta.name.as_str(),
        })
    }

    /// Column count by index (from the manifest — never loads a shard).
    pub fn n_cols(&self, index: usize) -> Option<usize> {
        self.sources.get(index).map(|s| match s {
            Source::Mem(t) => t.n_cols(),
            Source::Disk(meta) => meta.n_cols,
        })
    }

    /// Number of lazily loaded shards currently resident in the cache.
    pub fn resident_shards(&self) -> usize {
        self.cache
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .loaded
            .len()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }
}

/// Discovery tuning knobs.
#[derive(Debug, Clone)]
pub struct DiscoveryConfig {
    /// Candidates scoring below this are dropped.
    pub min_score: f64,
    /// Keep at most this many candidates per foreign table (best first).
    pub max_candidates_per_table: usize,
    /// Emit soft-key candidates (numeric proximity joins).
    pub enable_soft_keys: bool,
    /// Name-match bonus added to the overlap score.
    pub name_bonus: f64,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            min_score: 0.05,
            max_candidates_per_table: 2,
            enable_soft_keys: true,
            name_bonus: 0.25,
        }
    }
}

/// Column types that can key a join at all (floats of measurements are
/// excluded — joining on a measured value is meaningless).
fn keyable(dtype: DataType) -> bool {
    matches!(dtype, DataType::Int | DataType::Str | DataType::Timestamp)
}

fn compatible(a: DataType, b: DataType) -> bool {
    matches!(
        (a, b),
        (DataType::Str, DataType::Str)
            | (DataType::Int, DataType::Int)
            | (DataType::Timestamp, DataType::Timestamp)
            | (DataType::Timestamp, DataType::Int)
            | (DataType::Int, DataType::Timestamp)
    )
}

/// Numeric range overlap in `[0, 1]` (intersection over union of ranges).
fn range_overlap(base: &Table, bcol: &str, foreign: &Table, fcol: &str) -> f64 {
    let minmax = |t: &Table, c: &str| -> Option<(f64, f64)> {
        let col = t.column(c).ok()?;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..col.len() {
            if let Some(v) = col.get_f64(i) {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if lo.is_finite() {
            Some((lo, hi))
        } else {
            None
        }
    };
    match (minmax(base, bcol), minmax(foreign, fcol)) {
        (Some((bl, bh)), Some((fl, fh))) => {
            let inter = (bh.min(fh) - bl.max(fl)).max(0.0);
            let union = (bh.max(fh) - bl.min(fl)).max(1e-12);
            inter / union
        }
        _ => 0.0,
    }
}

/// Mine and score every candidate of `base` against one repository table,
/// returning that table's best candidates (descending score, capped).
fn mine_table(
    base: &Table,
    ti: usize,
    foreign: &Table,
    cfg: &DiscoveryConfig,
) -> Result<Vec<CandidateJoin>, TableError> {
    let mut per_table: Vec<CandidateJoin> = Vec::new();
    for bcol in base.columns() {
        if !keyable(bcol.dtype()) {
            continue;
        }
        for fcol in foreign.columns() {
            if !keyable(fcol.dtype()) || !compatible(bcol.dtype(), fcol.dtype()) {
                continue;
            }
            let stats =
                join_stats(base, foreign, &[bcol.name()], &[fcol.name()]).map_err(|e| match e {
                    arda_join::JoinError::Table(t) => t,
                    other => TableError::Invalid(other.to_string()),
                })?;
            let exact = stats.intersection_score();
            let name_match = bcol.name().eq_ignore_ascii_case(fcol.name())
                || bcol
                    .name()
                    .to_lowercase()
                    .contains(&fcol.name().to_lowercase())
                || fcol
                    .name()
                    .to_lowercase()
                    .contains(&bcol.name().to_lowercase());

            let timey = bcol.dtype() == DataType::Timestamp || fcol.dtype() == DataType::Timestamp;
            let (kind, mut score) = if timey && cfg.enable_soft_keys {
                // Time keys: proximity matters more than exact equality.
                let overlap = range_overlap(base, bcol.name(), foreign, fcol.name());
                (KeyKind::Soft, overlap.max(exact))
            } else if exact <= 0.02
                && cfg.enable_soft_keys
                && bcol.dtype() == DataType::Int
                && fcol.dtype() == DataType::Int
            {
                // Near-zero exact overlap but overlapping ranges →
                // plausible soft key.
                let overlap = range_overlap(base, bcol.name(), foreign, fcol.name());
                if overlap > 0.3 {
                    (KeyKind::Soft, overlap * 0.5)
                } else {
                    (KeyKind::Hard, exact)
                }
            } else {
                (KeyKind::Hard, exact)
            };
            if name_match {
                score += cfg.name_bonus;
            }
            if score >= cfg.min_score {
                per_table.push(CandidateJoin {
                    table_index: ti,
                    table_name: foreign.name().to_string(),
                    base_key: bcol.name().to_string(),
                    foreign_key: fcol.name().to_string(),
                    kind,
                    score,
                });
            }
        }
    }
    per_table.sort_by(|a, b| b.score.total_cmp(&a.score));
    per_table.truncate(cfg.max_candidates_per_table);
    Ok(per_table)
}

/// Mine, score and rank candidate joins of `base` against every repository
/// table. Results are sorted by descending score.
///
/// Each table's column-pair scoring (value-overlap statistics over every
/// compatible pair) is independent of every other table's, so the per-table
/// mining fans out on the ambient `arda-par` work budget; on a
/// directory-sharded repository each worker lazily loads (and, under a
/// cache bound, later evicts) its own shards concurrently. The ordered
/// results are folded back in repository order before the global rank, so
/// the candidate list is identical to the sequential scan at any budget,
/// cache state or load interleaving.
pub fn discover_joins(
    base: &Table,
    repo: &Repository,
    cfg: &DiscoveryConfig,
) -> Result<Vec<CandidateJoin>, TableError> {
    let indices: Vec<usize> = (0..repo.len()).collect();
    let mined = arda_par::par_map(&indices, 0, |_, &ti| {
        let foreign = repo.table(ti)?;
        mine_table(base, ti, &foreign, cfg)
    });
    let mut all = Vec::new();
    for per_table in mined {
        all.extend(per_table?);
    }
    all.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then(a.table_index.cmp(&b.table_index))
    });
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arda_table::Column;

    fn base() -> Table {
        Table::new(
            "taxi",
            vec![
                Column::from_timestamps("date", (0..30).map(|i| i * 86_400).collect()),
                Column::from_str(
                    "borough",
                    (0..30)
                        .map(|i| ["bronx", "queens", "manhattan"][i % 3])
                        .collect(),
                ),
                Column::from_f64("trips", (0..30).map(|i| i as f64).collect()),
            ],
        )
        .unwrap()
    }

    fn weather() -> Table {
        Table::new(
            "weather",
            vec![
                Column::from_timestamps("date", (0..720).map(|i| i * 3_600).collect()),
                Column::from_f64("temp", (0..720).map(|i| (i % 24) as f64).collect()),
            ],
        )
        .unwrap()
    }

    fn population() -> Table {
        Table::new(
            "population",
            vec![
                Column::from_str("borough", vec!["bronx", "queens", "manhattan", "brooklyn"]),
                Column::from_f64("pop", vec![1.4, 2.3, 1.6, 2.6]),
            ],
        )
        .unwrap()
    }

    fn junk() -> Table {
        Table::new(
            "junk",
            vec![
                Column::from_str("code", vec!["zz1", "zz2"]),
                Column::from_f64("x", vec![0.0, 1.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn finds_hard_and_soft_candidates() {
        let repo = Repository::from_tables(vec![weather(), population(), junk()]);
        let cands = discover_joins(&base(), &repo, &DiscoveryConfig::default()).unwrap();
        let names: Vec<&str> = cands.iter().map(|c| c.table_name.as_str()).collect();
        assert!(names.contains(&"weather"), "weather discovered: {names:?}");
        assert!(
            names.contains(&"population"),
            "population discovered: {names:?}"
        );
        assert!(!names.contains(&"junk"), "junk filtered: {names:?}");
        let w = cands.iter().find(|c| c.table_name == "weather").unwrap();
        assert_eq!(w.kind, KeyKind::Soft, "time keys are soft");
        let p = cands.iter().find(|c| c.table_name == "population").unwrap();
        assert_eq!(p.kind, KeyKind::Hard);
        assert_eq!(p.base_key, "borough");
    }

    #[test]
    fn ranking_is_descending() {
        let repo = Repository::from_tables(vec![weather(), population()]);
        let cands = discover_joins(&base(), &repo, &DiscoveryConfig::default()).unwrap();
        for w in cands.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn name_bonus_boosts_matching_columns() {
        let mut cfg = DiscoveryConfig {
            name_bonus: 0.0,
            ..Default::default()
        };
        let repo = Repository::from_tables(vec![population()]);
        let without = discover_joins(&base(), &repo, &cfg).unwrap();
        cfg.name_bonus = 0.5;
        let with = discover_joins(&base(), &repo, &cfg).unwrap();
        assert!(with[0].score > without[0].score + 0.4);
    }

    #[test]
    fn soft_keys_can_be_disabled() {
        let cfg = DiscoveryConfig {
            enable_soft_keys: false,
            ..Default::default()
        };
        let repo = Repository::from_tables(vec![weather()]);
        let cands = discover_joins(&base(), &repo, &cfg).unwrap();
        assert!(cands.iter().all(|c| c.kind == KeyKind::Hard));
    }

    #[test]
    fn measurement_floats_never_key() {
        let repo = Repository::from_tables(vec![weather()]);
        let cands = discover_joins(&base(), &repo, &DiscoveryConfig::default()).unwrap();
        assert!(cands
            .iter()
            .all(|c| c.base_key != "trips" && c.foreign_key != "temp"));
    }

    #[test]
    fn per_table_cap_respected() {
        let cfg = DiscoveryConfig {
            max_candidates_per_table: 1,
            ..Default::default()
        };
        let repo = Repository::from_tables(vec![weather(), population()]);
        let cands = discover_joins(&base(), &repo, &cfg).unwrap();
        for ti in [0usize, 1] {
            assert!(cands.iter().filter(|c| c.table_index == ti).count() <= 1);
        }
    }

    #[test]
    fn repository_basics() {
        let mut repo = Repository::new();
        assert!(repo.is_empty());
        let i = repo.add(junk());
        assert_eq!(repo.len(), 1);
        assert_eq!(repo.get(i).unwrap().name(), "junk");
        assert_eq!(repo.name(i), Some("junk"));
        assert_eq!(repo.n_cols(i), Some(2));
        assert!(repo.get(9).is_none());
        assert!(repo.table(9).is_err());
    }

    /// Write every table of an eager repository into `dir` as CSV shards.
    fn write_shards(dir: &std::path::Path, tables: &[Table]) {
        std::fs::create_dir_all(dir).unwrap();
        for t in tables {
            let f = std::fs::File::create(dir.join(format!("{}.csv", t.name()))).unwrap();
            arda_table::write_csv(t, f).unwrap();
        }
    }

    #[test]
    fn sharded_repository_loads_lazily_and_evicts() {
        let dir = std::env::temp_dir().join(format!("arda_disc_shards_{}", std::process::id()));
        write_shards(&dir, &[junk(), population(), weather()]);

        let repo = Repository::from_dir(&dir).unwrap().with_cache_capacity(1);
        // Manifest only: sorted by file name, metadata available, nothing
        // loaded yet.
        assert_eq!(repo.len(), 3);
        assert_eq!(repo.name(0), Some("junk"));
        assert_eq!(repo.name(1), Some("population"));
        assert_eq!(repo.name(2), Some("weather"));
        assert_eq!(repo.n_cols(1), Some(2));
        assert_eq!(repo.resident_shards(), 0, "manifest scan loads nothing");

        // Loads on demand; the cache bound evicts the least recent shard.
        let pop = repo.table(1).unwrap();
        assert_eq!(pop.name(), "population");
        assert_eq!(pop.n_rows(), 4);
        assert_eq!(repo.resident_shards(), 1);
        let w = repo.table(2).unwrap();
        assert_eq!(w.n_rows(), 720);
        assert_eq!(repo.resident_shards(), 1, "capacity 1 evicted population");
        // The evicted Arc stays usable.
        assert_eq!(pop.column("borough").unwrap().len(), 4);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_discovery_matches_eager() {
        let dir = std::env::temp_dir().join(format!("arda_disc_eq_{}", std::process::id()));
        // Timestamps round-trip CSV as Int columns, so compare against an
        // eager repository built from the *reloaded* shards rather than
        // the originals.
        write_shards(&dir, &[junk(), population(), weather()]);
        let sharded = Repository::from_dir(&dir).unwrap().with_cache_capacity(2);
        let eager = Repository::from_tables(
            (0..sharded.len())
                .map(|i| (*sharded.table(i).unwrap()).clone())
                .collect(),
        );

        let cfg = DiscoveryConfig::default();
        let a = discover_joins(&base(), &sharded, &cfg).unwrap();
        let b = discover_joins(&base(), &eager, &cfg).unwrap();
        let key = |cands: &[CandidateJoin]| {
            cands
                .iter()
                .map(|c| {
                    (
                        c.table_index,
                        c.table_name.clone(),
                        c.base_key.clone(),
                        c.foreign_key.clone(),
                        c.kind,
                        c.score.to_bits(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b), "lazy shards mine identically");
        assert!(!a.is_empty(), "candidates found through sharded path");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_dir_missing_and_empty() {
        assert!(Repository::from_dir("/definitely/not/a/dir").is_err());
        let dir = std::env::temp_dir().join(format!("arda_disc_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let repo = Repository::from_dir(&dir).unwrap();
        assert!(repo.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
