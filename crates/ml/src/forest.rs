//! Random forests: bootstrap-bagged CART trees fitted in parallel, with
//! impurity-based feature importances.
//!
//! ARDA uses Random Forests both as its default estimator ("lightly
//! auto-optimized Random Forest", §7) and as one of the two RIFS ranking
//! models (§6.2); the importances exposed here drive those rankings.

use crate::tree::{DecisionTree, MaxFeatures, TreeConfig};
use crate::{Dataset, MlError, Result, Task};
use arda_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Row·tree product below which `predict` stays sequential.
const PAR_MIN_PREDICTIONS: usize = 1 << 12;

/// Forest hyper-parameters.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth limits.
    pub max_depth: usize,
    /// Minimum samples to split a node.
    pub min_samples_split: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Feature subsampling (`None` → √d for classification, d/3 for
    /// regression, the standard defaults).
    pub max_features: Option<MaxFeatures>,
    /// Bootstrap sample rows per tree.
    pub bootstrap: bool,
    /// Master RNG seed.
    pub seed: u64,
    /// Worker threads: `0` = the ambient `arda-par` work budget
    /// (`ARDA_THREADS` at top level, the stage's split when nested),
    /// `1` = sequential, otherwise an explicit count.
    pub n_threads: usize,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 64,
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
            bootstrap: true,
            seed: 0,
            n_threads: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    task: Task,
    importances: Vec<f64>,
}

impl RandomForest {
    /// Fit on a [`Dataset`].
    pub fn fit(data: &Dataset, cfg: &ForestConfig) -> Result<Self> {
        Self::fit_xy(&data.x, &data.y, data.task, cfg)
    }

    /// Fit from raw matrix/labels.
    pub fn fit_xy(x: &Matrix, y: &[f64], task: Task, cfg: &ForestConfig) -> Result<Self> {
        if x.rows() == 0 || cfg.n_trees == 0 {
            return Err(MlError::Invalid("empty training set or zero trees".into()));
        }
        if x.rows() != y.len() {
            return Err(MlError::ShapeMismatch(format!(
                "{} rows vs {} labels",
                x.rows(),
                y.len()
            )));
        }
        let max_features = cfg.max_features.unwrap_or(match task {
            Task::Classification { .. } => MaxFeatures::Sqrt,
            Task::Regression => MaxFeatures::Third,
        });

        let n = x.rows();
        // Pre-draw bootstrap indices and seeds so results are independent of
        // thread scheduling.
        let mut master = StdRng::seed_from_u64(cfg.seed);
        let jobs: Vec<(u64, Vec<usize>)> = (0..cfg.n_trees)
            .map(|_| {
                let seed: u64 = master.gen();
                let rows: Vec<usize> = if cfg.bootstrap {
                    let mut r = StdRng::seed_from_u64(seed ^ 0xB00157);
                    (0..n).map(|_| r.gen_range(0..n)).collect()
                } else {
                    (0..n).collect()
                };
                (seed, rows)
            })
            .collect();

        let fit_one = |seed: u64, rows: &[usize]| -> Result<DecisionTree> {
            let xs = x
                .select_rows(rows)
                .map_err(|e| MlError::ShapeMismatch(e.to_string()))?;
            let ys: Vec<f64> = rows.iter().map(|&i| y[i]).collect();
            let tree_cfg = TreeConfig {
                max_depth: cfg.max_depth,
                min_samples_split: cfg.min_samples_split,
                min_samples_leaf: cfg.min_samples_leaf,
                max_features,
                seed,
            };
            DecisionTree::fit_xy(&xs, &ys, task, &tree_cfg)
        };

        // Every tree is fully determined by its pre-drawn (seed, rows) job,
        // so `par_map`'s ordered results are identical at any thread count
        // or work-budget size; each tree fit plans with its split of the
        // ambient budget, so nesting a fit under RIFS rounds or the τ-sweep
        // cannot oversubscribe.
        let trees: Vec<DecisionTree> =
            arda_par::par_map(&jobs, cfg.n_threads, |_, (s, rows)| fit_one(*s, rows))
                .into_iter()
                .collect::<Result<_>>()?;

        // Mean impurity decrease, normalised to sum to 1 (when non-zero).
        let mut importances = vec![0.0; x.cols()];
        for t in &trees {
            for (acc, v) in importances.iter_mut().zip(t.importances()) {
                *acc += v;
            }
        }
        let total: f64 = importances.iter().sum();
        if total > 0.0 {
            importances.iter_mut().for_each(|v| *v /= total);
        }

        Ok(RandomForest {
            trees,
            task,
            importances,
        })
    }

    /// Predict rows of `x` (majority vote / mean over trees), fanning out
    /// over trees for prediction workloads large enough to amortise the
    /// thread spawn.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let threads = arda_par::threads_for(0, x.rows() * self.trees.len(), PAR_MIN_PREDICTIONS);
        let per_tree: Vec<Vec<f64>> = arda_par::par_map(&self.trees, threads, |_, t| t.predict(x))
            .into_iter()
            .collect::<Result<_>>()?;
        let n = x.rows();
        match self.task {
            Task::Regression => {
                let mut out = vec![0.0; n];
                for preds in &per_tree {
                    for (o, p) in out.iter_mut().zip(preds) {
                        *o += p;
                    }
                }
                out.iter_mut().for_each(|o| *o /= self.trees.len() as f64);
                Ok(out)
            }
            Task::Classification { n_classes } => {
                let mut votes = vec![vec![0usize; n_classes]; n];
                for preds in &per_tree {
                    for (row_votes, &p) in votes.iter_mut().zip(preds) {
                        let c = (p as usize).min(n_classes.saturating_sub(1));
                        row_votes[c] += 1;
                    }
                }
                Ok(votes
                    .into_iter()
                    .map(|v| {
                        v.iter()
                            .enumerate()
                            .max_by_key(|(_, &c)| c)
                            .map(|(k, _)| k as f64)
                            .unwrap_or(0.0)
                    })
                    .collect())
            }
        }
    }

    /// Normalised mean-impurity-decrease importances.
    pub fn importances(&self) -> &[f64] {
        &self.importances
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Task the forest was trained for.
    pub fn task(&self) -> Task {
        self.task
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn classification_blob(n: usize, seed: u64) -> Dataset {
        // Two Gaussian-ish blobs separated on feature 0; feature 1 is noise.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let cls = (i % 2) as f64;
            let center = if cls == 0.0 { -2.0 } else { 2.0 };
            rows.push(vec![
                center + rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ]);
            y.push(cls);
        }
        Dataset::new(
            Matrix::from_rows(&rows).unwrap(),
            y,
            vec!["signal".into(), "noise".into()],
            Task::Classification { n_classes: 2 },
        )
        .unwrap()
    }

    #[test]
    fn separable_blobs_fit_perfectly() {
        let d = classification_blob(200, 1);
        let rf = RandomForest::fit(
            &d,
            &ForestConfig {
                n_trees: 16,
                ..Default::default()
            },
        )
        .unwrap();
        let preds = rf.predict(&d.x).unwrap();
        let correct = preds.iter().zip(&d.y).filter(|(p, y)| p == y).count();
        assert!(correct as f64 / d.n_samples() as f64 > 0.97);
        assert_eq!(rf.n_trees(), 16);
    }

    #[test]
    fn importances_identify_signal() {
        let d = classification_blob(300, 2);
        let rf = RandomForest::fit(
            &d,
            &ForestConfig {
                n_trees: 32,
                ..Default::default()
            },
        )
        .unwrap();
        let imp = rf.importances();
        assert!(imp[0] > imp[1] * 3.0, "signal {} noise {}", imp[0], imp[1]);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn regression_recovers_linear_trend() {
        let mut rng = StdRng::seed_from_u64(3);
        let rows: Vec<Vec<f64>> = (0..300).map(|_| vec![rng.gen_range(0.0..10.0)]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let rf = RandomForest::fit_xy(
            &x,
            &y,
            Task::Regression,
            &ForestConfig {
                n_trees: 32,
                ..Default::default()
            },
        )
        .unwrap();
        let test = Matrix::from_rows(&[vec![5.0]]).unwrap();
        let p = rf.predict(&test).unwrap()[0];
        assert!((p - 15.0).abs() < 2.0, "prediction {p}");
    }

    #[test]
    fn deterministic_given_seed_regardless_of_threads() {
        let d = classification_blob(120, 4);
        let base = ForestConfig {
            n_trees: 8,
            seed: 9,
            n_threads: 1,
            ..Default::default()
        };
        let rf1 = RandomForest::fit(&d, &base).unwrap();
        let rf2 = RandomForest::fit(
            &d,
            &ForestConfig {
                n_threads: 4,
                ..base
            },
        )
        .unwrap();
        assert_eq!(rf1.predict(&d.x).unwrap(), rf2.predict(&d.x).unwrap());
        assert_eq!(rf1.importances(), rf2.importances());
    }

    #[test]
    fn errors_on_bad_input() {
        let d = classification_blob(10, 5);
        assert!(RandomForest::fit(
            &d,
            &ForestConfig {
                n_trees: 0,
                ..Default::default()
            }
        )
        .is_err());
        let rf = RandomForest::fit(
            &d,
            &ForestConfig {
                n_trees: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(rf.predict(&Matrix::zeros(1, 7)).is_err());
    }
}
