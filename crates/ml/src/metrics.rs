//! Evaluation metrics: accuracy, macro-F1, MAE, RMSE, R².
//!
//! The paper reports accuracy for classification tasks and scaled Mean
//! Absolute Error for regression tasks (Table 1); all metric shapes used by
//! the benches live here.

/// Fraction of exact matches.
pub fn accuracy(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "accuracy: length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let hits = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / pred.len() as f64
}

/// Macro-averaged F1 over the classes present in `truth`.
pub fn macro_f1(pred: &[f64], truth: &[f64], n_classes: usize) -> f64 {
    assert_eq!(pred.len(), truth.len(), "macro_f1: length mismatch");
    if pred.is_empty() || n_classes == 0 {
        return 0.0;
    }
    let mut f1_sum = 0.0;
    let mut present = 0usize;
    for c in 0..n_classes {
        let c = c as f64;
        let tp = pred
            .iter()
            .zip(truth)
            .filter(|(p, t)| **p == c && **t == c)
            .count() as f64;
        let fp = pred
            .iter()
            .zip(truth)
            .filter(|(p, t)| **p == c && **t != c)
            .count() as f64;
        let fn_ = pred
            .iter()
            .zip(truth)
            .filter(|(p, t)| **p != c && **t == c)
            .count() as f64;
        if tp + fn_ == 0.0 {
            continue; // class absent from truth
        }
        present += 1;
        if tp == 0.0 {
            continue; // F1 = 0 for this class
        }
        let precision = tp / (tp + fp);
        let recall = tp / (tp + fn_);
        f1_sum += 2.0 * precision * recall / (precision + recall);
    }
    if present == 0 {
        0.0
    } else {
        f1_sum / present as f64
    }
}

/// Mean absolute error.
pub fn mae(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "mae: length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Root mean squared error.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "rmse: length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    (pred
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64)
        .sqrt()
}

/// Coefficient of determination; 0 when truth is constant and predictions
/// are imperfect.
pub fn r2(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "r2: length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    if ss_tot <= 0.0 {
        if ss_res <= 1e-12 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1.0, 0.0, 1.0], &[1.0, 1.0, 1.0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn f1_perfect_is_one() {
        let y = vec![0.0, 1.0, 1.0, 0.0];
        assert!((macro_f1(&y, &y, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f1_handles_missing_class_in_truth() {
        // Class 2 never appears in truth → skipped, not a divide-by-zero.
        let pred = vec![0.0, 1.0];
        let truth = vec![0.0, 1.0];
        let f = macro_f1(&pred, &truth, 3);
        assert!((f - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f1_zero_when_class_never_predicted() {
        let pred = vec![0.0, 0.0];
        let truth = vec![1.0, 1.0];
        assert_eq!(macro_f1(&pred, &truth, 2), 0.0);
    }

    #[test]
    fn regression_metrics() {
        let p = vec![1.0, 2.0, 3.0];
        let t = vec![2.0, 2.0, 2.0];
        assert!((mae(&p, &t) - 2.0 / 3.0).abs() < 1e-12);
        assert!((rmse(&p, &t) - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn r2_perfect_and_mean_baseline() {
        let t = vec![1.0, 2.0, 3.0];
        assert!((r2(&t, &t) - 1.0).abs() < 1e-12);
        let mean_pred = vec![2.0, 2.0, 2.0];
        assert!(r2(&mean_pred, &t).abs() < 1e-12);
        // Constant truth edge cases.
        assert_eq!(r2(&[5.0, 5.0], &[5.0, 5.0]), 1.0);
        assert_eq!(r2(&[4.0, 5.0], &[5.0, 5.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        accuracy(&[1.0], &[1.0, 2.0]);
    }
}
