//! Numeric datasets: a feature matrix, a target vector and a task type.

use crate::{MlError, Result};
use arda_linalg::Matrix;

/// The learning task. ARDA supports regression (Taxi, Pickup, Poverty) and
/// classification (School, Kraken, Digits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Real-valued target; scored by error metrics (MAE/RMSE).
    Regression,
    /// Integer class labels `0..n_classes`; scored by accuracy/F1.
    Classification {
        /// Number of distinct classes.
        n_classes: usize,
    },
}

impl Task {
    /// True for classification tasks.
    pub fn is_classification(self) -> bool {
        matches!(self, Task::Classification { .. })
    }

    /// Number of classes (1 for regression).
    pub fn n_classes(self) -> usize {
        match self {
            Task::Regression => 1,
            Task::Classification { n_classes } => n_classes,
        }
    }
}

/// A fully numeric dataset ready for model training.
///
/// Classification labels are stored as `f64` class ids (`0.0, 1.0, ...`) so
/// one matrix/vector representation serves both tasks.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// `n × d` feature matrix.
    pub x: Matrix,
    /// Length-`n` target.
    pub y: Vec<f64>,
    /// Column names aligned with `x` (provenance: `table.column` after
    /// joins), used to report which augmentations were selected.
    pub feature_names: Vec<String>,
    /// Task type.
    pub task: Task,
}

impl Dataset {
    /// Build a dataset, validating shapes.
    pub fn new(x: Matrix, y: Vec<f64>, feature_names: Vec<String>, task: Task) -> Result<Self> {
        if x.rows() != y.len() {
            return Err(MlError::ShapeMismatch(format!(
                "{} rows vs {} labels",
                x.rows(),
                y.len()
            )));
        }
        if feature_names.len() != x.cols() {
            return Err(MlError::ShapeMismatch(format!(
                "{} names vs {} columns",
                feature_names.len(),
                x.cols()
            )));
        }
        Ok(Dataset {
            x,
            y,
            feature_names,
            task,
        })
    }

    /// Number of samples.
    pub fn n_samples(&self) -> usize {
        self.x.rows()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.x.cols()
    }

    /// Restrict to a feature subset (columns by index).
    pub fn select_features(&self, cols: &[usize]) -> Result<Dataset> {
        let x = self
            .x
            .select_columns(cols)
            .map_err(|e| MlError::ShapeMismatch(e.to_string()))?;
        let names = cols
            .iter()
            .map(|&c| self.feature_names[c].clone())
            .collect();
        Dataset::new(x, self.y.clone(), names, self.task)
    }

    /// Restrict to a row subset (repeats allowed).
    pub fn select_rows(&self, rows: &[usize]) -> Result<Dataset> {
        let x = self
            .x
            .select_rows(rows)
            .map_err(|e| MlError::ShapeMismatch(e.to_string()))?;
        let y = rows.iter().map(|&r| self.y[r]).collect();
        Dataset::new(x, y, self.feature_names.clone(), self.task)
    }

    /// Append extra feature columns (e.g. RIFS noise injections).
    pub fn append_features(&self, extra: &Matrix, names: Vec<String>) -> Result<Dataset> {
        if extra.cols() != names.len() {
            return Err(MlError::ShapeMismatch(format!(
                "{} extra columns vs {} names",
                extra.cols(),
                names.len()
            )));
        }
        let x = self
            .x
            .hcat(extra)
            .map_err(|e| MlError::ShapeMismatch(e.to_string()))?;
        let mut all_names = self.feature_names.clone();
        all_names.extend(names);
        Dataset::new(x, self.y.clone(), all_names, self.task)
    }

    /// Class counts for classification datasets (empty for regression).
    pub fn class_counts(&self) -> Vec<usize> {
        match self.task {
            Task::Regression => Vec::new(),
            Task::Classification { n_classes } => {
                let mut counts = vec![0usize; n_classes];
                for &y in &self.y {
                    let c = y as usize;
                    if c < n_classes {
                        counts[c] += 1;
                    }
                }
                counts
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]]).unwrap();
        Dataset::new(
            x,
            vec![0.0, 1.0, 1.0],
            vec!["a".into(), "b".into()],
            Task::Classification { n_classes: 2 },
        )
        .unwrap()
    }

    #[test]
    fn validates_shapes() {
        let x = Matrix::zeros(2, 2);
        assert!(Dataset::new(
            x.clone(),
            vec![0.0],
            vec!["a".into(), "b".into()],
            Task::Regression
        )
        .is_err());
        assert!(Dataset::new(x, vec![0.0, 1.0], vec!["a".into()], Task::Regression).is_err());
    }

    #[test]
    fn select_features_keeps_names() {
        let d = toy();
        let s = d.select_features(&[1]).unwrap();
        assert_eq!(s.n_features(), 1);
        assert_eq!(s.feature_names, vec!["b"]);
        assert_eq!(s.x.get(2, 0), 30.0);
        assert!(d.select_features(&[5]).is_err());
    }

    #[test]
    fn select_rows_repeats() {
        let d = toy();
        let s = d.select_rows(&[2, 2, 0]).unwrap();
        assert_eq!(s.n_samples(), 3);
        assert_eq!(s.y, vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn append_features_extends_names() {
        let d = toy();
        let extra = Matrix::from_rows(&[vec![7.0], vec![8.0], vec![9.0]]).unwrap();
        let e = d.append_features(&extra, vec!["noise_0".into()]).unwrap();
        assert_eq!(e.n_features(), 3);
        assert_eq!(e.feature_names[2], "noise_0");
        assert!(d.append_features(&extra, vec![]).is_err());
    }

    #[test]
    fn class_counts() {
        let d = toy();
        assert_eq!(d.class_counts(), vec![1, 2]);
        let r = Dataset::new(
            Matrix::zeros(2, 1),
            vec![0.5, 0.7],
            vec!["a".into()],
            Task::Regression,
        )
        .unwrap();
        assert!(r.class_counts().is_empty());
        assert_eq!(r.task.n_classes(), 1);
        assert!(!r.task.is_classification());
    }
}
