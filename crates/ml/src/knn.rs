//! k-nearest-neighbour queries (linear scan), used by the Relief feature
//! selector's nearest-hit/nearest-miss searches. The distance scan runs in
//! parallel row bands for large matrices; candidate order (and therefore
//! the tie-break) is identical to the sequential scan at any thread count.

use arda_linalg::Matrix;

/// Row count below which the scan stays sequential (thread spawn would
/// dominate the distance arithmetic).
const PAR_MIN_ROWS: usize = 2_048;

/// Squared Euclidean distance between two rows.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Indices of the `k` nearest rows of `x` to `x[query]`, excluding the query
/// itself, optionally restricted by a row filter.
///
/// `filter` receives each candidate row index; return `false` to skip it
/// (Relief uses this to search hits and misses separately).
pub fn nearest_neighbors(
    x: &Matrix,
    query: usize,
    k: usize,
    filter: impl Fn(usize) -> bool + Sync,
) -> Vec<usize> {
    nearest_neighbors_threads(x, query, k, filter, 0)
}

/// [`nearest_neighbors`] with an explicit worker cap (`0` = the ambient
/// `arda-par` work budget). Callers already running many scans concurrently
/// (Relief's anchor loop) can leave this at 0: each scan plans with its
/// split of the shared budget, so nesting cannot oversubscribe.
pub fn nearest_neighbors_threads(
    x: &Matrix,
    query: usize,
    k: usize,
    filter: impl Fn(usize) -> bool + Sync,
    threads: usize,
) -> Vec<usize> {
    let q = x.row(query);
    let threads = arda_par::threads_for(threads, x.rows(), PAR_MIN_ROWS);
    let mut candidates: Vec<(f64, usize)> = arda_par::par_for_rows(x.rows(), threads, |range| {
        range
            .filter(|&i| i != query && filter(i))
            .map(|i| (sq_dist(q, x.row(i)), i))
            .collect()
    });
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    candidates.truncate(k);
    candidates.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Matrix {
        Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![5.0, 5.0],
        ])
        .unwrap()
    }

    #[test]
    fn finds_closest_first() {
        let x = grid();
        let nn = nearest_neighbors(&x, 0, 2, |_| true);
        assert_eq!(nn.len(), 2);
        assert!(nn.contains(&1) && nn.contains(&2));
    }

    #[test]
    fn excludes_query_row() {
        let x = grid();
        let nn = nearest_neighbors(&x, 3, 3, |_| true);
        assert!(!nn.contains(&3));
    }

    #[test]
    fn filter_restricts_candidates() {
        let x = grid();
        let nn = nearest_neighbors(&x, 0, 2, |i| i == 3);
        assert_eq!(nn, vec![3]);
    }

    #[test]
    fn k_larger_than_population() {
        let x = grid();
        let nn = nearest_neighbors(&x, 0, 10, |_| true);
        assert_eq!(nn.len(), 3);
    }

    #[test]
    fn sq_dist_basic() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(sq_dist(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn large_scan_matches_sequential_order() {
        // Above the parallel threshold; ties broken by index exactly as in
        // the sequential scan.
        let rows: Vec<Vec<f64>> = (0..3_000)
            .map(|i| vec![(i % 7) as f64, ((i * 13) % 5) as f64])
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let nn = nearest_neighbors(&x, 0, 10, |_| true);
        // Sequential reference.
        let q = x.row(0);
        let mut expect: Vec<(f64, usize)> =
            (1..x.rows()).map(|i| (sq_dist(q, x.row(i)), i)).collect();
        expect.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let expect: Vec<usize> = expect.into_iter().take(10).map(|(_, i)| i).collect();
        assert_eq!(nn, expect);
    }
}
