//! k-nearest-neighbour queries (linear scan), used by the Relief feature
//! selector's nearest-hit/nearest-miss searches.

use arda_linalg::Matrix;

/// Squared Euclidean distance between two rows.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Indices of the `k` nearest rows of `x` to `x[query]`, excluding the query
/// itself, optionally restricted by a row filter.
///
/// `filter` receives each candidate row index; return `false` to skip it
/// (Relief uses this to search hits and misses separately).
pub fn nearest_neighbors(
    x: &Matrix,
    query: usize,
    k: usize,
    mut filter: impl FnMut(usize) -> bool,
) -> Vec<usize> {
    let q = x.row(query);
    let mut candidates: Vec<(f64, usize)> = (0..x.rows())
        .filter(|&i| i != query && filter(i))
        .map(|i| (sq_dist(q, x.row(i)), i))
        .collect();
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    candidates.truncate(k);
    candidates.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Matrix {
        Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![5.0, 5.0],
        ])
        .unwrap()
    }

    #[test]
    fn finds_closest_first() {
        let x = grid();
        let nn = nearest_neighbors(&x, 0, 2, |_| true);
        assert_eq!(nn.len(), 2);
        assert!(nn.contains(&1) && nn.contains(&2));
    }

    #[test]
    fn excludes_query_row() {
        let x = grid();
        let nn = nearest_neighbors(&x, 3, 3, |_| true);
        assert!(!nn.contains(&3));
    }

    #[test]
    fn filter_restricts_candidates() {
        let x = grid();
        let nn = nearest_neighbors(&x, 0, 2, |i| i == 3);
        assert_eq!(nn, vec![3]);
    }

    #[test]
    fn k_larger_than_population() {
        let x = grid();
        let nn = nearest_neighbors(&x, 0, 10, |_| true);
        assert_eq!(nn.len(), 3);
    }

    #[test]
    fn sq_dist_basic() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(sq_dist(&[1.0], &[1.0]), 0.0);
    }
}
