//! RBF-kernel SVM trained with a simplified SMO solver.
//!
//! The paper's final estimator for classification tasks is "SVM with RBF
//! kernel" alongside the random forest, with the better score reported (§7).
//! This is a from-scratch binary SMO (Platt-style, simplified working-set
//! selection) lifted to multiclass with one-vs-rest.

use crate::{MlError, Result};
use arda_linalg::stats::{apply_standardization, standardize_columns};
use arda_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SVM hyper-parameters.
#[derive(Debug, Clone)]
pub struct SvmConfig {
    /// Box constraint C.
    pub c: f64,
    /// RBF width γ (`None` → 1/d heuristic).
    pub gamma: Option<f64>,
    /// KKT tolerance.
    pub tol: f64,
    /// Maximum passes without α changes before stopping.
    pub max_passes: usize,
    /// Hard cap on SMO iterations.
    pub max_iter: usize,
    /// RNG seed (partner selection).
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            c: 1.0,
            gamma: None,
            tol: 1e-3,
            max_passes: 3,
            max_iter: 2000,
            seed: 0,
        }
    }
}

/// Binary SMO state for one one-vs-rest head.
#[derive(Debug, Clone)]
struct BinaryHead {
    alphas: Vec<f64>,
    bias: f64,
    support_rows: Vec<usize>,
    targets: Vec<f64>, // ±1 aligned with support_rows
}

/// RBF-kernel SVM (binary or one-vs-rest multiclass).
#[derive(Debug, Clone)]
pub struct RbfSvm {
    cfg: SvmConfig,
    gamma: f64,
    n_classes: usize,
    train_x: Matrix,
    heads: Vec<BinaryHead>,
    scaling: Vec<(f64, f64)>,
}

impl RbfSvm {
    /// Create an un-fitted SVM.
    pub fn new(cfg: SvmConfig) -> Self {
        RbfSvm {
            cfg,
            gamma: 0.0,
            n_classes: 0,
            train_x: Matrix::zeros(0, 0),
            heads: Vec::new(),
            scaling: Vec::new(),
        }
    }

    fn kernel(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        (-self.gamma * d2).exp()
    }

    /// Fit with labels `0..n_classes`.
    pub fn fit(&mut self, x: &Matrix, y: &[f64], n_classes: usize) -> Result<()> {
        if x.rows() == 0 {
            return Err(MlError::Invalid("empty training set".into()));
        }
        if x.rows() != y.len() {
            return Err(MlError::ShapeMismatch(format!(
                "{} rows vs {} labels",
                x.rows(),
                y.len()
            )));
        }
        if n_classes < 2 {
            return Err(MlError::Invalid("svm needs ≥2 classes".into()));
        }
        let mut xs = x.clone();
        self.scaling = standardize_columns(&mut xs);
        self.gamma = self.cfg.gamma.unwrap_or(1.0 / xs.cols().max(1) as f64);
        self.n_classes = n_classes;
        self.train_x = xs;
        self.heads.clear();

        let heads = if n_classes == 2 { 1 } else { n_classes };
        for cls in 0..heads {
            let targets: Vec<f64> = y
                .iter()
                .map(|&v| {
                    let positive = if n_classes == 2 {
                        v >= 1.0
                    } else {
                        (v as usize) == cls
                    };
                    if positive {
                        1.0
                    } else {
                        -1.0
                    }
                })
                .collect();
            let head = self.smo(&targets)?;
            self.heads.push(head);
        }
        Ok(())
    }

    /// Simplified SMO on ±1 targets over `self.train_x`.
    fn smo(&self, t: &[f64]) -> Result<BinaryHead> {
        let n = t.len();
        let x = &self.train_x;
        let c = self.cfg.c;
        let tol = self.cfg.tol;
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);

        // Precompute the kernel matrix (training sets here are coreset-sized).
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = self.kernel(x.row(i), x.row(j));
                k.set(i, j, v);
                k.set(j, i, v);
            }
        }

        let mut alphas = vec![0.0; n];
        let mut b = 0.0;
        let f = |alphas: &[f64], b: f64, k: &Matrix, t: &[f64], i: usize| -> f64 {
            let mut s = b;
            for j in 0..alphas.len() {
                if alphas[j] > 0.0 {
                    s += alphas[j] * t[j] * k.get(j, i);
                }
            }
            s
        };

        let mut passes = 0usize;
        let mut iters = 0usize;
        while passes < self.cfg.max_passes && iters < self.cfg.max_iter {
            iters += 1;
            let mut changed = 0usize;
            for i in 0..n {
                let ei = f(&alphas, b, &k, t, i) - t[i];
                if (t[i] * ei < -tol && alphas[i] < c) || (t[i] * ei > tol && alphas[i] > 0.0) {
                    // Random partner j ≠ i.
                    let mut j = rng.gen_range(0..n - 1);
                    if j >= i {
                        j += 1;
                    }
                    let ej = f(&alphas, b, &k, t, j) - t[j];
                    let (ai_old, aj_old) = (alphas[i], alphas[j]);
                    let (lo, hi) = if t[i] != t[j] {
                        ((aj_old - ai_old).max(0.0), (c + aj_old - ai_old).min(c))
                    } else {
                        ((ai_old + aj_old - c).max(0.0), (ai_old + aj_old).min(c))
                    };
                    if (hi - lo).abs() < 1e-12 {
                        continue;
                    }
                    let eta = 2.0 * k.get(i, j) - k.get(i, i) - k.get(j, j);
                    if eta >= 0.0 {
                        continue;
                    }
                    let mut aj = aj_old - t[j] * (ei - ej) / eta;
                    aj = aj.clamp(lo, hi);
                    if (aj - aj_old).abs() < 1e-7 {
                        continue;
                    }
                    let ai = ai_old + t[i] * t[j] * (aj_old - aj);
                    alphas[i] = ai;
                    alphas[j] = aj;
                    let b1 = b
                        - ei
                        - t[i] * (ai - ai_old) * k.get(i, i)
                        - t[j] * (aj - aj_old) * k.get(i, j);
                    let b2 = b
                        - ej
                        - t[i] * (ai - ai_old) * k.get(i, j)
                        - t[j] * (aj - aj_old) * k.get(j, j);
                    b = if ai > 0.0 && ai < c {
                        b1
                    } else if aj > 0.0 && aj < c {
                        b2
                    } else {
                        (b1 + b2) / 2.0
                    };
                    changed += 1;
                }
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }

        let support_rows: Vec<usize> = (0..n).filter(|&i| alphas[i] > 1e-9).collect();
        Ok(BinaryHead {
            alphas: support_rows.iter().map(|&i| alphas[i]).collect(),
            bias: b,
            targets: support_rows.iter().map(|&i| t[i]).collect(),
            support_rows,
        })
    }

    fn decision(&self, head: &BinaryHead, row: &[f64]) -> f64 {
        let mut s = head.bias;
        for ((&sv, &a), &t) in head
            .support_rows
            .iter()
            .zip(&head.alphas)
            .zip(&head.targets)
        {
            s += a * t * self.kernel(self.train_x.row(sv), row);
        }
        s
    }

    /// Predicted class ids.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        if self.heads.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.scaling.len() {
            return Err(MlError::ShapeMismatch("predict width".into()));
        }
        let mut xs = x.clone();
        apply_standardization(&mut xs, &self.scaling);
        let mut out = Vec::with_capacity(xs.rows());
        for r in 0..xs.rows() {
            if self.n_classes == 2 {
                let z = self.decision(&self.heads[0], xs.row(r));
                out.push(if z >= 0.0 { 1.0 } else { 0.0 });
            } else {
                let best = self
                    .heads
                    .iter()
                    .map(|h| self.decision(h, xs.row(r)))
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|(c, _)| c as f64)
                    .unwrap_or(0.0);
                out.push(best);
            }
        }
        Ok(out)
    }

    /// Number of support vectors in the first head (diagnostics).
    pub fn n_support(&self) -> usize {
        self.heads.first().map_or(0, |h| h.support_rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        // Inner cluster = class 0, outer ring = class 1 — not linearly
        // separable, requires the RBF kernel.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let cls = (i % 2) as f64;
            let radius = if cls == 0.0 {
                rng.gen_range(0.0..0.8)
            } else {
                rng.gen_range(2.0..3.0)
            };
            let theta: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            rows.push(vec![radius * theta.cos(), radius * theta.sin()]);
            y.push(cls);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn separates_rings() {
        let (x, y) = ring_data(150, 0);
        let mut svm = RbfSvm::new(SvmConfig {
            c: 5.0,
            ..Default::default()
        });
        svm.fit(&x, &y, 2).unwrap();
        let preds = svm.predict(&x).unwrap();
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "acc {acc}");
        assert!(svm.n_support() > 0);
    }

    #[test]
    fn multiclass_one_vs_rest() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..120 {
            let cls = i % 3;
            let offset = cls as f64 * 5.0;
            rows.push(vec![
                offset + (i as f64 * 0.37).sin() * 0.3,
                (i as f64 * 0.73).cos() * 0.3,
            ]);
            y.push(cls as f64);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut svm = RbfSvm::new(SvmConfig::default());
        svm.fit(&x, &y, 3).unwrap();
        let preds = svm.predict(&x).unwrap();
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.9, "acc {acc}");
    }

    #[test]
    fn error_paths() {
        let mut svm = RbfSvm::new(SvmConfig::default());
        assert!(matches!(
            svm.predict(&Matrix::zeros(1, 1)),
            Err(MlError::NotFitted)
        ));
        assert!(svm.fit(&Matrix::zeros(0, 1), &[], 2).is_err());
        assert!(svm.fit(&Matrix::zeros(2, 1), &[0.0, 1.0], 1).is_err());
        assert!(svm.fit(&Matrix::zeros(2, 1), &[0.0], 2).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = ring_data(80, 3);
        let mut a = RbfSvm::new(SvmConfig {
            seed: 1,
            ..Default::default()
        });
        a.fit(&x, &y, 2).unwrap();
        let mut b = RbfSvm::new(SvmConfig {
            seed: 1,
            ..Default::default()
        });
        b.fit(&x, &y, 2).unwrap();
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
    }
}
