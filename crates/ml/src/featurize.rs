//! Table → [`Dataset`] conversion ("feature formatting" in Figure 1).
//!
//! ARDA "binarizes categorical features into a set of numerical features"
//! (§3.1) before sketching or model training. This module implements that
//! conversion: numeric columns pass through (nulls imputed with the column
//! median), string columns are one-hot encoded up to a cardinality cap
//! (rarer values fall into an `__other__` bucket), and the designated target
//! column becomes `y` (class ids for classification, raw values for
//! regression).

use crate::{Dataset, MlError, Result, Task};
use arda_linalg::Matrix;
use arda_table::{Column, ColumnData, DataType, Table};
use std::collections::HashMap;

/// Cells (rows × columns) below which encoding stays sequential.
const PAR_MIN_CELLS: usize = 1 << 14;

/// Options controlling featurization.
#[derive(Debug, Clone)]
pub struct FeaturizeOptions {
    /// Maximum one-hot categories per string column; less frequent values
    /// share an `__other__` indicator.
    pub max_categories: usize,
    /// Drop numeric columns that are entirely null instead of erroring.
    pub drop_all_null: bool,
}

impl Default for FeaturizeOptions {
    fn default() -> Self {
        FeaturizeOptions {
            max_categories: 16,
            drop_all_null: true,
        }
    }
}

/// Convert `table` into a [`Dataset`] predicting `target`.
///
/// The task is inferred from the target column: string/bool targets (or
/// integer targets when `force_classification`) become classification with
/// labels mapped to contiguous class ids; float targets become regression.
pub fn featurize(
    table: &Table,
    target: &str,
    force_classification: bool,
    opts: &FeaturizeOptions,
) -> Result<Dataset> {
    let target_col = table
        .column(target)
        .map_err(|e| MlError::Invalid(e.to_string()))?;
    let n = table.n_rows();
    if n == 0 {
        return Err(MlError::Invalid("cannot featurize an empty table".into()));
    }

    // ----- target -----
    let (y, task) = match target_col.dtype() {
        DataType::Float if !force_classification => {
            let mut y = Vec::with_capacity(n);
            let median = target_col.median().unwrap_or(0.0);
            for i in 0..n {
                y.push(target_col.get_f64(i).unwrap_or(median));
            }
            (y, Task::Regression)
        }
        DataType::Int | DataType::Timestamp if !force_classification => {
            let median = target_col.median().unwrap_or(0.0);
            let y = (0..n)
                .map(|i| target_col.get_f64(i).unwrap_or(median))
                .collect();
            (y, Task::Regression)
        }
        _ => {
            // Map distinct label values to contiguous class ids.
            let mut ids: HashMap<String, usize> = HashMap::new();
            let mut y = Vec::with_capacity(n);
            for i in 0..n {
                let v = target_col.get(i);
                let label = if v.is_null() {
                    "__null__".to_string()
                } else {
                    v.to_string()
                };
                let next = ids.len();
                let id = *ids.entry(label).or_insert(next);
                y.push(id as f64);
            }
            let k = ids.len();
            (y, Task::Classification { n_classes: k })
        }
    };

    // ----- features -----
    // Each source column encodes independently, so the per-column work runs
    // through `par_map` on the ambient work budget; the ordered results are
    // flattened in table column order, matching the sequential encoding
    // exactly at any budget size.
    let feature_cols: Vec<&Column> = table
        .columns()
        .iter()
        .filter(|c| c.name() != target)
        .collect();
    let threads = arda_par::threads_for(0, n * feature_cols.len().max(1), PAR_MIN_CELLS);
    let encoded: Vec<Vec<(String, Vec<f64>)>> =
        arda_par::par_map(&feature_cols, threads, |_, col| encode_column(col, n, opts));

    let mut columns: Vec<Vec<f64>> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for (name, vals) in encoded.into_iter().flatten() {
        names.push(name);
        columns.push(vals);
    }

    // Columnar fast path: scatter the per-column buffers straight into the
    // row-major matrix (no per-cell indirection).
    let x = Matrix::from_columns(n, &columns).map_err(|e| MlError::ShapeMismatch(e.to_string()))?;
    Dataset::new(x, y, names, task)
}

/// Encode one feature column into zero or more named numeric columns,
/// reading the columnar storage directly (no per-cell [`arda_table::Value`]
/// boxing).
fn encode_column(col: &Column, n: usize, opts: &FeaturizeOptions) -> Vec<(String, Vec<f64>)> {
    match col.data() {
        ColumnData::Str(values) => {
            // Frequency-ranked one-hot encoding.
            let mut counts: HashMap<&str, usize> = HashMap::new();
            for v in values.iter().flatten() {
                *counts.entry(v.as_str()).or_insert(0) += 1;
            }
            let mut ranked: Vec<(&str, usize)> = counts.into_iter().collect();
            ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
            let kept: Vec<&str> = ranked
                .iter()
                .take(opts.max_categories)
                .map(|(s, _)| *s)
                .collect();
            let has_other = ranked.len() > kept.len();
            let mut out = Vec::with_capacity(kept.len() + has_other as usize);
            for cat in &kept {
                let mut indicator = vec![0.0; n];
                for (i, v) in values.iter().enumerate() {
                    if v.as_deref() == Some(*cat) {
                        indicator[i] = 1.0;
                    }
                }
                out.push((format!("{}={}", col.name(), cat), indicator));
            }
            if has_other {
                let mut indicator = vec![0.0; n];
                for (i, v) in values.iter().enumerate() {
                    if let Some(v) = v.as_deref() {
                        if !kept.contains(&v) {
                            indicator[i] = 1.0;
                        }
                    }
                }
                out.push((format!("{}=__other__", col.name()), indicator));
            }
            out
        }
        data => match col.median() {
            None => {
                if opts.drop_all_null {
                    Vec::new()
                } else {
                    vec![(col.name().to_string(), vec![0.0; n])]
                }
            }
            Some(med) => {
                let vals: Vec<f64> = match data {
                    ColumnData::Float(v) => v.iter().map(|x| x.unwrap_or(med)).collect(),
                    ColumnData::Int(v) | ColumnData::Timestamp(v) => {
                        v.iter().map(|x| x.map_or(med, |x| x as f64)).collect()
                    }
                    ColumnData::Bool(v) => v
                        .iter()
                        .map(|x| x.map_or(med, |b| if b { 1.0 } else { 0.0 }))
                        .collect(),
                    ColumnData::Str(_) => unreachable!("handled above"),
                };
                vec![(col.name().to_string(), vals)]
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arda_table::Column;

    fn table() -> Table {
        Table::new(
            "t",
            vec![
                Column::from_f64_opt("num", vec![Some(1.0), None, Some(3.0), Some(2.0)]),
                Column::from_str("cat", vec!["a", "b", "a", "c"]),
                Column::from_f64("target", vec![0.1, 0.2, 0.3, 0.4]),
                Column::from_str("label", vec!["x", "y", "x", "y"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn regression_target_from_float() {
        let d = featurize(&table(), "target", false, &FeaturizeOptions::default()).unwrap();
        assert_eq!(d.task, Task::Regression);
        assert_eq!(d.y, vec![0.1, 0.2, 0.3, 0.4]);
        // num + cat one-hots (3) + label one-hots (2) = 6
        assert_eq!(d.n_features(), 6);
    }

    #[test]
    fn classification_target_from_string() {
        let d = featurize(&table(), "label", false, &FeaturizeOptions::default()).unwrap();
        assert_eq!(d.task, Task::Classification { n_classes: 2 });
        assert_eq!(d.y, vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn force_classification_on_numeric() {
        let t = Table::new(
            "t",
            vec![
                Column::from_f64("f", vec![1.0, 2.0]),
                Column::from_i64("cls", vec![10, 20]),
            ],
        )
        .unwrap();
        let d = featurize(&t, "cls", true, &FeaturizeOptions::default()).unwrap();
        assert!(d.task.is_classification());
        assert_eq!(d.y, vec![0.0, 1.0]);
    }

    #[test]
    fn nulls_imputed_with_median() {
        let d = featurize(&table(), "target", false, &FeaturizeOptions::default()).unwrap();
        let num_idx = d.feature_names.iter().position(|n| n == "num").unwrap();
        // median of {1,3,2} = 2
        assert_eq!(d.x.get(1, num_idx), 2.0);
    }

    #[test]
    fn one_hot_names_and_values() {
        let d = featurize(&table(), "target", false, &FeaturizeOptions::default()).unwrap();
        let a_idx = d.feature_names.iter().position(|n| n == "cat=a").unwrap();
        assert_eq!(d.x.col(a_idx), vec![1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn category_cap_creates_other_bucket() {
        let t = Table::new(
            "t",
            vec![
                Column::from_str("c", vec!["a", "a", "b", "c", "d"]),
                Column::from_f64("y", vec![1.0, 2.0, 3.0, 4.0, 5.0]),
            ],
        )
        .unwrap();
        let opts = FeaturizeOptions {
            max_categories: 2,
            drop_all_null: true,
        };
        let d = featurize(&t, "y", false, &opts).unwrap();
        assert!(d.feature_names.iter().any(|n| n == "c=__other__"));
        // a (2×) kept; one of b/c/d kept; rest in other.
        assert_eq!(d.n_features(), 3);
    }

    #[test]
    fn all_null_numeric_dropped() {
        let t = Table::new(
            "t",
            vec![
                Column::from_f64_opt("dead", vec![None, None]),
                Column::from_f64("y", vec![1.0, 2.0]),
            ],
        )
        .unwrap();
        let d = featurize(&t, "y", false, &FeaturizeOptions::default()).unwrap();
        assert_eq!(d.n_features(), 0);
        let opts = FeaturizeOptions {
            drop_all_null: false,
            ..Default::default()
        };
        let d2 = featurize(&t, "y", false, &opts).unwrap();
        assert_eq!(d2.n_features(), 1);
    }

    #[test]
    fn missing_target_errors() {
        assert!(featurize(&table(), "nope", false, &FeaturizeOptions::default()).is_err());
    }
}
