//! Linear models: ridge, lasso (coordinate descent), logistic regression and
//! a Pegasos-style linear SVM.
//!
//! These provide both estimators and — through their coefficient magnitudes —
//! the linear feature rankers of ARDA's baseline grid (Lasso, Logistic
//! Regression, Linear SVC in Tables 1/6).

use crate::{MlError, Result};
use arda_linalg::stats::{apply_standardization, standardize_columns};
use arda_linalg::{cholesky_solve, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn check_fit_shapes(x: &Matrix, y: &[f64]) -> Result<()> {
    if x.rows() == 0 {
        return Err(MlError::Invalid("empty training set".into()));
    }
    if x.rows() != y.len() {
        return Err(MlError::ShapeMismatch(format!(
            "{} rows vs {} labels",
            x.rows(),
            y.len()
        )));
    }
    Ok(())
}

/// Ridge regression `min ‖Xw − y‖² + λ‖w‖²`, solved exactly via Cholesky on
/// the regularised normal equations.
#[derive(Debug, Clone)]
pub struct Ridge {
    /// L2 penalty λ.
    pub lambda: f64,
    weights: Vec<f64>,
    intercept: f64,
    scaling: Vec<(f64, f64)>,
}

impl Ridge {
    /// New un-fitted model.
    pub fn new(lambda: f64) -> Self {
        Ridge {
            lambda,
            weights: Vec::new(),
            intercept: 0.0,
            scaling: Vec::new(),
        }
    }

    /// Fit on `x`, `y`.
    pub fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_shapes(x, y)?;
        let mut xs = x.clone();
        self.scaling = standardize_columns(&mut xs);
        let y_mean = y.iter().sum::<f64>() / y.len() as f64;
        let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

        let mut gram = xs.gram();
        let d = gram.rows();
        for i in 0..d {
            let v = gram.get(i, i) + self.lambda.max(1e-9);
            gram.set(i, i, v);
        }
        // Xᵀy.
        let mut rhs = vec![0.0; d];
        for r in 0..xs.rows() {
            let row = xs.row(r);
            let yv = yc[r];
            for (acc, v) in rhs.iter_mut().zip(row) {
                *acc += v * yv;
            }
        }
        self.weights = cholesky_solve(&gram, &rhs).map_err(|e| MlError::Invalid(e.to_string()))?;
        self.intercept = y_mean;
        Ok(())
    }

    /// Predict rows of `x`.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        if self.weights.is_empty() && x.cols() != 0 {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.scaling.len() {
            return Err(MlError::ShapeMismatch(format!(
                "predict: {} columns vs trained {}",
                x.cols(),
                self.scaling.len()
            )));
        }
        let mut xs = x.clone();
        apply_standardization(&mut xs, &self.scaling);
        Ok((0..xs.rows())
            .map(|r| {
                self.intercept
                    + xs.row(r)
                        .iter()
                        .zip(&self.weights)
                        .map(|(a, b)| a * b)
                        .sum::<f64>()
            })
            .collect())
    }

    /// Standardised coefficients (importance magnitudes).
    pub fn coefficients(&self) -> &[f64] {
        &self.weights
    }
}

/// Lasso `min (1/2n)‖Xw − y‖² + α‖w‖₁` via cyclic coordinate descent on
/// standardised features.
#[derive(Debug, Clone)]
pub struct Lasso {
    /// L1 penalty α.
    pub alpha: f64,
    /// Maximum coordinate-descent sweeps.
    pub max_iter: usize,
    /// Convergence tolerance on the max coefficient change.
    pub tol: f64,
    weights: Vec<f64>,
    intercept: f64,
    scaling: Vec<(f64, f64)>,
}

impl Lasso {
    /// New un-fitted model.
    pub fn new(alpha: f64) -> Self {
        Lasso {
            alpha,
            max_iter: 300,
            tol: 1e-6,
            weights: Vec::new(),
            intercept: 0.0,
            scaling: Vec::new(),
        }
    }

    /// Fit on `x`, `y`.
    pub fn fit(&mut self, x: &Matrix, y: &[f64]) -> Result<()> {
        check_fit_shapes(x, y)?;
        let n = x.rows();
        let d = x.cols();
        let mut xs = x.clone();
        self.scaling = standardize_columns(&mut xs);
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

        // Column views for fast coordinate updates.
        let cols: Vec<Vec<f64>> = (0..d).map(|c| xs.col(c)).collect();
        let col_sq: Vec<f64> = cols
            .iter()
            .map(|c| c.iter().map(|v| v * v).sum::<f64>() / n as f64)
            .collect();

        let mut w = vec![0.0; d];
        let mut residual = yc.clone();
        let soft = |z: f64, g: f64| -> f64 {
            if z > g {
                z - g
            } else if z < -g {
                z + g
            } else {
                0.0
            }
        };
        for _ in 0..self.max_iter {
            let mut max_delta: f64 = 0.0;
            for j in 0..d {
                if col_sq[j] <= 1e-12 {
                    continue;
                }
                let old = w[j];
                // ρ = (1/n) Σ x_ij (r_i + x_ij w_j)
                let mut rho = 0.0;
                for (xi, ri) in cols[j].iter().zip(&residual) {
                    rho += xi * ri;
                }
                rho = rho / n as f64 + col_sq[j] * old;
                let new = soft(rho, self.alpha) / col_sq[j];
                if new != old {
                    let delta = new - old;
                    for (ri, xi) in residual.iter_mut().zip(&cols[j]) {
                        *ri -= delta * xi;
                    }
                    w[j] = new;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.tol {
                break;
            }
        }
        self.weights = w;
        self.intercept = y_mean;
        Ok(())
    }

    /// Predict rows of `x`.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        if self.scaling.is_empty() && x.cols() != 0 {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.scaling.len() {
            return Err(MlError::ShapeMismatch("predict width".into()));
        }
        let mut xs = x.clone();
        apply_standardization(&mut xs, &self.scaling);
        Ok((0..xs.rows())
            .map(|r| {
                self.intercept
                    + xs.row(r)
                        .iter()
                        .zip(&self.weights)
                        .map(|(a, b)| a * b)
                        .sum::<f64>()
            })
            .collect())
    }

    /// Sparse standardised coefficients.
    pub fn coefficients(&self) -> &[f64] {
        &self.weights
    }
}

/// One-vs-rest L2-regularised logistic regression trained with gradient
/// descent on standardised features.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// L2 penalty.
    pub lambda: f64,
    /// Gradient steps.
    pub max_iter: usize,
    /// Learning rate.
    pub lr: f64,
    /// Number of classes (fixed at fit time).
    n_classes: usize,
    /// Per-class weight vectors (one-vs-rest).
    weights: Vec<Vec<f64>>,
    intercepts: Vec<f64>,
    scaling: Vec<(f64, f64)>,
}

impl LogisticRegression {
    /// New un-fitted model.
    pub fn new(lambda: f64) -> Self {
        LogisticRegression {
            lambda,
            max_iter: 200,
            lr: 0.5,
            n_classes: 0,
            weights: Vec::new(),
            intercepts: Vec::new(),
            scaling: Vec::new(),
        }
    }

    /// Fit with class labels `0..n_classes` encoded in `y`.
    pub fn fit(&mut self, x: &Matrix, y: &[f64], n_classes: usize) -> Result<()> {
        check_fit_shapes(x, y)?;
        if n_classes < 2 {
            return Err(MlError::Invalid(
                "logistic regression needs ≥2 classes".into(),
            ));
        }
        let n = x.rows();
        let d = x.cols();
        let mut xs = x.clone();
        self.scaling = standardize_columns(&mut xs);
        self.n_classes = n_classes;
        self.weights.clear();
        self.intercepts.clear();

        // Binary case trains one head; multiclass trains one per class.
        let heads = if n_classes == 2 { 1 } else { n_classes };
        for cls in 0..heads {
            // Binary mode trains a single label-1-vs-0 head; multiclass
            // trains class-`cls`-vs-rest heads.
            let targets: Vec<f64> = y
                .iter()
                .map(|&v| {
                    let positive = if n_classes == 2 {
                        v >= 1.0
                    } else {
                        (v as usize) == cls
                    };
                    if positive {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect();
            let mut w = vec![0.0; d];
            let mut b = 0.0;
            for _ in 0..self.max_iter {
                let mut grad_w = vec![0.0; d];
                let mut grad_b = 0.0;
                for r in 0..n {
                    let z: f64 = b + xs.row(r).iter().zip(&w).map(|(a, c)| a * c).sum::<f64>();
                    let p = 1.0 / (1.0 + (-z).exp());
                    let err = p - targets[r];
                    for (g, v) in grad_w.iter_mut().zip(xs.row(r)) {
                        *g += err * v;
                    }
                    grad_b += err;
                }
                let inv_n = 1.0 / n as f64;
                for (wj, gj) in w.iter_mut().zip(&grad_w) {
                    *wj -= self.lr * (gj * inv_n + self.lambda * *wj);
                }
                b -= self.lr * grad_b * inv_n;
            }
            self.weights.push(w);
            self.intercepts.push(b);
        }
        Ok(())
    }

    /// Predicted class ids.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        if self.weights.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.scaling.len() {
            return Err(MlError::ShapeMismatch("predict width".into()));
        }
        let mut xs = x.clone();
        apply_standardization(&mut xs, &self.scaling);
        let mut out = Vec::with_capacity(xs.rows());
        for r in 0..xs.rows() {
            if self.n_classes == 2 {
                let z: f64 = self.intercepts[0]
                    + xs.row(r)
                        .iter()
                        .zip(&self.weights[0])
                        .map(|(a, b)| a * b)
                        .sum::<f64>();
                out.push(if z >= 0.0 { 1.0 } else { 0.0 });
            } else {
                let best = (0..self.weights.len())
                    .map(|c| {
                        self.intercepts[c]
                            + xs.row(r)
                                .iter()
                                .zip(&self.weights[c])
                                .map(|(a, b)| a * b)
                                .sum::<f64>()
                    })
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|(c, _)| c as f64)
                    .unwrap_or(0.0);
                out.push(best);
            }
        }
        Ok(out)
    }

    /// Per-feature importance: L2 norm of the coefficient across heads.
    pub fn coefficient_magnitudes(&self) -> Vec<f64> {
        if self.weights.is_empty() {
            return Vec::new();
        }
        let d = self.weights[0].len();
        (0..d)
            .map(|j| self.weights.iter().map(|w| w[j] * w[j]).sum::<f64>().sqrt())
            .collect()
    }
}

/// Linear SVM via the Pegasos stochastic sub-gradient solver (binary, hinge
/// loss, L2 regularisation); one-vs-rest for multiclass.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// Regularisation λ.
    pub lambda: f64,
    /// SGD epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
    n_classes: usize,
    weights: Vec<Vec<f64>>,
    intercepts: Vec<f64>,
    scaling: Vec<(f64, f64)>,
}

impl LinearSvm {
    /// New un-fitted model.
    pub fn new(lambda: f64) -> Self {
        LinearSvm {
            lambda,
            epochs: 30,
            seed: 0,
            n_classes: 0,
            weights: Vec::new(),
            intercepts: Vec::new(),
            scaling: Vec::new(),
        }
    }

    /// Fit with class labels `0..n_classes`.
    pub fn fit(&mut self, x: &Matrix, y: &[f64], n_classes: usize) -> Result<()> {
        check_fit_shapes(x, y)?;
        if n_classes < 2 {
            return Err(MlError::Invalid("svm needs ≥2 classes".into()));
        }
        let n = x.rows();
        let d = x.cols();
        let mut xs = x.clone();
        self.scaling = standardize_columns(&mut xs);
        self.n_classes = n_classes;
        self.weights.clear();
        self.intercepts.clear();

        let heads = if n_classes == 2 { 1 } else { n_classes };
        let mut rng = StdRng::seed_from_u64(self.seed);
        for cls in 0..heads {
            // ±1 targets: positive = this class (or label 1 in binary mode).
            let targets: Vec<f64> = y
                .iter()
                .map(|&v| {
                    let positive = if n_classes == 2 {
                        v >= 1.0
                    } else {
                        (v as usize) == cls
                    };
                    if positive {
                        1.0
                    } else {
                        -1.0
                    }
                })
                .collect();
            let mut w = vec![0.0; d];
            let mut b = 0.0;
            let mut t = 0usize;
            for _ in 0..self.epochs {
                for _ in 0..n {
                    t += 1;
                    let i = rng.gen_range(0..n);
                    let eta = 1.0 / (self.lambda * t as f64);
                    let margin: f64 = targets[i]
                        * (b + xs.row(i).iter().zip(&w).map(|(a, c)| a * c).sum::<f64>());
                    for wj in w.iter_mut() {
                        *wj *= 1.0 - eta * self.lambda;
                    }
                    if margin < 1.0 {
                        for (wj, v) in w.iter_mut().zip(xs.row(i)) {
                            *wj += eta * targets[i] * v;
                        }
                        b += eta * targets[i];
                    }
                }
            }
            self.weights.push(w);
            self.intercepts.push(b);
        }
        Ok(())
    }

    /// Predicted class ids.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        if self.weights.is_empty() {
            return Err(MlError::NotFitted);
        }
        if x.cols() != self.scaling.len() {
            return Err(MlError::ShapeMismatch("predict width".into()));
        }
        let mut xs = x.clone();
        apply_standardization(&mut xs, &self.scaling);
        let mut out = Vec::with_capacity(xs.rows());
        for r in 0..xs.rows() {
            if self.n_classes == 2 {
                let z: f64 = self.intercepts[0]
                    + xs.row(r)
                        .iter()
                        .zip(&self.weights[0])
                        .map(|(a, b)| a * b)
                        .sum::<f64>();
                out.push(if z >= 0.0 { 1.0 } else { 0.0 });
            } else {
                let best = (0..self.weights.len())
                    .map(|c| {
                        self.intercepts[c]
                            + xs.row(r)
                                .iter()
                                .zip(&self.weights[c])
                                .map(|(a, b)| a * b)
                                .sum::<f64>()
                    })
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|(c, _)| c as f64)
                    .unwrap_or(0.0);
                out.push(best);
            }
        }
        Ok(out)
    }

    /// Per-feature importance: L2 norm of coefficients across heads.
    pub fn coefficient_magnitudes(&self) -> Vec<f64> {
        if self.weights.is_empty() {
            return Vec::new();
        }
        let d = self.weights[0].len();
        (0..d)
            .map(|j| self.weights.iter().map(|w| w[j] * w[j]).sum::<f64>().sqrt())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - 1.0 * r[1] + 0.5).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    fn binary_data(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let cls = (i % 2) as f64;
            let c = if cls == 0.0 { -2.0 } else { 2.0 };
            rows.push(vec![c + rng.gen_range(-0.5..0.5), rng.gen_range(-1.0..1.0)]);
            y.push(cls);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn ridge_recovers_linear_function() {
        let (x, y) = linear_data(100, 0);
        let mut m = Ridge::new(1e-6);
        m.fit(&x, &y).unwrap();
        let preds = m.predict(&x).unwrap();
        for (p, t) in preds.iter().zip(&y) {
            assert!((p - t).abs() < 1e-6, "{p} vs {t}");
        }
    }

    #[test]
    fn ridge_shrinks_with_large_lambda() {
        let (x, y) = linear_data(100, 1);
        let mut weak = Ridge::new(1e-6);
        weak.fit(&x, &y).unwrap();
        let mut strong = Ridge::new(1e6);
        strong.fit(&x, &y).unwrap();
        let norm = |w: &[f64]| w.iter().map(|v| v * v).sum::<f64>();
        assert!(norm(strong.coefficients()) < norm(weak.coefficients()) * 1e-3);
    }

    #[test]
    fn lasso_zeroes_irrelevant_features() {
        let mut rng = StdRng::seed_from_u64(2);
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|_| {
                vec![
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                ]
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 5.0 * r[0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut m = Lasso::new(0.5);
        m.fit(&x, &y).unwrap();
        let w = m.coefficients();
        assert!(w[0].abs() > 1.0, "signal kept: {w:?}");
        assert!(
            w[1].abs() < 1e-6 && w[2].abs() < 1e-6,
            "noise zeroed: {w:?}"
        );
    }

    #[test]
    fn lasso_predicts_reasonably() {
        let (x, y) = linear_data(150, 3);
        let mut m = Lasso::new(0.01);
        m.fit(&x, &y).unwrap();
        let preds = m.predict(&x).unwrap();
        let mse: f64 = preds
            .iter()
            .zip(&y)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / y.len() as f64;
        assert!(mse < 0.1, "mse {mse}");
    }

    #[test]
    fn logistic_separates_blobs() {
        let (x, y) = binary_data(100, 4);
        let mut m = LogisticRegression::new(1e-4);
        m.fit(&x, &y, 2).unwrap();
        let preds = m.predict(&x).unwrap();
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "acc {acc}");
        let mags = m.coefficient_magnitudes();
        assert!(
            mags[0] > mags[1],
            "signal feature should dominate: {mags:?}"
        );
    }

    #[test]
    fn logistic_multiclass() {
        // Three separable clusters on one axis.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..90 {
            let cls = i % 3;
            rows.push(vec![cls as f64 * 4.0 + (i as f64 % 7.0) * 0.05]);
            y.push(cls as f64);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut m = LogisticRegression::new(1e-4);
        m.fit(&x, &y, 3).unwrap();
        let preds = m.predict(&x).unwrap();
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.9, "acc {acc}");
    }

    #[test]
    fn linear_svm_separates_blobs() {
        let (x, y) = binary_data(120, 5);
        let mut m = LinearSvm::new(0.01);
        m.fit(&x, &y, 2).unwrap();
        let preds = m.predict(&x).unwrap();
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "acc {acc}");
    }

    #[test]
    fn not_fitted_errors() {
        let x = Matrix::zeros(1, 2);
        assert!(matches!(
            Ridge::new(1.0).predict(&x),
            Err(MlError::NotFitted)
        ));
        assert!(matches!(
            LogisticRegression::new(1.0).predict(&x),
            Err(MlError::NotFitted)
        ));
        assert!(matches!(
            LinearSvm::new(1.0).predict(&x),
            Err(MlError::NotFitted)
        ));
    }

    #[test]
    fn shape_errors() {
        let x = Matrix::zeros(3, 2);
        let y = vec![0.0, 1.0];
        assert!(Ridge::new(1.0).fit(&x, &y).is_err());
        assert!(LogisticRegression::new(1.0).fit(&x, &[0.0; 3], 1).is_err());
        let (xt, yt) = binary_data(20, 6);
        let mut m = LinearSvm::new(0.1);
        m.fit(&xt, &yt, 2).unwrap();
        assert!(m.predict(&Matrix::zeros(1, 5)).is_err());
    }
}
