//! CART decision trees for classification (Gini) and regression (variance
//! reduction), with random feature subsampling for forests.

use crate::{Dataset, MlError, Result, Task};
use arda_linalg::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// How many candidate features each split considers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaxFeatures {
    /// All features (plain CART).
    All,
    /// `⌈√d⌉` — the forest default for classification.
    Sqrt,
    /// `⌈d/3⌉` — the forest default for regression.
    Third,
    /// Explicit count (clamped to `d`).
    Exact(usize),
}

impl MaxFeatures {
    fn resolve(self, d: usize) -> usize {
        let k = match self {
            MaxFeatures::All => d,
            MaxFeatures::Sqrt => (d as f64).sqrt().ceil() as usize,
            MaxFeatures::Third => d.div_ceil(3),
            MaxFeatures::Exact(k) => k,
        };
        k.clamp(1, d.max(1))
    }
}

/// Tree growth hyper-parameters.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum depth (root is depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child.
    pub min_samples_leaf: usize,
    /// Feature subsampling rule.
    pub max_features: MaxFeatures,
    /// RNG seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        prediction: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    task: Task,
    n_features: usize,
    /// Total impurity decrease attributed to each feature (unnormalised).
    importances: Vec<f64>,
}

struct Builder<'a> {
    x: &'a Matrix,
    y: &'a [f64],
    task: Task,
    cfg: &'a TreeConfig,
    rng: StdRng,
    nodes: Vec<Node>,
    importances: Vec<f64>,
    n_total: usize,
}

impl DecisionTree {
    /// Fit a tree on the dataset.
    pub fn fit(data: &Dataset, cfg: &TreeConfig) -> Result<Self> {
        Self::fit_xy(&data.x, &data.y, data.task, cfg)
    }

    /// Fit from raw matrix/labels.
    pub fn fit_xy(x: &Matrix, y: &[f64], task: Task, cfg: &TreeConfig) -> Result<Self> {
        if x.rows() == 0 {
            return Err(MlError::Invalid("empty training set".into()));
        }
        if x.rows() != y.len() {
            return Err(MlError::ShapeMismatch(format!(
                "{} rows vs {} labels",
                x.rows(),
                y.len()
            )));
        }
        let mut b = Builder {
            x,
            y,
            task,
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            nodes: Vec::new(),
            importances: vec![0.0; x.cols()],
            n_total: x.rows(),
        };
        let mut indices: Vec<usize> = (0..x.rows()).collect();
        b.build(&mut indices, 0);
        Ok(DecisionTree {
            nodes: b.nodes,
            task,
            n_features: x.cols(),
            importances: b.importances,
        })
    }

    /// Predict a single row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { prediction } => return *prediction,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predict every row of `x`.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        if x.cols() != self.n_features {
            return Err(MlError::ShapeMismatch(format!(
                "predict: {} columns vs trained {}",
                x.cols(),
                self.n_features
            )));
        }
        Ok((0..x.rows()).map(|r| self.predict_row(x.row(r))).collect())
    }

    /// Unnormalised impurity-decrease importances.
    pub fn importances(&self) -> &[f64] {
        &self.importances
    }

    /// Number of nodes (for complexity diagnostics).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The task this tree was trained for.
    pub fn task(&self) -> Task {
        self.task
    }
}

impl Builder<'_> {
    /// Recursively build the subtree over `indices`; returns node id.
    fn build(&mut self, indices: &mut [usize], depth: usize) -> usize {
        let node_impurity = self.impurity(indices);
        let should_split = indices.len() >= self.cfg.min_samples_split
            && depth < self.cfg.max_depth
            && node_impurity > 1e-12;

        if should_split {
            if let Some((feature, threshold, gain)) = self.best_split(indices, node_impurity) {
                // Partition in place.
                let mut left: Vec<usize> = Vec::new();
                let mut right: Vec<usize> = Vec::new();
                for &i in indices.iter() {
                    if self.x.get(i, feature) <= threshold {
                        left.push(i);
                    } else {
                        right.push(i);
                    }
                }
                if left.len() >= self.cfg.min_samples_leaf
                    && right.len() >= self.cfg.min_samples_leaf
                {
                    self.importances[feature] += gain * indices.len() as f64 / self.n_total as f64;
                    let id = self.nodes.len();
                    self.nodes.push(Node::Leaf { prediction: 0.0 }); // placeholder
                    let l = self.build(&mut left, depth + 1);
                    let r = self.build(&mut right, depth + 1);
                    self.nodes[id] = Node::Split {
                        feature,
                        threshold,
                        left: l,
                        right: r,
                    };
                    return id;
                }
            }
        }

        let prediction = self.leaf_value(indices);
        let id = self.nodes.len();
        self.nodes.push(Node::Leaf { prediction });
        id
    }

    fn leaf_value(&self, indices: &[usize]) -> f64 {
        match self.task {
            Task::Regression => {
                indices.iter().map(|&i| self.y[i]).sum::<f64>() / indices.len().max(1) as f64
            }
            Task::Classification { n_classes } => {
                let mut counts = vec![0usize; n_classes];
                for &i in indices {
                    counts[self.y[i] as usize] += 1;
                }
                counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &c)| c)
                    .map(|(k, _)| k as f64)
                    .unwrap_or(0.0)
            }
        }
    }

    fn impurity(&self, indices: &[usize]) -> f64 {
        match self.task {
            Task::Regression => {
                let n = indices.len() as f64;
                if n == 0.0 {
                    return 0.0;
                }
                let mean = indices.iter().map(|&i| self.y[i]).sum::<f64>() / n;
                indices
                    .iter()
                    .map(|&i| (self.y[i] - mean).powi(2))
                    .sum::<f64>()
                    / n
            }
            Task::Classification { n_classes } => {
                let n = indices.len() as f64;
                if n == 0.0 {
                    return 0.0;
                }
                let mut counts = vec![0usize; n_classes];
                for &i in indices {
                    counts[self.y[i] as usize] += 1;
                }
                1.0 - counts.iter().map(|&c| (c as f64 / n).powi(2)).sum::<f64>()
            }
        }
    }

    /// Best (feature, threshold, impurity decrease) over a random feature
    /// subset, or `None` when no valid split exists.
    fn best_split(&mut self, indices: &[usize], parent_impurity: f64) -> Option<(usize, f64, f64)> {
        let d = self.x.cols();
        if d == 0 {
            return None;
        }
        let k = self.cfg.max_features.resolve(d);
        let mut features: Vec<usize> = (0..d).collect();
        if k < d {
            features.shuffle(&mut self.rng);
            features.truncate(k);
        }

        let n = indices.len() as f64;
        let mut best: Option<(usize, f64, f64)> = None;
        // (value, y) pairs reused across features.
        let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(indices.len());

        for &f in &features {
            pairs.clear();
            pairs.extend(indices.iter().map(|&i| (self.x.get(i, f), self.y[i])));
            pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
            if pairs[0].0 == pairs[pairs.len() - 1].0 {
                continue; // constant feature in this node
            }

            match self.task {
                Task::Regression => {
                    let total_sum: f64 = pairs.iter().map(|p| p.1).sum();
                    let total_sq: f64 = pairs.iter().map(|p| p.1 * p.1).sum();
                    let mut left_sum = 0.0;
                    let mut left_sq = 0.0;
                    for split in 1..pairs.len() {
                        let (v_prev, y_prev) = pairs[split - 1];
                        left_sum += y_prev;
                        left_sq += y_prev * y_prev;
                        let v_cur = pairs[split].0;
                        if v_cur == v_prev {
                            continue;
                        }
                        let nl = split as f64;
                        let nr = n - nl;
                        if (split < self.cfg.min_samples_leaf)
                            || (pairs.len() - split < self.cfg.min_samples_leaf)
                        {
                            continue;
                        }
                        let var_l = left_sq / nl - (left_sum / nl).powi(2);
                        let right_sum = total_sum - left_sum;
                        let right_sq = total_sq - left_sq;
                        let var_r = right_sq / nr - (right_sum / nr).powi(2);
                        let gain = parent_impurity - (nl / n) * var_l - (nr / n) * var_r;
                        // Zero-gain splits are allowed on impure nodes (XOR
                        // needs them); ties keep the first candidate.
                        if best.is_none_or(|b| gain > b.2) && gain >= -1e-12 {
                            best = Some((f, (v_prev + v_cur) / 2.0, gain.max(0.0)));
                        }
                    }
                }
                Task::Classification { n_classes } => {
                    let mut total = vec![0usize; n_classes];
                    for p in pairs.iter() {
                        total[p.1 as usize] += 1;
                    }
                    let mut left = vec![0usize; n_classes];
                    for split in 1..pairs.len() {
                        let (v_prev, y_prev) = pairs[split - 1];
                        left[y_prev as usize] += 1;
                        let v_cur = pairs[split].0;
                        if v_cur == v_prev {
                            continue;
                        }
                        if (split < self.cfg.min_samples_leaf)
                            || (pairs.len() - split < self.cfg.min_samples_leaf)
                        {
                            continue;
                        }
                        let nl = split as f64;
                        let nr = n - nl;
                        let gini = |counts: &[usize], tot: f64| -> f64 {
                            1.0 - counts
                                .iter()
                                .map(|&c| (c as f64 / tot).powi(2))
                                .sum::<f64>()
                        };
                        let gini_l = gini(&left, nl);
                        let right: Vec<usize> =
                            total.iter().zip(&left).map(|(t, l)| t - l).collect();
                        let gini_r = gini(&right, nr);
                        let gain = parent_impurity - (nl / n) * gini_l - (nr / n) * gini_r;
                        if best.is_none_or(|b| gain > b.2) && gain >= -1e-12 {
                            best = Some((f, (v_prev + v_cur) / 2.0, gain.max(0.0)));
                        }
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_dataset() -> Dataset {
        // XOR needs depth ≥ 2: not linearly separable.
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![0.1, 0.1],
            vec![0.1, 0.9],
            vec![0.9, 0.1],
            vec![0.9, 0.9],
        ])
        .unwrap();
        let y = vec![0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0];
        Dataset::new(
            x,
            y,
            vec!["a".into(), "b".into()],
            Task::Classification { n_classes: 2 },
        )
        .unwrap()
    }

    #[test]
    fn fits_xor() {
        let d = xor_dataset();
        let tree = DecisionTree::fit(&d, &TreeConfig::default()).unwrap();
        let preds = tree.predict(&d.x).unwrap();
        assert_eq!(preds, d.y, "tree should perfectly fit XOR");
        assert!(tree.n_nodes() >= 5);
    }

    #[test]
    fn regression_step_function() {
        let x = Matrix::from_rows(&[
            vec![1.0],
            vec![2.0],
            vec![3.0],
            vec![10.0],
            vec![11.0],
            vec![12.0],
        ])
        .unwrap();
        let y = vec![1.0, 1.0, 1.0, 5.0, 5.0, 5.0];
        let tree = DecisionTree::fit_xy(&x, &y, Task::Regression, &TreeConfig::default()).unwrap();
        let test = Matrix::from_rows(&[vec![2.5], vec![11.5]]).unwrap();
        let p = tree.predict(&test).unwrap();
        assert!((p[0] - 1.0).abs() < 1e-9);
        assert!((p[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn depth_zero_is_single_leaf() {
        let d = xor_dataset();
        let cfg = TreeConfig {
            max_depth: 0,
            ..Default::default()
        };
        let tree = DecisionTree::fit(&d, &cfg).unwrap();
        assert_eq!(tree.n_nodes(), 1);
        // Majority class of a balanced XOR set is class 0 (tie broken by max_by_key keeping last max? ensure deterministic)
        let p = tree.predict(&d.x).unwrap();
        assert!(p.iter().all(|&v| v == p[0]));
    }

    #[test]
    fn importances_focus_on_signal_feature() {
        // Feature 0 is pure signal, feature 1 is constant noise.
        let x = Matrix::from_rows(&[
            vec![0.0, 5.0],
            vec![1.0, 5.0],
            vec![0.0, 5.0],
            vec![1.0, 5.0],
        ])
        .unwrap();
        let y = vec![0.0, 1.0, 0.0, 1.0];
        let tree = DecisionTree::fit_xy(
            &x,
            &y,
            Task::Classification { n_classes: 2 },
            &TreeConfig::default(),
        )
        .unwrap();
        assert!(tree.importances()[0] > 0.0);
        assert_eq!(tree.importances()[1], 0.0);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]).unwrap();
        let y = vec![0.0, 0.0, 1.0, 1.0];
        let cfg = TreeConfig {
            min_samples_leaf: 3,
            ..Default::default()
        };
        let tree =
            DecisionTree::fit_xy(&x, &y, Task::Classification { n_classes: 2 }, &cfg).unwrap();
        // No split can give both children ≥ 3 samples with n=4.
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn shape_errors() {
        let x = Matrix::zeros(2, 2);
        assert!(
            DecisionTree::fit_xy(&x, &[0.0], Task::Regression, &TreeConfig::default()).is_err()
        );
        let tree = DecisionTree::fit_xy(&x, &[0.0, 1.0], Task::Regression, &TreeConfig::default())
            .unwrap();
        assert!(tree.predict(&Matrix::zeros(1, 3)).is_err());
        assert!(DecisionTree::fit_xy(
            &Matrix::zeros(0, 2),
            &[],
            Task::Regression,
            &TreeConfig::default()
        )
        .is_err());
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(10), 10);
        assert_eq!(MaxFeatures::Sqrt.resolve(100), 10);
        assert_eq!(MaxFeatures::Third.resolve(10), 4);
        assert_eq!(MaxFeatures::Exact(3).resolve(10), 3);
        assert_eq!(MaxFeatures::Exact(99).resolve(10), 10);
        assert_eq!(MaxFeatures::Exact(0).resolve(10), 1);
    }

    #[test]
    fn feature_subsampling_is_deterministic_per_seed() {
        let d = xor_dataset();
        let cfg = TreeConfig {
            max_features: MaxFeatures::Exact(1),
            seed: 5,
            ..Default::default()
        };
        let t1 = DecisionTree::fit(&d, &cfg).unwrap();
        let t2 = DecisionTree::fit(&d, &cfg).unwrap();
        assert_eq!(t1.predict(&d.x).unwrap(), t2.predict(&d.x).unwrap());
    }
}
