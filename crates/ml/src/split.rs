//! Train/test splitting and k-fold cross-validation index generation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Shuffle `0..n` and split into (train, test) with `test_fraction` of rows
/// in the test side (at least 1 of each when `n ≥ 2`).
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut n_test = ((n as f64) * test_fraction).round() as usize;
    if n >= 2 {
        n_test = n_test.clamp(1, n - 1);
    } else {
        n_test = n_test.min(n);
    }
    let test = idx.split_off(n - n_test);
    (idx, test)
}

/// Label-stratified split: each class contributes ~`test_fraction` of its
/// rows to the test side, so rare classes are never absent from either side.
pub fn stratified_split(labels: &[f64], test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    let mut by_class: HashMap<i64, Vec<usize>> = HashMap::new();
    for (i, &y) in labels.iter().enumerate() {
        by_class.entry(y as i64).or_default().push(i);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut train = Vec::new();
    let mut test = Vec::new();
    // Iterate classes in sorted order for determinism.
    let mut classes: Vec<i64> = by_class.keys().copied().collect();
    classes.sort_unstable();
    for c in classes {
        let mut rows = by_class.remove(&c).expect("class present");
        rows.shuffle(&mut rng);
        let mut n_test = ((rows.len() as f64) * test_fraction).round() as usize;
        if rows.len() >= 2 {
            n_test = n_test.clamp(1, rows.len() - 1);
        } else {
            n_test = 0; // singleton classes stay in train
        }
        let split = rows.len() - n_test;
        test.extend_from_slice(&rows[split..]);
        train.extend_from_slice(&rows[..split]);
    }
    train.sort_unstable();
    test.sort_unstable();
    (train, test)
}

/// `k` (train, validation) index pairs covering `0..n` exactly once as
/// validation.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    let k = k.max(2).min(n.max(2));
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, v) in idx.into_iter().enumerate() {
        folds[i % k].push(v);
    }
    (0..k)
        .map(|f| {
            let val = folds[f].clone();
            let train: Vec<usize> = folds
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != f)
                .flat_map(|(_, v)| v.iter().copied())
                .collect();
            (train, val)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_partitions_rows() {
        let (train, test) = train_test_split(100, 0.25, 0);
        assert_eq!(train.len(), 75);
        assert_eq!(test.len(), 25);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_always_leaves_both_sides_nonempty() {
        let (train, test) = train_test_split(2, 0.01, 0);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
        let (train, test) = train_test_split(2, 0.99, 0);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
    }

    #[test]
    fn split_deterministic_per_seed() {
        assert_eq!(train_test_split(50, 0.2, 7), train_test_split(50, 0.2, 7));
        assert_ne!(
            train_test_split(50, 0.2, 7).1,
            train_test_split(50, 0.2, 8).1
        );
    }

    #[test]
    fn stratified_preserves_class_presence() {
        // 90 of class 0, 10 of class 1.
        let labels: Vec<f64> = (0..100).map(|i| if i < 90 { 0.0 } else { 1.0 }).collect();
        let (train, test) = stratified_split(&labels, 0.2, 1);
        let count = |rows: &[usize], c: f64| rows.iter().filter(|&&i| labels[i] == c).count();
        assert!(count(&test, 1.0) >= 1, "rare class must appear in test");
        assert!(count(&train, 1.0) >= 1);
        assert_eq!(train.len() + test.len(), 100);
        // Roughly 20% of each class in test.
        assert_eq!(count(&test, 0.0), 18);
        assert_eq!(count(&test, 1.0), 2);
    }

    #[test]
    fn stratified_keeps_singletons_in_train() {
        let labels = vec![0.0, 0.0, 0.0, 1.0];
        let (train, test) = stratified_split(&labels, 0.5, 0);
        assert!(train.contains(&3), "singleton class stays in train");
        assert!(!test.contains(&3));
    }

    #[test]
    fn kfold_covers_all_rows_once() {
        let folds = kfold_indices(10, 3, 0);
        assert_eq!(folds.len(), 3);
        let mut seen = Vec::new();
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 10);
            seen.extend_from_slice(val);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn kfold_clamps_k() {
        let folds = kfold_indices(4, 100, 0);
        assert_eq!(folds.len(), 4);
    }
}
