//! # arda-ml
//!
//! Machine-learning substrate for the ARDA reproduction, built from scratch.
//!
//! The paper evaluates augmentation with a "lightly auto-optimized Random
//! Forest model for classification and regression tasks along with SVM with
//! RBF kernel for classification" (§7) and ranks features with Random
//! Forests, sparse regression, lasso, logistic regression, linear SVMs,
//! Relief, mutual information and F-tests. This crate supplies every
//! learning primitive those components need:
//!
//! * [`Dataset`] + [`featurize`] — numeric feature matrices from relational
//!   tables (categoricals binarised, as in §3.1).
//! * [`DecisionTree`] / [`RandomForest`] — CART with Gini/variance splits,
//!   bootstrap bagging, parallel fitting and impurity-based importances.
//! * [`linear`] — ridge, lasso (coordinate descent), logistic regression and
//!   Pegasos linear SVM.
//! * [`svm`] — RBF-kernel SVM via SMO (one-vs-rest for multiclass).
//! * [`metrics`] — accuracy, macro-F1, MAE, RMSE, R².
//! * [`split`] — train/test and stratified splits, k-fold cross validation.
//! * [`Model`] — a uniform fit/predict interface over all of the above, used
//!   by feature-selection wrappers and the AutoML-lite comparator.

// Numeric kernels below index several arrays with one loop variable;
// iterator rewrites would obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod dataset;
pub mod featurize;
pub mod forest;
pub mod knn;
pub mod linear;
pub mod metrics;
pub mod model;
pub mod split;
pub mod svm;
pub mod tree;

pub use dataset::{Dataset, Task};
pub use featurize::{featurize, FeaturizeOptions};
pub use forest::{ForestConfig, RandomForest};
pub use knn::{nearest_neighbors, nearest_neighbors_threads};
pub use linear::{Lasso, LinearSvm, LogisticRegression, Ridge};
pub use model::{score_for_task, Model, ModelKind};
pub use split::{kfold_indices, stratified_split, train_test_split};
pub use svm::{RbfSvm, SvmConfig};
pub use tree::{DecisionTree, MaxFeatures, TreeConfig};

/// Error type for ML operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// Input shapes disagree (rows vs labels, train vs test width, ...).
    ShapeMismatch(String),
    /// The model was used before `fit`.
    NotFitted,
    /// Invalid configuration or data (e.g. empty training set).
    Invalid(String),
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            MlError::NotFitted => write!(f, "model not fitted"),
            MlError::Invalid(msg) => write!(f, "invalid: {msg}"),
        }
    }
}

impl std::error::Error for MlError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MlError>;
