//! A uniform fit/predict interface over every model in the substrate.
//!
//! ARDA is "agnostic to the ML training process" (§2): feature-selection
//! wrappers, the RIFS threshold search and the AutoML-lite comparator all
//! just need *some* estimator they can refit repeatedly. [`ModelKind`] names
//! a configuration; fitting yields a [`Model`] that predicts.

use crate::forest::{ForestConfig, RandomForest};
use crate::linear::{Lasso, LinearSvm, LogisticRegression, Ridge};
use crate::svm::{RbfSvm, SvmConfig};
use crate::tree::{DecisionTree, TreeConfig};
use crate::{metrics, Dataset, MlError, Result, Task};
use arda_linalg::Matrix;

/// An estimator configuration (un-fitted).
#[derive(Debug, Clone, PartialEq)]
pub enum ModelKind {
    /// Random forest (both tasks) — the paper's default estimator.
    RandomForest {
        /// Number of trees.
        n_trees: usize,
        /// Maximum tree depth.
        max_depth: usize,
    },
    /// Single CART tree (both tasks).
    DecisionTree {
        /// Maximum depth.
        max_depth: usize,
    },
    /// Ridge regression (regression only; classification rounds are invalid).
    Ridge {
        /// L2 penalty.
        lambda: f64,
    },
    /// Lasso (regression).
    Lasso {
        /// L1 penalty.
        alpha: f64,
    },
    /// Logistic regression (classification).
    Logistic {
        /// L2 penalty.
        lambda: f64,
    },
    /// Pegasos linear SVM (classification).
    LinearSvm {
        /// Regularisation λ.
        lambda: f64,
    },
    /// RBF-kernel SVM (classification) — the paper's alternate estimator.
    RbfSvm {
        /// Box constraint C.
        c: f64,
    },
}

impl ModelKind {
    /// The paper's default estimator: a lightly tuned random forest.
    pub fn default_forest() -> Self {
        ModelKind::RandomForest {
            n_trees: 64,
            max_depth: 12,
        }
    }

    /// True when this model kind can be fitted for `task`.
    pub fn supports(&self, task: Task) -> bool {
        match self {
            ModelKind::RandomForest { .. } | ModelKind::DecisionTree { .. } => true,
            ModelKind::Ridge { .. } | ModelKind::Lasso { .. } => !task.is_classification(),
            ModelKind::Logistic { .. } | ModelKind::LinearSvm { .. } | ModelKind::RbfSvm { .. } => {
                task.is_classification()
            }
        }
    }

    /// Fit this configuration on `(x, y)`.
    pub fn fit(&self, x: &Matrix, y: &[f64], task: Task, seed: u64) -> Result<Model> {
        if !self.supports(task) {
            return Err(MlError::Invalid(format!(
                "{self:?} does not support {task:?}"
            )));
        }
        match *self {
            ModelKind::RandomForest { n_trees, max_depth } => {
                let cfg = ForestConfig {
                    n_trees,
                    max_depth,
                    seed,
                    ..Default::default()
                };
                Ok(Model::RandomForest(RandomForest::fit_xy(x, y, task, &cfg)?))
            }
            ModelKind::DecisionTree { max_depth } => {
                let cfg = TreeConfig {
                    max_depth,
                    seed,
                    ..Default::default()
                };
                Ok(Model::DecisionTree(DecisionTree::fit_xy(x, y, task, &cfg)?))
            }
            ModelKind::Ridge { lambda } => {
                let mut m = Ridge::new(lambda);
                m.fit(x, y)?;
                Ok(Model::Ridge(m))
            }
            ModelKind::Lasso { alpha } => {
                let mut m = Lasso::new(alpha);
                m.fit(x, y)?;
                Ok(Model::Lasso(m))
            }
            ModelKind::Logistic { lambda } => {
                let mut m = LogisticRegression::new(lambda);
                m.fit(x, y, task.n_classes())?;
                Ok(Model::Logistic(m))
            }
            ModelKind::LinearSvm { lambda } => {
                let mut m = LinearSvm::new(lambda);
                m.seed = seed;
                m.fit(x, y, task.n_classes())?;
                Ok(Model::LinearSvm(m))
            }
            ModelKind::RbfSvm { c } => {
                let mut m = RbfSvm::new(SvmConfig {
                    c,
                    seed,
                    ..Default::default()
                });
                m.fit(x, y, task.n_classes())?;
                Ok(Model::RbfSvm(Box::new(m)))
            }
        }
    }
}

/// A fitted model.
#[derive(Debug, Clone)]
pub enum Model {
    /// Fitted forest.
    RandomForest(RandomForest),
    /// Fitted tree.
    DecisionTree(DecisionTree),
    /// Fitted ridge.
    Ridge(Ridge),
    /// Fitted lasso.
    Lasso(Lasso),
    /// Fitted logistic regression.
    Logistic(LogisticRegression),
    /// Fitted linear SVM.
    LinearSvm(LinearSvm),
    /// Fitted RBF SVM (boxed: it retains its training matrix).
    RbfSvm(Box<RbfSvm>),
}

impl Model {
    /// Predict rows of `x`.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        match self {
            Model::RandomForest(m) => m.predict(x),
            Model::DecisionTree(m) => m.predict(x),
            Model::Ridge(m) => m.predict(x),
            Model::Lasso(m) => m.predict(x),
            Model::Logistic(m) => m.predict(x),
            Model::LinearSvm(m) => m.predict(x),
            Model::RbfSvm(m) => m.predict(x),
        }
    }
}

/// Higher-is-better score for a task: accuracy for classification, R² for
/// regression.
pub fn score_for_task(task: Task, pred: &[f64], truth: &[f64]) -> f64 {
    match task {
        Task::Classification { .. } => metrics::accuracy(pred, truth),
        Task::Regression => metrics::r2(pred, truth),
    }
}

/// Fit `kind` on the `train` rows of `data` and score on the `test` rows.
pub fn holdout_score(
    data: &Dataset,
    kind: &ModelKind,
    train: &[usize],
    test: &[usize],
    seed: u64,
) -> Result<f64> {
    let tr = data.select_rows(train)?;
    let te = data.select_rows(test)?;
    let model = kind.fit(&tr.x, &tr.y, data.task, seed)?;
    let pred = model.predict(&te.x)?;
    Ok(score_for_task(data.task, &pred, &te.y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy_classification() -> Dataset {
        let mut rng = StdRng::seed_from_u64(0);
        let rows: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![(i % 2) as f64 * 4.0 + rng.gen_range(-0.5..0.5)])
            .collect();
        let y: Vec<f64> = (0..60).map(|i| (i % 2) as f64).collect();
        Dataset::new(
            Matrix::from_rows(&rows).unwrap(),
            y,
            vec!["f".into()],
            Task::Classification { n_classes: 2 },
        )
        .unwrap()
    }

    fn toy_regression() -> Dataset {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..50).map(|i| 2.0 * i as f64 + 1.0).collect();
        Dataset::new(
            Matrix::from_rows(&rows).unwrap(),
            y,
            vec!["f".into()],
            Task::Regression,
        )
        .unwrap()
    }

    #[test]
    fn supports_matrix() {
        let cls = Task::Classification { n_classes: 2 };
        assert!(ModelKind::default_forest().supports(cls));
        assert!(ModelKind::default_forest().supports(Task::Regression));
        assert!(!ModelKind::Ridge { lambda: 1.0 }.supports(cls));
        assert!(!ModelKind::Logistic { lambda: 1.0 }.supports(Task::Regression));
        assert!(ModelKind::RbfSvm { c: 1.0 }.supports(cls));
    }

    #[test]
    fn every_classification_model_fits_and_predicts() {
        let d = toy_classification();
        for kind in [
            ModelKind::RandomForest {
                n_trees: 8,
                max_depth: 6,
            },
            ModelKind::DecisionTree { max_depth: 6 },
            ModelKind::Logistic { lambda: 1e-3 },
            ModelKind::LinearSvm { lambda: 0.01 },
            ModelKind::RbfSvm { c: 1.0 },
        ] {
            let m = kind.fit(&d.x, &d.y, d.task, 0).unwrap();
            let pred = m.predict(&d.x).unwrap();
            let acc = metrics::accuracy(&pred, &d.y);
            assert!(acc > 0.9, "{kind:?} acc {acc}");
        }
    }

    #[test]
    fn every_regression_model_fits_and_predicts() {
        let d = toy_regression();
        for kind in [
            ModelKind::RandomForest {
                n_trees: 8,
                max_depth: 10,
            },
            ModelKind::DecisionTree { max_depth: 10 },
            ModelKind::Ridge { lambda: 1e-6 },
            ModelKind::Lasso { alpha: 0.01 },
        ] {
            let m = kind.fit(&d.x, &d.y, d.task, 0).unwrap();
            let pred = m.predict(&d.x).unwrap();
            let score = metrics::r2(&pred, &d.y);
            assert!(score > 0.9, "{kind:?} r2 {score}");
        }
    }

    #[test]
    fn unsupported_task_errors() {
        let d = toy_regression();
        assert!(ModelKind::Logistic { lambda: 1.0 }
            .fit(&d.x, &d.y, d.task, 0)
            .is_err());
    }

    #[test]
    fn holdout_score_runs() {
        let d = toy_classification();
        let (train, test) = crate::split::train_test_split(d.n_samples(), 0.3, 0);
        let s = holdout_score(
            &d,
            &ModelKind::DecisionTree { max_depth: 4 },
            &train,
            &test,
            0,
        )
        .unwrap();
        assert!(s > 0.9, "score {s}");
    }

    #[test]
    fn score_for_task_dispatch() {
        let cls = Task::Classification { n_classes: 2 };
        assert_eq!(score_for_task(cls, &[1.0, 0.0], &[1.0, 1.0]), 0.5);
        let r = score_for_task(Task::Regression, &[1.0, 2.0], &[1.0, 2.0]);
        assert!((r - 1.0).abs() < 1e-12);
    }
}
