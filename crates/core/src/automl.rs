//! AutoML-lite: a time-budgeted model + hyper-parameter search standing in
//! for the commercial AutoML systems the paper compares against (Microsoft
//! Azure AutoML and Alpine Meadow in Fig. 3 / Tables 1, 6).
//!
//! Given a featurized dataset it sweeps a fixed model zoo (forests of
//! several sizes, SVMs, linear models), evaluates each on a holdout split
//! and returns the best configuration found before the budget expires.

use crate::Result;
use arda_ml::model::holdout_score;
use arda_ml::{Dataset, ModelKind};
use std::time::{Duration, Instant};

/// Outcome of an AutoML-lite run.
#[derive(Debug, Clone)]
pub struct AutomlReport {
    /// Best holdout score found.
    pub best_score: f64,
    /// The winning configuration.
    pub best_model: ModelKind,
    /// Configurations actually evaluated before the budget ran out.
    pub evaluated: usize,
    /// Wall-clock seconds used.
    pub seconds: f64,
}

/// Candidate grid, ordered cheap → expensive so that small budgets still
/// produce an answer.
fn model_zoo(classification: bool) -> Vec<ModelKind> {
    let mut zoo = vec![
        ModelKind::DecisionTree { max_depth: 6 },
        ModelKind::DecisionTree { max_depth: 12 },
        ModelKind::RandomForest {
            n_trees: 16,
            max_depth: 8,
        },
        ModelKind::RandomForest {
            n_trees: 64,
            max_depth: 12,
        },
        ModelKind::RandomForest {
            n_trees: 128,
            max_depth: 16,
        },
    ];
    if classification {
        zoo.extend([
            ModelKind::Logistic { lambda: 1e-3 },
            ModelKind::Logistic { lambda: 1e-1 },
            ModelKind::LinearSvm { lambda: 1e-2 },
            ModelKind::RbfSvm { c: 1.0 },
            ModelKind::RbfSvm { c: 10.0 },
        ]);
    } else {
        zoo.extend([
            ModelKind::Ridge { lambda: 1e-3 },
            ModelKind::Ridge { lambda: 1.0 },
            ModelKind::Lasso { alpha: 0.01 },
            ModelKind::Lasso { alpha: 0.1 },
        ]);
    }
    zoo
}

/// Search the zoo within `budget`; always evaluates at least one model.
pub fn automl_search(data: &Dataset, budget: Duration, seed: u64) -> Result<AutomlReport> {
    let start = Instant::now();
    let (train, holdout) = if data.task.is_classification() {
        arda_ml::stratified_split(&data.y, 0.25, seed)
    } else {
        arda_ml::train_test_split(data.n_samples(), 0.25, seed)
    };

    let mut best: Option<(f64, ModelKind)> = None;
    let mut evaluated = 0usize;
    for kind in model_zoo(data.task.is_classification()) {
        if !kind.supports(data.task) {
            continue;
        }
        let score = holdout_score(data, &kind, &train, &holdout, seed)?;
        evaluated += 1;
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, kind));
        }
        if start.elapsed() >= budget {
            break;
        }
    }
    let (best_score, best_model) = best.expect("zoo is non-empty and first model always runs");
    Ok(AutomlReport {
        best_score,
        best_model,
        evaluated,
        seconds: start.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arda_linalg::Matrix;
    use arda_ml::Task;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy_cls(n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(0);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 2) as f64 * 3.0 + rng.gen_range(-0.4..0.4)])
            .collect();
        let y = (0..n).map(|i| (i % 2) as f64).collect();
        Dataset::new(
            Matrix::from_rows(&rows).unwrap(),
            y,
            vec!["f".into()],
            Task::Classification { n_classes: 2 },
        )
        .unwrap()
    }

    #[test]
    fn finds_good_model_for_separable_data() {
        let d = toy_cls(80);
        let r = automl_search(&d, Duration::from_secs(30), 0).unwrap();
        assert!(r.best_score > 0.9, "score {}", r.best_score);
        assert!(r.evaluated >= 2);
    }

    #[test]
    fn tiny_budget_still_returns() {
        let d = toy_cls(60);
        let r = automl_search(&d, Duration::from_millis(0), 0).unwrap();
        assert_eq!(r.evaluated, 1, "stops after first evaluation");
        assert!(r.best_score.is_finite());
    }

    #[test]
    fn regression_zoo_used_for_regression() {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..60).map(|i| 2.0 * i as f64).collect();
        let d = Dataset::new(
            Matrix::from_rows(&rows).unwrap(),
            y,
            vec!["f".into()],
            Task::Regression,
        )
        .unwrap();
        let r = automl_search(&d, Duration::from_secs(30), 0).unwrap();
        assert!(r.best_score > 0.9, "r2 {}", r.best_score);
    }
}
