//! # arda-core
//!
//! The end-to-end ARDA system (Figure 1 of the paper): from a base table, a
//! prediction target and a repository of candidate tables to an *augmented
//! dataset* whose extra features measurably improve a predictive model.
//!
//! Pipeline stages, in order:
//!
//! 1. **Join discovery** — [`arda_discovery::discover_joins`] (or caller-
//!    provided candidates) yields scored, ranked candidate joins.
//! 2. **Coreset construction** — sample base rows (uniform / stratified /
//!    post-join sketch; [`arda_coreset`]).
//! 3. **Join plan** — group candidates into batches: one table at a time,
//!    *budget* batches (default: as many features as coreset rows), or full
//!    materialization ([`plan`]).
//! 4. **Join execution** — hard keys hash-join, soft keys nearest /
//!    two-way-nearest with time resampling; one-to-many pre-aggregation;
//!    LEFT semantics preserve every base row ([`arda_join`]).
//! 5. **Imputation + featurization** — median/random imputation, categorical
//!    binarisation.
//! 6. **Feature selection** — RIFS by default, any [`arda_select`] method.
//! 7. **Final estimate** — refit the estimator(s) on the augmented data and
//!    report base-vs-augmented scores ([`automl`] supplies the AutoML-lite
//!    comparator of Fig. 3 / Tables 1, 6).

pub mod automl;
pub mod pipeline;
pub mod plan;

pub use automl::{automl_search, AutomlReport};
pub use pipeline::{Arda, ArdaConfig, AugmentationReport, SelectedColumn};
pub use plan::{plan_batches, JoinPlan};

use arda_join::JoinError;
use arda_ml::MlError;
use arda_select::SelectError;
use arda_table::TableError;

/// Error type spanning the whole pipeline.
#[derive(Debug)]
pub enum ArdaError {
    /// Table-level failure.
    Table(TableError),
    /// Join failure.
    Join(JoinError),
    /// Model failure.
    Ml(MlError),
    /// Selection failure.
    Select(SelectError),
    /// Invalid configuration / usage.
    Invalid(String),
}

impl std::fmt::Display for ArdaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArdaError::Table(e) => write!(f, "table: {e}"),
            ArdaError::Join(e) => write!(f, "join: {e}"),
            ArdaError::Ml(e) => write!(f, "ml: {e}"),
            ArdaError::Select(e) => write!(f, "select: {e}"),
            ArdaError::Invalid(msg) => write!(f, "invalid: {msg}"),
        }
    }
}

impl std::error::Error for ArdaError {}

impl From<TableError> for ArdaError {
    fn from(e: TableError) -> Self {
        ArdaError::Table(e)
    }
}
impl From<JoinError> for ArdaError {
    fn from(e: JoinError) -> Self {
        ArdaError::Join(e)
    }
}
impl From<MlError> for ArdaError {
    fn from(e: MlError) -> Self {
        ArdaError::Ml(e)
    }
}
impl From<SelectError> for ArdaError {
    fn from(e: SelectError) -> Self {
        ArdaError::Select(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ArdaError>;
