//! The ARDA augmentation workflow (§3): coreset → join plan → join
//! execution → imputation → featurization → feature selection → final
//! estimate.

use crate::plan::{plan_batches, JoinPlan};
use crate::{ArdaError, Result};
use arda_coreset::{row_coreset, CoresetSpec};
use arda_discovery::{discover_joins, CandidateJoin, DiscoveryConfig, KeyKind, Repository};
use arda_join::{
    execute_join_threads, impute::impute, stats::join_stats, JoinKind, JoinSpec, SoftMethod,
};
use arda_ml::model::holdout_score;
use arda_ml::{featurize, Dataset, FeaturizeOptions, ModelKind};
use arda_select::{
    run_selector, tuple_ratio_filter, SelectionContext, SelectorKind, TupleRatioDecision,
};
use arda_table::{DataType, Table};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Configuration of an ARDA run.
#[derive(Debug, Clone)]
pub struct ArdaConfig {
    /// Coreset construction (method, size, seed).
    pub coreset: CoresetSpec,
    /// Table-grouping strategy (default: budget join).
    pub join_plan: JoinPlan,
    /// Soft-key strategy (default: two-way nearest neighbour, the paper's
    /// best performer in Fig. 5).
    pub soft_method: SoftMethod,
    /// Feature-selection method (default: RIFS).
    pub selector: SelectorKind,
    /// Optional Tuple-Ratio prefilter threshold τ (Table 4); `None` = off.
    pub tr_threshold: Option<f64>,
    /// Featurization options.
    pub featurize: FeaturizeOptions,
    /// Treat an integer target as class labels.
    pub force_classification: bool,
    /// Discovery settings used by [`Arda::run`].
    pub discovery: DiscoveryConfig,
    /// Stop processing batches once the selector's holdout score reaches
    /// this value.
    pub stop_at_score: Option<f64>,
    /// Master seed.
    pub seed: u64,
}

impl Default for ArdaConfig {
    fn default() -> Self {
        ArdaConfig {
            coreset: CoresetSpec::default(),
            join_plan: JoinPlan::default(),
            soft_method: SoftMethod::TwoWayNearest,
            selector: SelectorKind::Rifs(arda_select::RifsConfig::default()),
            tr_threshold: None,
            featurize: FeaturizeOptions::default(),
            force_classification: false,
            discovery: DiscoveryConfig::default(),
            stop_at_score: None,
            seed: 0,
        }
    }
}

/// A foreign column that survived feature selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectedColumn {
    /// Source repository table.
    pub table: String,
    /// Column name in the augmented output.
    pub column: String,
}

/// Outcome of an augmentation run.
#[derive(Debug, Clone)]
pub struct AugmentationReport {
    /// The augmented table: the full base coreset plus selected foreign
    /// columns ("containing all of the user's original dataset as well as
    /// additional features", §1).
    pub augmented: Table,
    /// Foreign columns kept, with provenance.
    pub selected: Vec<SelectedColumn>,
    /// Best holdout score of the estimator on the *base* features only.
    pub base_score: f64,
    /// Best holdout score on the augmented features.
    pub augmented_score: f64,
    /// Estimator that achieved `augmented_score`.
    pub best_estimator: ModelKind,
    /// Candidate joins actually executed.
    pub joins_executed: usize,
    /// Candidates eliminated by the Tuple-Ratio prefilter.
    pub tr_eliminated: usize,
    /// Total wall-clock seconds.
    pub seconds: f64,
}

impl AugmentationReport {
    /// Percent improvement of the augmented score over the base score
    /// (the y-axis of Fig. 3 / Fig. 4).
    pub fn improvement_pct(&self) -> f64 {
        if self.base_score.abs() < 1e-12 {
            return 0.0;
        }
        (self.augmented_score - self.base_score) / self.base_score.abs() * 100.0
    }
}

/// The ARDA system.
#[derive(Debug, Clone, Default)]
pub struct Arda {
    /// Run configuration.
    pub config: ArdaConfig,
}

impl Arda {
    /// Build with a configuration.
    pub fn new(config: ArdaConfig) -> Self {
        Arda { config }
    }

    /// Full pipeline: discover candidate joins in `repo`, then augment.
    pub fn run(&self, base: &Table, repo: &Repository, target: &str) -> Result<AugmentationReport> {
        let candidates = discover_joins(base, repo, &self.config.discovery)?;
        self.augment(base, repo, &candidates, target)
    }

    /// Augment `base` using a caller-provided (discovery-system) candidate
    /// list.
    pub fn augment(
        &self,
        base: &Table,
        repo: &Repository,
        candidates: &[CandidateJoin],
        target: &str,
    ) -> Result<AugmentationReport> {
        let start = Instant::now();
        let cfg = &self.config;
        base.column(target)?;

        // ---- Coreset construction -------------------------------------
        let labels: Option<Vec<f64>> = {
            let tcol = base.column(target)?;
            let is_cls = cfg.force_classification
                || !tcol.dtype().is_numeric()
                || tcol.dtype() == DataType::Bool;
            if is_cls {
                // Map labels to ids for stratification.
                let mut ids: HashMap<String, usize> = HashMap::new();
                Some(
                    tcol.iter()
                        .map(|v| {
                            let key = v.to_string();
                            let next = ids.len();
                            *ids.entry(key).or_insert(next) as f64
                        })
                        .collect(),
                )
            } else {
                None
            }
        };
        let coreset_idx = row_coreset(base.n_rows(), labels.as_deref(), &cfg.coreset);
        let mut kept = base.take(&coreset_idx)?;
        let base_columns: HashSet<String> = kept
            .columns()
            .iter()
            .map(|c| c.name().to_string())
            .collect();

        // ---- Tuple-Ratio prefilter (optional) --------------------------
        // Bounds-check against the manifest without touching tables — on a
        // sharded repository this must not force a load.
        for c in candidates {
            if c.table_index >= repo.len() {
                return Err(ArdaError::Invalid(format!(
                    "candidate references missing table {}",
                    c.table_index
                )));
            }
        }
        let mut active: Vec<CandidateJoin> = Vec::with_capacity(candidates.len());
        let mut tr_eliminated = 0usize;
        if let Some(tau) = cfg.tr_threshold {
            // Per-candidate stats are independent, so the prefilter fans
            // out on the work budget; on a sharded repository each worker
            // streams its candidate's shard in concurrently (instead of a
            // sequential load-parse-evict walk on the critical path). The
            // fold below runs in candidate order, so `active`, the
            // eliminated count and the earliest error are identical to
            // the sequential scan.
            let verdicts: Vec<Result<TupleRatioDecision>> =
                arda_par::par_map(candidates, 0, |_, c| {
                    let foreign = repo.table(c.table_index)?;
                    let stats = join_stats(
                        &kept,
                        &foreign,
                        &[c.base_key.as_str()],
                        &[c.foreign_key.as_str()],
                    )?;
                    Ok(tuple_ratio_filter(
                        kept.n_rows(),
                        stats.foreign_distinct,
                        tau,
                    ))
                });
            for (c, verdict) in candidates.iter().zip(verdicts) {
                if verdict? == TupleRatioDecision::Eliminate {
                    tr_eliminated += 1;
                } else {
                    active.push(c.clone());
                }
            }
        } else {
            active.extend(candidates.iter().cloned());
        }

        // ---- Base-only reference score ---------------------------------
        let base_ds = featurize(&kept, target, cfg.force_classification, &cfg.featurize)?;
        let (base_score, _) = best_estimate(&base_ds, cfg.seed)?;

        // ---- Join plan + batched execution ------------------------------
        let batches = plan_batches(&active, repo, cfg.join_plan, kept.n_rows());
        let mut provenance: HashMap<String, String> = HashMap::new();
        let mut joins_executed = 0usize;

        for (batch_no, batch) in batches.iter().enumerate() {
            // Every candidate in a batch joins against the same base
            // snapshot on a base-table key, so the joins are independent:
            // execute them concurrently, each yielding only its new
            // columns, then fold the column blocks back in candidate order.
            // Values are identical to the old sequential chaining; column
            // names too, except when the same foreign column name collides
            // twice in one batch (rename then happens at fold time with the
            // table-name prefix rather than hstack's numeric salt). Provenance
            // tracking below uses the folded names, so attribution stays
            // consistent either way. Each candidate's join runs with its
            // split of the shared `arda-par` work budget (installed by
            // `par_map`): a multi-candidate batch spreads the budget across
            // candidates, a lone candidate keeps all of it, and the permit
            // pool guarantees the nested scans never oversubscribe.
            let snapshot = &kept;
            let extra_tables: Vec<Result<Table>> = arda_par::par_map(batch, 0, |_, cand| {
                // On a sharded repository this is where the foreign shard
                // is streamed in — concurrently per candidate, under the
                // batch's split of the work budget.
                let foreign = repo.table(cand.table_index)?;
                let kind = join_kind_for(snapshot, cand, cfg.soft_method);
                let spec = JoinSpec {
                    base_keys: vec![cand.base_key.clone()],
                    foreign_keys: vec![cand.foreign_key.clone()],
                    kind,
                };
                let before: HashSet<&str> = snapshot.columns().iter().map(|c| c.name()).collect();
                let joined = execute_join_threads(snapshot, &foreign, &spec, cfg.seed, 0)?;
                let mut extras = Table::empty(cand.table_name.clone());
                for col in joined.columns() {
                    if !before.contains(col.name()) {
                        extras.add_column(col.clone()).map_err(ArdaError::from)?;
                    }
                }
                Ok(extras)
            });

            let mut joined = kept.clone();
            for (cand, extras) in batch.iter().zip(extra_tables) {
                let before: HashSet<String> = joined
                    .columns()
                    .iter()
                    .map(|c| c.name().to_string())
                    .collect();
                joined = joined.hstack(&extras?)?;
                joins_executed += 1;
                for col in joined.columns() {
                    if !before.contains(col.name()) {
                        provenance.insert(col.name().to_string(), cand.table_name.clone());
                    }
                }
            }

            // Impute the LEFT-join nulls, featurize, select.
            let (imputed, _) = impute(&joined, cfg.seed.wrapping_add(batch_no as u64))?;
            let ds = featurize(&imputed, target, cfg.force_classification, &cfg.featurize)?;
            let ctx = SelectionContext::standard(&ds, cfg.seed);
            let result = run_selector(&ds, &cfg.selector, &ctx)?;

            // Map selected features back to source columns; base columns
            // are always retained.
            let mut keep_cols: Vec<String> = Vec::new();
            let mut seen: HashSet<String> = HashSet::new();
            for col in imputed.columns() {
                if base_columns.contains(col.name()) {
                    keep_cols.push(col.name().to_string());
                    seen.insert(col.name().to_string());
                }
            }
            for &f in &result.selected {
                let feature_name = &ds.feature_names[f];
                let source = feature_name.split('=').next().unwrap_or(feature_name);
                if !base_columns.contains(source) && !seen.contains(source) {
                    keep_cols.push(source.to_string());
                    seen.insert(source.to_string());
                }
            }
            let keep_refs: Vec<&str> = keep_cols.iter().map(String::as_str).collect();
            kept = imputed.select(&keep_refs)?;

            if let Some(stop) = cfg.stop_at_score {
                if result.holdout_score >= stop {
                    break;
                }
            }
        }

        // ---- Final estimate ---------------------------------------------
        let augmented_ds = featurize(&kept, target, cfg.force_classification, &cfg.featurize)?;
        let (augmented_score, best_estimator) = best_estimate(&augmented_ds, cfg.seed)?;

        let selected: Vec<SelectedColumn> = kept
            .columns()
            .iter()
            .filter(|c| !base_columns.contains(c.name()))
            .map(|c| SelectedColumn {
                table: provenance.get(c.name()).cloned().unwrap_or_default(),
                column: c.name().to_string(),
            })
            .collect();

        Ok(AugmentationReport {
            augmented: kept,
            selected,
            base_score,
            augmented_score,
            best_estimator,
            joins_executed,
            tr_eliminated,
            seconds: start.elapsed().as_secs_f64(),
        })
    }
}

/// Pick the join algorithm for a candidate: soft keys use the configured
/// soft method with time resampling; hard timestamp keys get resampling too
/// (a no-op when granularities already agree).
fn join_kind_for(base: &Table, cand: &CandidateJoin, soft: SoftMethod) -> JoinKind {
    let base_is_ts = base
        .column(&cand.base_key)
        .map(|c| c.dtype() == DataType::Timestamp)
        .unwrap_or(false);
    match cand.kind {
        KeyKind::Soft => JoinKind::SoftTimeResampled(soft),
        KeyKind::Hard if base_is_ts => JoinKind::HardTimeResampled,
        KeyKind::Hard => JoinKind::Hard,
    }
}

/// Paper §7 evaluation protocol: random forest for both tasks, plus an
/// RBF-kernel SVM for classification, "such that the best score achieved
/// was reported".
fn best_estimate(data: &Dataset, seed: u64) -> Result<(f64, ModelKind)> {
    let mut estimators = vec![ModelKind::RandomForest {
        n_trees: 64,
        max_depth: 12,
    }];
    if data.task.is_classification() {
        estimators.push(ModelKind::RbfSvm { c: 1.0 });
    }
    let (train, holdout) = if data.task.is_classification() {
        arda_ml::stratified_split(&data.y, 0.25, seed)
    } else {
        arda_ml::train_test_split(data.n_samples(), 0.25, seed)
    };
    let mut best: Option<(f64, ModelKind)> = None;
    for kind in estimators {
        let score = holdout_score(data, &kind, &train, &holdout, seed)?;
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, kind));
        }
    }
    Ok(best.expect("estimator list non-empty"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arda_synth::{poverty, school, taxi, ScenarioConfig};

    fn fast_config(seed: u64) -> ArdaConfig {
        ArdaConfig {
            selector: SelectorKind::Rifs(arda_select::RifsConfig {
                repeats: 4,
                rf_trees: 12,
                ..Default::default()
            }),
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn taxi_augmentation_improves_over_base() {
        let sc = taxi(&ScenarioConfig {
            n_rows: 150,
            n_decoys: 4,
            seed: 0,
        });
        let repo = Repository::from_tables(sc.repository.clone());
        let arda = Arda::new(fast_config(0));
        let report = arda.run(&sc.base, &repo, &sc.target).unwrap();
        assert!(
            report.augmented_score > report.base_score,
            "augmented {} vs base {}",
            report.augmented_score,
            report.base_score
        );
        assert!(report.joins_executed > 0);
        // Signal tables contribute at least one selected column.
        let tables: HashSet<&str> = report.selected.iter().map(|s| s.table.as_str()).collect();
        assert!(
            tables.contains("weather") || tables.contains("events"),
            "selected from signal tables: {:?}",
            report.selected
        );
    }

    #[test]
    fn school_classification_pipeline() {
        let sc = school(
            &ScenarioConfig {
                n_rows: 150,
                n_decoys: 4,
                seed: 1,
            },
            false,
        );
        let repo = Repository::from_tables(sc.repository.clone());
        let arda = Arda::new(fast_config(1));
        let report = arda.run(&sc.base, &repo, &sc.target).unwrap();
        assert!(report.augmented_score >= report.base_score - 0.05);
        assert!(report.augmented.n_rows() <= 150);
        assert!(
            report.augmented.column("result").is_ok(),
            "target column retained"
        );
    }

    #[test]
    fn tr_prefilter_eliminates_tables() {
        let sc = poverty(&ScenarioConfig {
            n_rows: 120,
            n_decoys: 3,
            seed: 2,
        });
        let repo = Repository::from_tables(sc.repository.clone());
        let mut cfg = fast_config(2);
        // county key domain == base rows → ratio 1; τ=0.5 eliminates all.
        cfg.tr_threshold = Some(0.5);
        let arda = Arda::new(cfg);
        let report = arda.run(&sc.base, &repo, &sc.target).unwrap();
        assert!(report.tr_eliminated > 0);
    }

    #[test]
    fn base_rows_never_fan_out() {
        let sc = taxi(&ScenarioConfig {
            n_rows: 100,
            n_decoys: 2,
            seed: 3,
        });
        let repo = Repository::from_tables(sc.repository.clone());
        let arda = Arda::new(fast_config(3));
        let report = arda.run(&sc.base, &repo, &sc.target).unwrap();
        assert_eq!(
            report.augmented.n_rows(),
            100,
            "coreset keeps all 100 rows (≤ auto cap)"
        );
    }

    #[test]
    fn table_plan_runs() {
        let sc = poverty(&ScenarioConfig {
            n_rows: 100,
            n_decoys: 2,
            seed: 4,
        });
        let repo = Repository::from_tables(sc.repository.clone());
        let mut cfg = fast_config(4);
        cfg.join_plan = JoinPlan::Table;
        cfg.selector = SelectorKind::Ranking(arda_select::RankingMethod::RandomForest);
        let report = Arda::new(cfg).run(&sc.base, &repo, &sc.target).unwrap();
        assert!(report.joins_executed > 0);
    }

    #[test]
    fn improvement_pct_math() {
        let sc = taxi(&ScenarioConfig {
            n_rows: 80,
            n_decoys: 1,
            seed: 5,
        });
        let repo = Repository::from_tables(sc.repository.clone());
        let report = Arda::new(fast_config(5))
            .run(&sc.base, &repo, &sc.target)
            .unwrap();
        let pct = report.improvement_pct();
        let manual = (report.augmented_score - report.base_score) / report.base_score.abs() * 100.0;
        assert!((pct - manual).abs() < 1e-9);
    }

    #[test]
    fn missing_target_errors() {
        let sc = taxi(&ScenarioConfig {
            n_rows: 50,
            n_decoys: 1,
            seed: 6,
        });
        let repo = Repository::from_tables(sc.repository.clone());
        assert!(Arda::default().run(&sc.base, &repo, "nope").is_err());
    }

    /// PR 5 acceptance: a Timestamp-bearing repository survives
    /// `save_dir` → `from_dir` → pipeline with dtypes and values
    /// bit-identical to the in-memory original — soft time keys and all —
    /// and re-indexing an unchanged directory is a pure catalog hit.
    #[test]
    fn pipeline_identical_through_binary_store_round_trip() {
        let sc = taxi(&ScenarioConfig {
            n_rows: 120,
            n_decoys: 3,
            seed: 7,
        });
        // `from_dir` orders shards by file name, so build the eager
        // reference in the same order (names are unique and `.arda`-safe).
        let mut tables = sc.repository.clone();
        tables.sort_by_key(|t| t.name().to_string());
        assert!(
            tables.iter().any(|t| t
                .schema()
                .fields()
                .iter()
                .any(|f| f.dtype == arda_table::DataType::Timestamp)),
            "scenario must exercise the Timestamp round-trip"
        );
        let eager = Repository::from_tables(tables.clone());

        let dir = std::env::temp_dir().join(format!("arda_core_store_rt_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        eager.save_dir(&dir).unwrap();

        let sharded = Repository::from_dir(&dir).unwrap();
        assert_eq!(sharded.len(), eager.len());
        for (i, t) in tables.iter().enumerate() {
            let reloaded = sharded.table(i).unwrap();
            assert_eq!(
                *reloaded,
                *t,
                "shard {i} ({}) reloads bit-identically, dtypes included",
                t.name()
            );
        }

        // The pipeline over the reloaded store is bit-identical to the
        // in-memory run: same discovery, same joins, same scores.
        let a = Arda::new(fast_config(7))
            .run(&sc.base, &eager, &sc.target)
            .unwrap();
        let b = Arda::new(fast_config(7))
            .run(&sc.base, &sharded, &sc.target)
            .unwrap();
        assert_eq!(a.base_score.to_bits(), b.base_score.to_bits());
        assert_eq!(a.augmented_score.to_bits(), b.augmented_score.to_bits());
        assert_eq!(a.joins_executed, b.joins_executed);
        let cols = |r: &AugmentationReport| -> Vec<String> {
            r.selected
                .iter()
                .map(|s| format!("{}.{}", s.table, s.column))
                .collect()
        };
        assert_eq!(cols(&a), cols(&b));
        assert_eq!(a.augmented, b.augmented);

        // Warm re-index: zero per-shard header reads, pure catalog hit.
        let warm = Repository::from_dir(&dir).unwrap();
        assert!(warm.catalog_hit());
        assert_eq!(warm.header_scans(), 0);

        std::fs::remove_dir_all(&dir).ok();
    }
}
