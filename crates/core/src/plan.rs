//! Join plans: table grouping strategies (ARDA §4 "Table grouping").
//!
//! * **Table-join** — one candidate at a time, in priority order. Cheap per
//!   step but blind to co-predictors split across tables.
//! * **Budget-join** (default) — as many candidates per batch as fit a
//!   feature budget (default: the coreset row count). Trades co-predictor
//!   discovery against the noise the selector must tolerate.
//! * **Full materialization** — everything in one batch.

use arda_discovery::{CandidateJoin, Repository};

/// Table-grouping strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinPlan {
    /// One table per batch, priority order.
    Table,
    /// Batches capped at `budget` features (`None` → coreset size).
    Budget {
        /// Maximum features per batch (`None` = coreset rows).
        budget: Option<usize>,
    },
    /// Single batch with every candidate.
    FullMaterialization,
}

impl Default for JoinPlan {
    fn default() -> Self {
        JoinPlan::Budget { budget: None }
    }
}

/// Number of value (non-key) columns a candidate would contribute. Widths
/// come from the repository manifest, so planning over a directory-sharded
/// repository never forces a shard load.
fn candidate_width(c: &CandidateJoin, repo: &Repository) -> usize {
    repo.n_cols(c.table_index)
        .map(|n| n.saturating_sub(1))
        .unwrap_or(0)
}

/// Group ranked candidates into executable batches.
///
/// `coreset_rows` supplies the default budget ("By default, budget equals
/// coreset size"). A single table wider than the whole budget still becomes
/// its own batch ("in this case ARDA ships an entire table to a feature
/// selection pipeline").
pub fn plan_batches(
    candidates: &[CandidateJoin],
    repo: &Repository,
    plan: JoinPlan,
    coreset_rows: usize,
) -> Vec<Vec<CandidateJoin>> {
    match plan {
        JoinPlan::Table => candidates.iter().map(|c| vec![c.clone()]).collect(),
        JoinPlan::FullMaterialization => {
            if candidates.is_empty() {
                Vec::new()
            } else {
                vec![candidates.to_vec()]
            }
        }
        JoinPlan::Budget { budget } => {
            let budget = budget.unwrap_or(coreset_rows).max(1);
            let mut batches: Vec<Vec<CandidateJoin>> = Vec::new();
            let mut current: Vec<CandidateJoin> = Vec::new();
            let mut used = 0usize;
            for c in candidates {
                let w = candidate_width(c, repo).max(1);
                if w > budget && current.is_empty() {
                    // Oversized table ships alone.
                    batches.push(vec![c.clone()]);
                    continue;
                }
                if used + w > budget && !current.is_empty() {
                    batches.push(std::mem::take(&mut current));
                    used = 0;
                }
                if w > budget {
                    batches.push(vec![c.clone()]);
                } else {
                    used += w;
                    current.push(c.clone());
                }
            }
            if !current.is_empty() {
                batches.push(current);
            }
            batches
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arda_discovery::KeyKind;
    use arda_table::Column;

    fn table(name: &str, cols: usize) -> arda_table::Table {
        let mut v = vec![Column::from_i64("k", vec![1, 2])];
        for c in 0..cols {
            v.push(Column::from_f64(format!("v{c}"), vec![0.0, 1.0]));
        }
        arda_table::Table::new(name, v).unwrap()
    }

    fn candidate(i: usize) -> CandidateJoin {
        CandidateJoin {
            table_index: i,
            table_name: format!("t{i}"),
            base_key: "k".into(),
            foreign_key: "k".into(),
            kind: KeyKind::Hard,
            score: 1.0 - i as f64 * 0.1,
        }
    }

    #[test]
    fn table_plan_one_per_batch() {
        let repo = Repository::from_tables(vec![table("t0", 2), table("t1", 3)]);
        let cands = vec![candidate(0), candidate(1)];
        let b = plan_batches(&cands, &repo, JoinPlan::Table, 100);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].len(), 1);
    }

    #[test]
    fn full_materialization_single_batch() {
        let repo = Repository::from_tables(vec![table("t0", 2), table("t1", 3)]);
        let cands = vec![candidate(0), candidate(1)];
        let b = plan_batches(&cands, &repo, JoinPlan::FullMaterialization, 100);
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].len(), 2);
        assert!(plan_batches(&[], &repo, JoinPlan::FullMaterialization, 100).is_empty());
    }

    #[test]
    fn budget_plan_respects_budget() {
        // Widths: 2, 3, 2, 3 — budget 5 → [2+3], [2+3].
        let repo = Repository::from_tables(vec![
            table("t0", 2),
            table("t1", 3),
            table("t2", 2),
            table("t3", 3),
        ]);
        let cands: Vec<CandidateJoin> = (0..4).map(candidate).collect();
        let b = plan_batches(&cands, &repo, JoinPlan::Budget { budget: Some(5) }, 100);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].len(), 2);
        assert_eq!(b[1].len(), 2);
    }

    #[test]
    fn oversized_table_ships_alone() {
        let repo = Repository::from_tables(vec![table("wide", 50), table("t1", 2)]);
        let cands = vec![candidate(0), candidate(1)];
        let b = plan_batches(&cands, &repo, JoinPlan::Budget { budget: Some(10) }, 100);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].len(), 1, "wide table alone");
        assert_eq!(b[0][0].table_name, "t0");
    }

    #[test]
    fn default_budget_is_coreset_rows() {
        let repo = Repository::from_tables(vec![table("t0", 4), table("t1", 4)]);
        let cands = vec![candidate(0), candidate(1)];
        // Coreset of 4 rows → each 4-wide table fills one batch.
        let b = plan_batches(&cands, &repo, JoinPlan::Budget { budget: None }, 4);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn default_plan_is_budget() {
        assert_eq!(JoinPlan::default(), JoinPlan::Budget { budget: None });
    }
}
