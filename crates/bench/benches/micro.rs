//! Micro-benchmarks of the performance-critical primitives: hard/soft join
//! throughput, group-by pre-aggregation, OSNAP sketching, the ℓ2,1 IRLS
//! solver, random-forest fitting and RIFS fractions.
//!
//! Runs under `cargo bench -p arda-bench` with the in-repo timing harness
//! (`harness = false`; the build is offline, so no criterion). For the
//! thread-count sweep that records the perf trajectory, see the
//! `bench_pr1` binary.

use arda_bench::timing::{print_measurements, time_op, Measurement};
use arda_bench::{bench_rifs, Scale};
use arda_coreset::sketch_xy;
use arda_join::{execute_join, JoinSpec, SoftMethod};
use arda_linalg::{stats::standardize_columns, Matrix};
use arda_ml::{Dataset, ForestConfig, RandomForest, Task};
use arda_select::rifs_fractions;
use arda_select::sparse_regression::{l21_solve, target_matrix, L21Config};
use arda_synth::{taxi, ScenarioConfig};
use arda_table::{Column, GroupBy, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const WINDOW_SECS: f64 = 0.3;

fn tables(n_base: usize, n_foreign: usize) -> (Table, Table) {
    let mut rng = StdRng::seed_from_u64(0);
    let base = Table::new(
        "base",
        vec![
            Column::from_i64("k", (0..n_base).map(|i| (i % 500) as i64).collect()),
            Column::from_f64("v", (0..n_base).map(|_| rng.gen()).collect()),
        ],
    )
    .unwrap();
    let foreign = Table::new(
        "foreign",
        vec![
            Column::from_i64("k", (0..n_foreign).map(|i| i as i64).collect()),
            Column::from_f64("a", (0..n_foreign).map(|_| rng.gen()).collect()),
            Column::from_f64("b", (0..n_foreign).map(|_| rng.gen()).collect()),
        ],
    )
    .unwrap();
    (base, foreign)
}

fn bench_joins(out: &mut Vec<Measurement>) {
    let (base, foreign) = tables(2_000, 500);
    out.push(time_op("hard_join_2k_x_500", WINDOW_SECS, || {
        black_box(execute_join(&base, &foreign, &JoinSpec::hard("k", "k"), 0).unwrap());
    }));
    let spec = JoinSpec::soft("k", "k", SoftMethod::TwoWayNearest);
    out.push(time_op("soft_2way_join_2k_x_500", WINDOW_SECS, || {
        black_box(execute_join(&base, &foreign, &spec, 0).unwrap());
    }));
}

fn bench_groupby(out: &mut Vec<Measurement>) {
    let mut rng = StdRng::seed_from_u64(1);
    let t = Table::new(
        "t",
        vec![
            Column::from_i64("k", (0..5_000).map(|i| (i % 200) as i64).collect()),
            Column::from_f64("v", (0..5_000).map(|_| rng.gen()).collect()),
        ],
    )
    .unwrap();
    out.push(time_op(
        "groupby_aggregate_5k_rows_200_groups",
        WINDOW_SECS,
        || {
            black_box(
                GroupBy::new(&t, &["k"])
                    .unwrap()
                    .aggregate_default()
                    .unwrap(),
            );
        },
    ));
}

fn bench_sketch(out: &mut Vec<Measurement>) {
    let mut rng = StdRng::seed_from_u64(2);
    let x = Matrix::from_vec(
        2_000,
        50,
        (0..2_000 * 50).map(|_| rng.gen::<f64>()).collect(),
    )
    .unwrap();
    let y: Vec<f64> = (0..2_000).map(|_| rng.gen()).collect();
    out.push(time_op("osnap_sketch_2000x50_to_200", WINDOW_SECS, || {
        black_box(sketch_xy(&x, &y, false, 200, 0));
    }));
}

fn bench_l21(out: &mut Vec<Measurement>) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut x = Matrix::from_vec(
        400,
        60,
        (0..400 * 60).map(|_| rng.gen::<f64>() - 0.5).collect(),
    )
    .unwrap();
    standardize_columns(&mut x);
    let y: Vec<f64> = (0..400).map(|i| x.get(i, 0) * 3.0 - x.get(i, 1)).collect();
    let ym = target_matrix(&y, Task::Regression);
    let cfg = L21Config {
        max_iter: 10,
        ..Default::default()
    };
    out.push(time_op("l21_irls_400x60_10iter", WINDOW_SECS, || {
        black_box(l21_solve(&x, &ym, &cfg).unwrap());
    }));
}

fn bench_forest(out: &mut Vec<Measurement>) {
    let mut rng = StdRng::seed_from_u64(4);
    let rows: Vec<Vec<f64>> = (0..500)
        .map(|i| {
            let cls = (i % 2) as f64;
            (0..20)
                .map(|f| {
                    if f == 0 {
                        cls * 2.0 + rng.gen::<f64>()
                    } else {
                        rng.gen()
                    }
                })
                .collect()
        })
        .collect();
    let x = Matrix::from_rows(&rows).unwrap();
    let y: Vec<f64> = (0..500).map(|i| (i % 2) as f64).collect();
    let cfg = ForestConfig {
        n_trees: 32,
        max_depth: 10,
        ..Default::default()
    };
    out.push(time_op(
        "random_forest_fit_500x20_32trees",
        WINDOW_SECS,
        || {
            black_box(
                RandomForest::fit_xy(&x, &y, Task::Classification { n_classes: 2 }, &cfg).unwrap(),
            );
        },
    ));
}

fn bench_rifs_fractions(out: &mut Vec<Measurement>) {
    let mut rng = StdRng::seed_from_u64(5);
    let rows: Vec<Vec<f64>> = (0..200)
        .map(|i| {
            let cls = (i % 2) as f64;
            (0..15)
                .map(|f| {
                    if f < 2 {
                        cls * 2.0 + rng.gen::<f64>()
                    } else {
                        rng.gen()
                    }
                })
                .collect()
        })
        .collect();
    let ds = Dataset::new(
        Matrix::from_rows(&rows).unwrap(),
        (0..200).map(|i| (i % 2) as f64).collect(),
        (0..15).map(|i| format!("f{i}")).collect(),
        Task::Classification { n_classes: 2 },
    )
    .unwrap();
    let mut cfg = bench_rifs(Scale::Quick);
    cfg.repeats = 3;
    out.push(time_op("rifs_fractions_200x15_3rep", WINDOW_SECS, || {
        black_box(rifs_fractions(&ds, &cfg, 0).unwrap());
    }));
}

fn bench_pipeline(out: &mut Vec<Measurement>) {
    let sc = taxi(&ScenarioConfig {
        n_rows: 120,
        n_decoys: 3,
        seed: 6,
    });
    let repo = arda_discovery::Repository::from_tables(sc.repository.clone());
    let config = arda_core::ArdaConfig {
        selector: arda_select::SelectorKind::Ranking(arda_select::RankingMethod::RandomForest),
        ..Default::default()
    };
    out.push(time_op(
        "pipeline_taxi_120rows_5tables_rf_selector",
        WINDOW_SECS,
        || {
            black_box(
                arda_core::Arda::new(config.clone())
                    .run(&sc.base, &repo, &sc.target)
                    .unwrap(),
            );
        },
    ));
}

fn main() {
    let mut results = Vec::new();
    bench_joins(&mut results);
    bench_groupby(&mut results);
    bench_sketch(&mut results);
    bench_l21(&mut results);
    bench_forest(&mut results);
    bench_rifs_fractions(&mut results);
    bench_pipeline(&mut results);
    print_measurements(
        &format!("micro benchmarks ({} threads)", arda_par::default_threads()),
        &results,
    );
}
