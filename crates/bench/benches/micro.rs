//! Criterion micro-benchmarks of the performance-critical primitives:
//! hard/soft join throughput, group-by pre-aggregation, OSNAP sketching,
//! the ℓ2,1 IRLS solver, random-forest fitting and RIFS fractions.

use arda_bench::bench_rifs;
use arda_coreset::sketch_xy;
use arda_join::{execute_join, JoinSpec, SoftMethod};
use arda_linalg::{stats::standardize_columns, Matrix};
use arda_ml::{Dataset, ForestConfig, RandomForest, Task};
use arda_select::rifs_fractions;
use arda_select::sparse_regression::{l21_solve, target_matrix, L21Config};
use arda_synth::{taxi, ScenarioConfig};
use arda_table::{Column, GroupBy, Table};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn tables(n_base: usize, n_foreign: usize) -> (Table, Table) {
    let mut rng = StdRng::seed_from_u64(0);
    let base = Table::new(
        "base",
        vec![
            Column::from_i64("k", (0..n_base).map(|i| (i % 500) as i64).collect()),
            Column::from_f64("v", (0..n_base).map(|_| rng.gen()).collect()),
        ],
    )
    .unwrap();
    let foreign = Table::new(
        "foreign",
        vec![
            Column::from_i64("k", (0..n_foreign).map(|i| i as i64).collect()),
            Column::from_f64("a", (0..n_foreign).map(|_| rng.gen()).collect()),
            Column::from_f64("b", (0..n_foreign).map(|_| rng.gen()).collect()),
        ],
    )
    .unwrap();
    (base, foreign)
}

fn bench_joins(c: &mut Criterion) {
    let (base, foreign) = tables(2_000, 500);
    c.bench_function("hard_join_2k_x_500", |b| {
        b.iter(|| {
            black_box(
                execute_join(&base, &foreign, &JoinSpec::hard("k", "k"), 0).unwrap(),
            )
        })
    });
    c.bench_function("soft_2way_join_2k_x_500", |b| {
        let spec = JoinSpec::soft("k", "k", SoftMethod::TwoWayNearest);
        b.iter(|| black_box(execute_join(&base, &foreign, &spec, 0).unwrap()))
    });
}

fn bench_groupby(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let t = Table::new(
        "t",
        vec![
            Column::from_i64("k", (0..5_000).map(|i| (i % 200) as i64).collect()),
            Column::from_f64("v", (0..5_000).map(|_| rng.gen()).collect()),
        ],
    )
    .unwrap();
    c.bench_function("groupby_aggregate_5k_rows_200_groups", |b| {
        b.iter(|| {
            black_box(GroupBy::new(&t, &["k"]).unwrap().aggregate_default().unwrap())
        })
    });
}

fn bench_sketch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let x = Matrix::from_vec(
        2_000,
        50,
        (0..2_000 * 50).map(|_| rng.gen::<f64>()).collect(),
    )
    .unwrap();
    let y: Vec<f64> = (0..2_000).map(|_| rng.gen()).collect();
    c.bench_function("osnap_sketch_2000x50_to_200", |b| {
        b.iter(|| black_box(sketch_xy(&x, &y, false, 200, 0)))
    });
}

fn bench_l21(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut x = Matrix::from_vec(
        400,
        60,
        (0..400 * 60).map(|_| rng.gen::<f64>() - 0.5).collect(),
    )
    .unwrap();
    standardize_columns(&mut x);
    let y: Vec<f64> = (0..400).map(|i| x.get(i, 0) * 3.0 - x.get(i, 1)).collect();
    let ym = target_matrix(&y, Task::Regression);
    let cfg = L21Config { max_iter: 10, ..Default::default() };
    c.bench_function("l21_irls_400x60_10iter", |b| {
        b.iter(|| black_box(l21_solve(&x, &ym, &cfg).unwrap()))
    });
}

fn bench_forest(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let rows: Vec<Vec<f64>> = (0..500)
        .map(|i| {
            let cls = (i % 2) as f64;
            (0..20)
                .map(|f| if f == 0 { cls * 2.0 + rng.gen::<f64>() } else { rng.gen() })
                .collect()
        })
        .collect();
    let x = Matrix::from_rows(&rows).unwrap();
    let y: Vec<f64> = (0..500).map(|i| (i % 2) as f64).collect();
    let cfg = ForestConfig { n_trees: 32, max_depth: 10, ..Default::default() };
    c.bench_function("random_forest_fit_500x20_32trees", |b| {
        b.iter(|| {
            black_box(
                RandomForest::fit_xy(&x, &y, Task::Classification { n_classes: 2 }, &cfg)
                    .unwrap(),
            )
        })
    });
}

fn bench_rifs_fractions(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let rows: Vec<Vec<f64>> = (0..200)
        .map(|i| {
            let cls = (i % 2) as f64;
            (0..15)
                .map(|f| if f < 2 { cls * 2.0 + rng.gen::<f64>() } else { rng.gen() })
                .collect()
        })
        .collect();
    let ds = Dataset::new(
        Matrix::from_rows(&rows).unwrap(),
        (0..200).map(|i| (i % 2) as f64).collect(),
        (0..15).map(|i| format!("f{i}")).collect(),
        Task::Classification { n_classes: 2 },
    )
    .unwrap();
    let mut cfg = bench_rifs(arda_bench::Scale::Quick);
    cfg.repeats = 3;
    c.bench_function("rifs_fractions_200x15_3rep", |b| {
        b.iter(|| black_box(rifs_fractions(&ds, &cfg, 0).unwrap()))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let sc = taxi(&ScenarioConfig { n_rows: 120, n_decoys: 3, seed: 6 });
    let repo = arda_discovery::Repository::from_tables(sc.repository.clone());
    let config = arda_core::ArdaConfig {
        selector: arda_select::SelectorKind::Ranking(
            arda_select::RankingMethod::RandomForest,
        ),
        ..Default::default()
    };
    c.bench_function("pipeline_taxi_120rows_5tables_rf_selector", |b| {
        b.iter(|| {
            black_box(
                arda_core::Arda::new(config.clone())
                    .run(&sc.base, &repo, &sc.target)
                    .unwrap(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_joins, bench_groupby, bench_sketch, bench_l21, bench_forest,
              bench_rifs_fractions, bench_pipeline
}
criterion_main!(benches);
