//! # arda-bench
//!
//! Experiment harness regenerating every table and figure of the ARDA
//! paper's evaluation (§7). One binary per artifact:
//!
//! | target | paper artifact |
//! |---|---|
//! | `fig3_augmentation` | Fig. 3 — achieved augmentation + time per system |
//! | `fig4_score_vs_time` | Fig. 4 — score vs selection time per selector |
//! | `table1_real_world` | Table 1 — error/accuracy + time, full method grid |
//! | `table2_coreset_classification` | Table 2 — stratified/sketch vs uniform |
//! | `table3_coreset_regression` | Table 3 — sketch vs uniform (regression) |
//! | `fig5_soft_joins` | Fig. 5 — soft-join strategies × selectors |
//! | `fig6_noise_filtering` | Fig. 6 — #features selected, original vs noise |
//! | `table4_tr_prefilter` | Table 4 — Tuple-Ratio prefiltering |
//! | `table5_table_grouping` | Table 5 — table/budget/full-mat join plans |
//! | `table6_micro` | Table 6 — micro-benchmark accuracy + time |
//!
//! Scale: set `ARDA_BENCH_SCALE=full` for paper-sized repositories (School
//! (L) gets 350 tables); the default `quick` profile keeps every binary
//! under a few minutes. Numbers are *shape*-comparable with the paper, not
//! absolute: the substrate is the in-repo simulator, not the authors'
//! testbed (see EXPERIMENTS.md).

pub mod timing;

use arda_core::{Arda, ArdaConfig};
use arda_discovery::{discover_joins, DiscoveryConfig, Repository};
use arda_join::impute::impute;
use arda_join::{execute_join, JoinKind, JoinSpec};
use arda_ml::model::holdout_score;
use arda_ml::{featurize, metrics, Dataset, FeaturizeOptions, ModelKind};
use arda_select::{RifsConfig, SelectorKind};
use arda_synth::{pickup, poverty, school, taxi, Scenario, ScenarioConfig};

/// Benchmark scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI-friendly sizes (default).
    Quick,
    /// Paper-sized repositories.
    Full,
}

/// Read the scale from `ARDA_BENCH_SCALE` (`full` → [`Scale::Full`]).
pub fn bench_scale() -> Scale {
    match std::env::var("ARDA_BENCH_SCALE").as_deref() {
        Ok("full") => Scale::Full,
        _ => Scale::Quick,
    }
}

/// The five real-world scenarios of §7.1 at the requested scale, in the
/// paper's column order: pickup, poverty, school (L), school (S), taxi.
pub fn real_world_scenarios(scale: Scale) -> Vec<Scenario> {
    let (rows, k) = match scale {
        Scale::Quick => (260, 1.0),
        Scale::Full => (500, 1.0),
    };
    let decoys = |paper: usize| match scale {
        Scale::Quick => ((paper as f64 * 0.4) as usize).max(3),
        Scale::Full => paper,
    };
    let _ = k;
    vec![
        pickup(&ScenarioConfig {
            n_rows: rows,
            n_decoys: decoys(22),
            seed: 101,
        }),
        poverty(&ScenarioConfig {
            n_rows: rows,
            n_decoys: decoys(37),
            seed: 102,
        }),
        school(
            &ScenarioConfig {
                n_rows: rows,
                n_decoys: decoys(348),
                seed: 103,
            },
            true,
        ),
        school(
            &ScenarioConfig {
                n_rows: rows,
                n_decoys: decoys(14),
                seed: 104,
            },
            false,
        ),
        taxi(&ScenarioConfig {
            n_rows: rows,
            n_decoys: decoys(27),
            seed: 105,
        }),
    ]
}

/// RIFS configuration used by the harness (paper parameters, bounded solver
/// iterations for wall-clock sanity).
pub fn bench_rifs(scale: Scale) -> RifsConfig {
    match scale {
        Scale::Quick => RifsConfig {
            repeats: 5,
            rf_trees: 16,
            l21: arda_select::sparse_regression::L21Config {
                max_iter: 12,
                ..Default::default()
            },
            ..Default::default()
        },
        Scale::Full => RifsConfig {
            repeats: 10,
            rf_trees: 24,
            l21: arda_select::sparse_regression::L21Config {
                max_iter: 20,
                ..Default::default()
            },
            ..Default::default()
        },
    }
}

/// Run the ARDA pipeline on a scenario and return the report.
pub fn run_pipeline(scenario: &Scenario, config: ArdaConfig) -> arda_core::AugmentationReport {
    let repo = Repository::from_tables(scenario.repository.clone());
    Arda::new(config)
        .run(&scenario.base, &repo, &scenario.target)
        .expect("pipeline run")
}

/// Fully materialise a scenario: discover → join *every* candidate → impute
/// → featurize. Used by the coreset and micro experiments.
pub fn full_materialized_dataset(scenario: &Scenario, seed: u64) -> Dataset {
    let repo = Repository::from_tables(scenario.repository.clone());
    let candidates =
        discover_joins(&scenario.base, &repo, &DiscoveryConfig::default()).expect("discover");
    let mut joined = scenario.base.clone();
    for c in &candidates {
        let foreign = repo.get(c.table_index).expect("table");
        let kind = match c.kind {
            arda_discovery::KeyKind::Soft => {
                JoinKind::SoftTimeResampled(arda_join::SoftMethod::TwoWayNearest)
            }
            arda_discovery::KeyKind::Hard => JoinKind::Hard,
        };
        let spec = JoinSpec {
            base_keys: vec![c.base_key.clone()],
            foreign_keys: vec![c.foreign_key.clone()],
            kind,
        };
        joined = execute_join(&joined, &foreign, &spec, seed).expect("join");
    }
    let (imputed, _) = impute(&joined, seed).expect("impute");
    featurize(
        &imputed,
        &scenario.target,
        false,
        &FeaturizeOptions::default(),
    )
    .expect("featurize")
}

/// Fit the paper's default estimator on a feature subset and return
/// `(higher-better score, error-metric)`: `(accuracy, 1−accuracy)` for
/// classification, `(R², MAE)` for regression.
pub fn evaluate_subset(data: &Dataset, selected: &[usize], seed: u64) -> (f64, f64) {
    let sub = data.select_features(selected).expect("subset");
    let (train, test) = if data.task.is_classification() {
        arda_ml::stratified_split(&data.y, 0.25, seed)
    } else {
        arda_ml::train_test_split(data.n_samples(), 0.25, seed)
    };
    let kind = ModelKind::RandomForest {
        n_trees: 48,
        max_depth: 12,
    };
    let score = holdout_score(&sub, &kind, &train, &test, seed).expect("score");
    let tr = sub.select_rows(&train).expect("rows");
    let te = sub.select_rows(&test).expect("rows");
    let model = kind.fit(&tr.x, &tr.y, sub.task, seed).expect("fit");
    let pred = model.predict(&te.x).expect("predict");
    let err = if data.task.is_classification() {
        1.0 - metrics::accuracy(&pred, &te.y)
    } else {
        metrics::mae(&pred, &te.y)
    };
    (score, err)
}

/// The selector grid of Tables 1/6 and Fig. 4 applicable to `task`.
/// `include_slow` adds forward/backward/RFE (the order-of-magnitude-slower
/// wrappers).
pub fn selector_grid(
    task: arda_ml::Task,
    scale: Scale,
    include_slow: bool,
) -> Vec<(String, SelectorKind)> {
    use arda_select::RankingMethod as R;
    let mut grid: Vec<(String, SelectorKind)> = vec![
        ("RIFS".into(), SelectorKind::Rifs(bench_rifs(scale))),
        ("all features".into(), SelectorKind::AllFeatures),
    ];
    for m in [
        R::SparseRegression,
        R::RandomForest,
        R::FTest,
        R::Lasso,
        R::MutualInfo,
        R::Relief,
        R::LinearSvc,
        R::LogisticRegression,
    ] {
        if m.supports(task) {
            grid.push((m.name().to_string(), SelectorKind::Ranking(m)));
        }
    }
    if include_slow {
        grid.push(("forward selection".into(), SelectorKind::ForwardSelection));
        grid.push(("backward selection".into(), SelectorKind::BackwardSelection));
        grid.push(("RFE".into(), SelectorKind::Rfe));
    }
    grid
}

/// Render an aligned text table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("{}", line.join("  "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_default_quick() {
        assert_eq!(bench_scale(), Scale::Quick);
    }

    #[test]
    fn scenarios_cover_all_five() {
        let s = real_world_scenarios(Scale::Quick);
        let names: Vec<&str> = s.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["pickup", "poverty", "school_l", "school_s", "taxi"]
        );
    }

    #[test]
    fn full_materialization_produces_wide_dataset() {
        let sc = taxi(&ScenarioConfig {
            n_rows: 60,
            n_decoys: 3,
            seed: 0,
        });
        let base_ds = featurize(&sc.base, &sc.target, false, &FeaturizeOptions::default()).unwrap();
        let ds = full_materialized_dataset(&sc, 0);
        assert!(
            ds.n_features() > base_ds.n_features(),
            "join added features"
        );
        assert_eq!(ds.n_samples(), 60);
    }

    #[test]
    fn evaluate_subset_returns_score_and_error() {
        let sc = school(
            &ScenarioConfig {
                n_rows: 120,
                n_decoys: 1,
                seed: 1,
            },
            false,
        );
        let ds = full_materialized_dataset(&sc, 1);
        let all: Vec<usize> = (0..ds.n_features()).collect();
        let (score, err) = evaluate_subset(&ds, &all, 1);
        assert!((0.0..=1.0).contains(&score));
        assert!((score + err - 1.0).abs() < 1e-9, "cls: err = 1 - acc");
    }

    #[test]
    fn grid_respects_task() {
        let cls = selector_grid(
            arda_ml::Task::Classification { n_classes: 2 },
            Scale::Quick,
            true,
        );
        assert!(cls.iter().any(|(n, _)| n == "linear svc"));
        assert!(!cls.iter().any(|(n, _)| n == "lasso"));
        let reg = selector_grid(arda_ml::Task::Regression, Scale::Quick, false);
        assert!(reg.iter().any(|(n, _)| n == "lasso"));
        assert!(!reg.iter().any(|(n, _)| n == "RFE"));
    }
}
