//! A tiny self-contained timing harness (the workspace builds offline, so
//! no criterion). Used by the `micro` bench target and the `bench_pr1`
//! perf-trajectory binary.

use std::time::Instant;

/// One measured operation.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// Iterations timed (after warm-up).
    pub iters: usize,
    /// Total wall-clock seconds over `iters`.
    pub secs: f64,
    /// Throughput in operations per second.
    pub ops_per_sec: f64,
}

impl Measurement {
    /// Seconds per single operation.
    pub fn secs_per_op(&self) -> f64 {
        self.secs / self.iters.max(1) as f64
    }
}

/// Time `f`, adaptively choosing an iteration count so the measured window
/// is at least `min_secs` (one un-timed warm-up iteration first). The
/// closure must not be optimised away — return its result through
/// [`std::hint::black_box`] inside `f`.
pub fn time_op<F: FnMut()>(name: &str, min_secs: f64, mut f: F) -> Measurement {
    f(); // warm-up (page-in, allocator, branch predictors)
    let mut iters = 1usize;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let secs = start.elapsed().as_secs_f64();
        if secs >= min_secs || iters >= 1 << 20 {
            return Measurement {
                name: name.to_string(),
                iters,
                secs,
                ops_per_sec: iters as f64 / secs.max(1e-12),
            };
        }
        // Aim past the target window with headroom; at least double.
        let scale = (min_secs * 1.5 / secs.max(1e-9)).ceil() as usize;
        iters = (iters * scale.max(2)).min(1 << 20);
    }
}

/// Render measurements as an aligned text table.
pub fn print_measurements(title: &str, results: &[Measurement]) {
    println!("\n== {title} ==");
    let width = results
        .iter()
        .map(|m| m.name.len())
        .max()
        .unwrap_or(4)
        .max(4);
    println!(
        "{:width$}  {:>12}  {:>10}  {:>12}",
        "name", "ops/sec", "iters", "secs/op"
    );
    for m in results {
        println!(
            "{:width$}  {:>12.2}  {:>10}  {:>12.6}",
            m.name,
            m.ops_per_sec,
            m.iters,
            m.secs_per_op()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_op_measures_and_scales() {
        let mut count = 0u64;
        let m = time_op("noop", 0.01, || {
            count += 1;
            std::hint::black_box(count);
        });
        assert!(m.iters >= 1);
        assert!(m.secs >= 0.01 || m.iters == 1 << 20);
        assert!(m.ops_per_sec > 0.0);
        assert!(m.secs_per_op() > 0.0);
        assert_eq!(m.name, "noop");
    }
}
