//! Perf-trajectory benchmark (PR 1 baseline + PR 3 budget scheduler):
//! times the five headline hot paths at worker counts {1, 2, 4, max},
//! plus a *nested-oversubscription sweep* — RIFS (injection rounds ×
//! forest fits × ℓ2,1 solves × blocked linalg, and the parallel τ-sweep)
//! under the work-budget scheduler — and writes `BENCH_PR1.json` so
//! future PRs can compare against a recorded baseline.
//!
//! ```text
//! cargo run --release -p arda-bench --bin bench_pr1
//! ```
//!
//! The thread sweep drives `arda_par::set_default_threads`, which sizes
//! the global permit pool and every ambient budget; outputs are identical
//! at every count (see `tests/par_determinism.rs` and
//! `tests/budget_determinism.rs`), only the wall-clock changes. The nested
//! sweep additionally records the peak number of live workers per budget
//! and asserts the oversubscription invariant `peak + 1 <= budget`. On a
//! single-core host the sweep degenerates gracefully — `speedup` is then
//! bounded by `available_parallelism`, which the JSON records.

use arda_bench::timing::time_op;
use arda_core::{Arda, ArdaConfig};
use arda_discovery::Repository;
use arda_join::{execute_join, JoinSpec, SoftMethod};
use arda_linalg::Matrix;
use arda_ml::{Dataset, ForestConfig, RandomForest, Task};
use arda_select::{rifs_select, RankingMethod, RifsConfig, SelectionContext, SelectorKind};
use arda_synth::{taxi, ScenarioConfig};
use arda_table::{Column, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const WINDOW_SECS: f64 = 0.5;

struct Sweep {
    name: &'static str,
    /// (threads, ops/sec) per swept worker count.
    by_threads: Vec<(usize, f64)>,
}

impl Sweep {
    fn speedup(&self) -> f64 {
        let one = self
            .by_threads
            .iter()
            .find(|(t, _)| *t == 1)
            .map_or(0.0, |(_, o)| *o);
        let best = self
            .by_threads
            .iter()
            .map(|(_, o)| *o)
            .fold(0.0f64, f64::max);
        if one > 0.0 {
            best / one
        } else {
            0.0
        }
    }
}

fn sweep(name: &'static str, counts: &[usize], mut f: impl FnMut()) -> Sweep {
    let mut by_threads = Vec::new();
    for &t in counts {
        arda_par::set_default_threads(t);
        let m = time_op(name, WINDOW_SECS, &mut f);
        println!("  {name} @ {t} threads: {:.2} ops/sec", m.ops_per_sec);
        by_threads.push((t, m.ops_per_sec));
    }
    Sweep { name, by_threads }
}

fn main() {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1usize, 2, 4, avail];
    counts.sort_unstable();
    counts.dedup();
    println!("bench_pr1: sweeping worker counts {counts:?} (available: {avail})");
    let mut sweeps = Vec::new();

    // 1. matmul 512×512 · 512×512 (cache-blocked, row-band parallel).
    {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Matrix::from_vec(
            512,
            512,
            (0..512 * 512).map(|_| rng.gen::<f64>() - 0.5).collect(),
        )
        .unwrap();
        let b = Matrix::from_vec(
            512,
            512,
            (0..512 * 512).map(|_| rng.gen::<f64>() - 0.5).collect(),
        )
        .unwrap();
        sweeps.push(sweep("matmul_512x512", &counts, || {
            black_box(a.matmul(&b).unwrap());
        }));
    }

    // 2. gram on 10k×64.
    {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Matrix::from_vec(
            10_000,
            64,
            (0..10_000 * 64).map(|_| rng.gen::<f64>() - 0.5).collect(),
        )
        .unwrap();
        sweeps.push(sweep("gram_10000x64", &counts, || {
            black_box(x.gram());
        }));
    }

    // 3. random-forest fit, 2000×20, 48 trees.
    {
        let mut rng = StdRng::seed_from_u64(2);
        let rows: Vec<Vec<f64>> = (0..2_000)
            .map(|i| {
                let cls = (i % 2) as f64;
                (0..20)
                    .map(|f| {
                        if f == 0 {
                            cls * 2.0 + rng.gen::<f64>()
                        } else {
                            rng.gen()
                        }
                    })
                    .collect()
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..2_000).map(|i| (i % 2) as f64).collect();
        let cfg = ForestConfig {
            n_trees: 48,
            max_depth: 10,
            ..Default::default()
        };
        sweeps.push(sweep("forest_fit_2000x20_48trees", &counts, || {
            black_box(
                RandomForest::fit_xy(&x, &y, Task::Classification { n_classes: 2 }, &cfg).unwrap(),
            );
        }));
    }

    // 4. two-way soft join, 100k base rows × 2k foreign.
    {
        let mut rng = StdRng::seed_from_u64(3);
        let base = Table::new(
            "base",
            vec![Column::from_i64(
                "k",
                (0..100_000)
                    .map(|_| rng.gen_range(0i64..1_000_000))
                    .collect(),
            )],
        )
        .unwrap();
        let foreign = Table::new(
            "foreign",
            vec![
                Column::from_i64(
                    "k",
                    (0..2_000).map(|_| rng.gen_range(0i64..1_000_000)).collect(),
                ),
                Column::from_f64("a", (0..2_000).map(|_| rng.gen()).collect()),
                Column::from_f64("b", (0..2_000).map(|_| rng.gen()).collect()),
            ],
        )
        .unwrap();
        let spec = JoinSpec::soft("k", "k", SoftMethod::TwoWayNearest);
        sweeps.push(sweep("soft_2way_join_100k_x_2k", &counts, || {
            black_box(execute_join(&base, &foreign, &spec, 0).unwrap());
        }));
    }

    // 5. end-to-end pipeline (taxi scenario, RF ranking selector).
    {
        let sc = taxi(&ScenarioConfig {
            n_rows: 160,
            n_decoys: 3,
            seed: 4,
        });
        let repo = Repository::from_tables(sc.repository.clone());
        let config = ArdaConfig {
            selector: SelectorKind::Ranking(RankingMethod::RandomForest),
            ..Default::default()
        };
        sweeps.push(sweep("pipeline_taxi_160rows", &counts, || {
            black_box(
                Arda::new(config.clone())
                    .run(&sc.base, &repo, &sc.target)
                    .unwrap(),
            );
        }));
    }

    // 6. nested-oversubscription sweep: full RIFS selection — the deepest
    //    nesting in the workspace (rounds × forest fits × solver kernels ×
    //    parallel τ-sweep holdout evaluations) — per budget, recording the
    //    peak live worker count the permit pool ever allowed.
    let nested: Vec<(usize, f64, usize)> = {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 260;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let cls = (i % 2) as f64;
                let mut row = vec![
                    cls * 3.0 + rng.gen_range(-0.4..0.4),
                    -cls * 2.0 + rng.gen_range(-0.4..0.4),
                ];
                for _ in 0..10 {
                    row.push(rng.gen_range(-1.0..1.0));
                }
                row
            })
            .collect();
        let ds = Dataset::new(
            Matrix::from_rows(&rows).unwrap(),
            (0..n).map(|i| (i % 2) as f64).collect(),
            (0..12).map(|i| format!("f{i}")).collect(),
            Task::Classification { n_classes: 2 },
        )
        .unwrap();
        let ctx = SelectionContext::standard(&ds, 5);
        let cfg = RifsConfig {
            repeats: 6,
            rf_trees: 16,
            ..Default::default()
        };
        let mut rows_out = Vec::new();
        for &t in &counts {
            arda_par::set_default_threads(t);
            arda_par::reset_spawn_counters();
            let m = time_op("rifs_nested", WINDOW_SECS, &mut || {
                black_box(rifs_select(&ds, &ctx, &cfg).unwrap());
            });
            let peak = arda_par::peak_spawned_workers() + 1; // + calling thread
            assert!(peak <= t, "budget {t} oversubscribed: {peak} live workers");
            println!(
                "  rifs_nested @ {t} budget: {:.2} ops/sec, peak {} live workers",
                m.ops_per_sec, peak
            );
            rows_out.push((t, m.ops_per_sec, peak));
        }
        rows_out
    };

    // ---- JSON report -----------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str("  \"pr\": 3,\n");
    json.push_str(&format!("  \"available_parallelism\": {avail},\n"));
    json.push_str(&format!(
        "  \"thread_counts\": [{}],\n",
        counts
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str("  \"benchmarks\": [\n");
    for (i, s) in sweeps.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": \"{}\",\n", s.name));
        json.push_str("      \"ops_per_sec\": {");
        let cells: Vec<String> = s
            .by_threads
            .iter()
            .map(|(t, o)| format!("\"{t}\": {o:.4}"))
            .collect();
        json.push_str(&cells.join(", "));
        json.push_str("},\n");
        json.push_str(&format!(
            "      \"speedup_best_vs_1\": {:.4}\n",
            s.speedup()
        ));
        json.push_str(if i + 1 < sweeps.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"nested_oversubscription\": [\n");
    for (i, (t, ops, peak)) in nested.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"budget\": {t}, \"ops_per_sec\": {ops:.4}, \"peak_live_workers\": {peak}, \"budget_respected\": {}}}{}\n",
            peak <= t,
            if i + 1 < nested.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_PR1.json", &json).expect("write BENCH_PR1.json");
    println!("\nwrote BENCH_PR1.json");
    for s in &sweeps {
        println!(
            "  {:32} best-vs-1-thread speedup: {:.2}x",
            s.name,
            s.speedup()
        );
    }
}
