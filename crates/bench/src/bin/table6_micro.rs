//! **Table 6**: micro-benchmark results — accuracy and time of every
//! selector on Kraken and Digits with 10× appended synthetic noise, plus
//! the no-selection baselines and the AutoML-lite comparators.

use arda_bench::*;
use arda_ml::{featurize, FeaturizeOptions};
use arda_select::{run_selector, SelectionContext, SelectorKind};
use arda_synth::{append_noise_columns, digits, kraken};
use std::time::{Duration, Instant};

fn main() {
    let scale = bench_scale();
    let factor = match scale {
        Scale::Quick => 4,
        Scale::Full => 10,
    };
    let mut rows: Vec<Vec<String>> = Vec::new();

    for (name, micro) in [("kraken", kraken(95)), ("digits", digits(96))] {
        let noisy = append_noise_columns(&micro, factor, 95);
        let ds = featurize(
            &noisy.table,
            &noisy.target,
            true,
            &FeaturizeOptions::default(),
        )
        .unwrap();
        let ds = match scale {
            Scale::Quick => {
                let idx: Vec<usize> = (0..ds.n_samples().min(500)).collect();
                ds.select_rows(&idx).unwrap()
            }
            Scale::Full => ds,
        };
        let all: Vec<usize> = (0..ds.n_features()).collect();

        // Baseline: untuned small estimator on everything.
        let t0 = Instant::now();
        let (base_acc, _) = {
            let kind = arda_ml::ModelKind::DecisionTree { max_depth: 8 };
            let (train, test) = arda_ml::stratified_split(&ds.y, 0.25, 95);
            let s = arda_ml::model::holdout_score(&ds, &kind, &train, &test, 95).unwrap();
            (s, 0.0)
        };
        rows.push(vec![
            name.into(),
            "baseline".into(),
            format!("{:.2}%", base_acc * 100.0),
            format!("{:.1}", t0.elapsed().as_secs_f64()),
        ]);

        // All features with the default estimator.
        let t1 = Instant::now();
        let (all_acc, _) = evaluate_subset(&ds, &all, 95);
        rows.push(vec![
            name.into(),
            "all features".into(),
            format!("{:.2}%", all_acc * 100.0),
            format!("{:.1}", t1.elapsed().as_secs_f64()),
        ]);

        // AutoML-lite on all features.
        let budget = Duration::from_secs(match scale {
            Scale::Quick => 10,
            Scale::Full => 60,
        });
        let t2 = Instant::now();
        let automl = arda_core::automl_search(&ds, budget, 95).unwrap();
        rows.push(vec![
            name.into(),
            "AutoML (all)".into(),
            format!("{:.2}%", automl.best_score * 100.0),
            format!("{:.1}", t2.elapsed().as_secs_f64()),
        ]);

        // The selector grid.
        for (sel_name, selector) in selector_grid(ds.task, scale, true) {
            if matches!(selector, SelectorKind::AllFeatures) {
                continue; // already reported
            }
            let t = Instant::now();
            let ctx = SelectionContext::standard(&ds, 95);
            let sel = run_selector(&ds, &selector, &ctx).unwrap();
            let (acc, _) = evaluate_subset(&ds, &sel.selected, 95);
            rows.push(vec![
                name.into(),
                sel_name,
                format!("{:.2}%", acc * 100.0),
                format!("{:.1}", t.elapsed().as_secs_f64()),
            ]);
        }
    }

    print_table(
        "Table 6 — micro benchmarks (accuracy, time) with injected noise",
        &["dataset", "method", "accuracy", "time (s)"],
        &rows,
    );
}
