//! **Table 4**: the Tuple-Ratio rule as a pre-filtering step before RIFS:
//! score change, speed-up and number of candidates removed, with a
//! per-dataset threshold τ (the paper tunes τ per dataset; we report the τ
//! used, mirroring its table layout).

use arda_bench::*;
use arda_core::ArdaConfig;
use arda_select::SelectorKind;

fn main() {
    let scale = bench_scale();
    let rifs = bench_rifs(scale);
    // Per-dataset τ mirroring the paper's tuned values (Table 4: 24, 17,
    // 15, 15, 17 for taxi/pickup/poverty/school-S/school-L). Our scenarios
    // share key domains ≈ base rows, so smaller τ values bite; values are
    // tuned per dataset in the same spirit.
    let taus = [
        ("pickup", 3.0),
        ("poverty", 2.0),
        ("school_l", 2.0),
        ("school_s", 2.0),
        ("taxi", 4.0),
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();

    for scenario in real_world_scenarios(scale) {
        let tau = taus
            .iter()
            .find(|(n, _)| *n == scenario.name)
            .map(|(_, t)| *t)
            .unwrap_or(3.0);

        let plain = run_pipeline(
            &scenario,
            ArdaConfig {
                selector: SelectorKind::Rifs(rifs.clone()),
                seed: 81,
                ..Default::default()
            },
        );
        let filtered = run_pipeline(
            &scenario,
            ArdaConfig {
                selector: SelectorKind::Rifs(rifs.clone()),
                tr_threshold: Some(tau),
                seed: 81,
                ..Default::default()
            },
        );

        let score_change = if plain.augmented_score.abs() < 1e-12 {
            0.0
        } else {
            (filtered.augmented_score - plain.augmented_score) / plain.augmented_score.abs() * 100.0
        };
        let speedup = plain.seconds / filtered.seconds.max(1e-9);
        rows.push(vec![
            scenario.name.clone(),
            format!("{score_change:+.2}%"),
            format!("{speedup:.2}x"),
            format!("{}", filtered.tr_eliminated),
            format!("{tau}"),
        ]);
    }

    print_table(
        "Table 4 — Tuple-Ratio prefiltering before RIFS",
        &[
            "dataset",
            "score change",
            "speed-up",
            "candidates removed",
            "tau",
        ],
        &rows,
    );
}
