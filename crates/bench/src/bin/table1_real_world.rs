//! **Table 1**: error (MAE for regression) or accuracy (classification) plus
//! selection+evaluation time for every feature-selection method on the five
//! real-world scenarios. `n/a` cells (lasso on classification, linear
//! svc/logistic on regression) are skipped exactly as in the paper.

use arda_bench::*;
use arda_core::ArdaConfig;
use arda_ml::{featurize, FeaturizeOptions};

fn main() {
    let scale = bench_scale();
    let include_slow = true;
    let mut rows: Vec<Vec<String>> = Vec::new();

    for scenario in real_world_scenarios(scale) {
        let base_ds = featurize(
            &scenario.base,
            &scenario.target,
            false,
            &FeaturizeOptions::default(),
        )
        .unwrap();
        let all: Vec<usize> = (0..base_ds.n_features()).collect();
        let (base_score, base_err) = evaluate_subset(&base_ds, &all, 11);
        rows.push(vec![
            scenario.name.clone(),
            "baseline".into(),
            format!("{base_err:.4}"),
            format!("{base_score:.3}"),
            "0.0".into(),
        ]);

        // Skip the O(d)-refit wrappers on School (L) at quick scale (the
        // paper's own Table 1 reports 17+ hours for backward selection
        // there).
        let slow_ok = include_slow && (scale == Scale::Full || scenario.name != "school_l");
        for (name, selector) in selector_grid(base_ds.task, scale, slow_ok) {
            let report = run_pipeline(
                &scenario,
                ArdaConfig {
                    selector,
                    seed: 11,
                    ..Default::default()
                },
            );
            // Error of the default estimator on the augmented output.
            let aug_ds = featurize(
                &report.augmented,
                &scenario.target,
                false,
                &FeaturizeOptions::default(),
            )
            .unwrap();
            let cols: Vec<usize> = (0..aug_ds.n_features()).collect();
            let (score, err) = evaluate_subset(&aug_ds, &cols, 11);
            rows.push(vec![
                scenario.name.clone(),
                name,
                format!("{err:.4}"),
                format!("{score:.3}"),
                format!("{:.1}", report.seconds),
            ]);
        }
    }

    print_table(
        "Table 1 — real-world datasets, all feature selectors (error = MAE or 1-acc)",
        &["dataset", "method", "error", "score", "time (s)"],
        &rows,
    );
}
