//! **Figure 4**: %-improvement over the base-table score vs selection time,
//! one point per (dataset, selector). The paper's reading: RIFS sits on the
//! accuracy frontier; forward selection is competitive but an order of
//! magnitude slower; pure filters are fast but weaker.

use arda_bench::*;
use arda_core::ArdaConfig;
use arda_ml::{featurize, FeaturizeOptions};

fn main() {
    let scale = bench_scale();
    let mut rows: Vec<Vec<String>> = Vec::new();

    for scenario in real_world_scenarios(scale) {
        let base_ds = featurize(
            &scenario.base,
            &scenario.target,
            false,
            &FeaturizeOptions::default(),
        )
        .unwrap();
        // On the 2-core quick profile the O(d)-refit wrappers only run on
        // one dataset (taxi); full scale includes them everywhere. The
        // paper's Fig. 4 point — forward selection competitive but an order
        // of magnitude slower — is visible either way.
        let slow_ok = scale == Scale::Full || scenario.name == "taxi";
        for (name, selector) in selector_grid(base_ds.task, scale, slow_ok) {
            let report = run_pipeline(
                &scenario,
                ArdaConfig {
                    selector,
                    seed: 13,
                    ..Default::default()
                },
            );
            rows.push(vec![
                scenario.name.clone(),
                name,
                format!("{:.2}", report.seconds),
                format!("{:+.1}", report.improvement_pct()),
            ]);
        }
    }

    print_table(
        "Figure 4 — % improvement over base vs selection time (x = time, y = %)",
        &["dataset", "selector", "time (s)", "improv %"],
        &rows,
    );
}
