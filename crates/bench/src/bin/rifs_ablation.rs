//! **Ablation** (DESIGN.md §4): RIFS design choices — ensemble weight ν
//! (RF-only / SR-only / mixed), injection distribution (moment-matched vs
//! standard), injection fraction η and repeat count k — measured on the
//! noisy Kraken micro benchmark.

use arda_bench::*;
use arda_ml::{featurize, FeaturizeOptions};
use arda_select::{rifs_select, InjectionDistribution, RifsConfig, SelectionContext};
use arda_synth::{append_noise_columns, kraken};

fn main() {
    let scale = bench_scale();
    let micro = kraken(99);
    let noisy = append_noise_columns(&micro, 6, 99);
    let ds = featurize(
        &noisy.table,
        &noisy.target,
        true,
        &FeaturizeOptions::default(),
    )
    .unwrap();
    let ds = {
        let idx: Vec<usize> = (0..ds.n_samples().min(400)).collect();
        ds.select_rows(&idx).unwrap()
    };
    let base_cfg = bench_rifs(scale);
    let ctx = SelectionContext::standard(&ds, 99);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut run = |label: &str, cfg: RifsConfig| {
        let t = std::time::Instant::now();
        let report = rifs_select(&ds, &ctx, &cfg).expect("rifs");
        let (acc, _) = evaluate_subset(&ds, &report.selected, 99);
        let kept_noise = report
            .selected
            .iter()
            .filter(|&&f| ds.feature_names[f].starts_with("synthnoise_"))
            .count();
        rows.push(vec![
            label.to_string(),
            format!("{:.2}%", acc * 100.0),
            format!("{}", report.selected.len()),
            format!("{kept_noise}"),
            format!("{:.1}", t.elapsed().as_secs_f64()),
        ]);
    };

    // Ensemble weight ν.
    run(
        "nu=0.5 (RF+SR, default)",
        RifsConfig {
            nu: 0.5,
            ..base_cfg.clone()
        },
    );
    run(
        "nu=1.0 (RF only)",
        RifsConfig {
            nu: 1.0,
            ..base_cfg.clone()
        },
    );
    run(
        "nu=0.0 (SR only)",
        RifsConfig {
            nu: 0.0,
            ..base_cfg.clone()
        },
    );

    // Injection distribution.
    run(
        "moment-matched (default)",
        RifsConfig {
            distribution: InjectionDistribution::MomentMatched,
            ..base_cfg.clone()
        },
    );
    run(
        "standard normal",
        RifsConfig {
            distribution: InjectionDistribution::StandardNormal,
            ..base_cfg.clone()
        },
    );
    run(
        "uniform(0,1)",
        RifsConfig {
            distribution: InjectionDistribution::Uniform,
            ..base_cfg.clone()
        },
    );

    // Injection fraction η.
    run(
        "eta=0.1",
        RifsConfig {
            eta: 0.1,
            ..base_cfg.clone()
        },
    );
    run(
        "eta=0.2 (default)",
        RifsConfig {
            eta: 0.2,
            ..base_cfg.clone()
        },
    );
    run(
        "eta=0.5",
        RifsConfig {
            eta: 0.5,
            ..base_cfg.clone()
        },
    );

    // Repeats k.
    run(
        "k=3",
        RifsConfig {
            repeats: 3,
            ..base_cfg.clone()
        },
    );
    run(
        "k=10 (paper)",
        RifsConfig {
            repeats: 10,
            ..base_cfg
        },
    );

    print_table(
        "RIFS ablation — noisy Kraken (6x noise)",
        &["variant", "accuracy", "#selected", "noise kept", "time (s)"],
        &rows,
    );
}
