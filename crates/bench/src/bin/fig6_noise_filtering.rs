//! **Figure 6**: noise-filtering selectivity on the micro benchmarks —
//! number of features each selector keeps and how many of them are original
//! (planted) vs synthetic noise. The planted ground truth of `arda-synth`
//! makes the original/noise split exact.

use arda_bench::*;
use arda_ml::{featurize, FeaturizeOptions};
use arda_select::{run_selector, SelectionContext};
use arda_synth::{append_noise_columns, digits, kraken};

fn main() {
    let scale = bench_scale();
    let noise_factor = 10; // paper: 10× noise features
    let mut rows: Vec<Vec<String>> = Vec::new();

    for (name, micro) in [("kraken", kraken(71)), ("digits", digits(72))] {
        let noisy = append_noise_columns(&micro, noise_factor, 71);
        let ds = featurize(
            &noisy.table,
            &noisy.target,
            true,
            &FeaturizeOptions::default(),
        )
        .unwrap();
        // Keep runtime sane at quick scale: subsample rows.
        let ds = match scale {
            Scale::Quick => {
                let idx: Vec<usize> = (0..ds.n_samples().min(400)).collect();
                ds.select_rows(&idx).unwrap()
            }
            Scale::Full => ds,
        };
        let n_original = micro.table.n_cols() - 1;
        let n_total = ds.n_features();

        for (sel_name, selector) in selector_grid(ds.task, scale, false) {
            let ctx = SelectionContext::standard(&ds, 71);
            let sel = run_selector(&ds, &selector, &ctx).unwrap();
            let kept_original = sel
                .selected
                .iter()
                .filter(|&&f| !ds.feature_names[f].starts_with("synthnoise_"))
                .count();
            let kept_noise = sel.selected.len() - kept_original;
            let frac = if sel.selected.is_empty() {
                0.0
            } else {
                kept_original as f64 / sel.selected.len() as f64
            };
            rows.push(vec![
                name.to_string(),
                sel_name,
                format!("{}", sel.selected.len()),
                format!("{kept_original}/{n_original}"),
                format!("{kept_noise}/{}", n_total - n_original),
                format!("{frac:.2}"),
            ]);
        }
    }

    print_table(
        "Figure 6 — features selected: original vs planted synthetic noise",
        &[
            "dataset",
            "method",
            "#selected",
            "original kept",
            "noise kept",
            "orig frac",
        ],
        &rows,
    );
}
