//! **Table 3**: sketching (joint OSNAP over `[X | y]`) vs uniform sampling
//! for the regression scenarios (Taxi, Pickup, Poverty), per selector:
//! %-change in the final score relative to the uniform coreset.

use arda_bench::*;
use arda_coreset::{sketch_xy, uniform_indices};
use arda_ml::Dataset;
use arda_select::{run_selector, SelectionContext, SelectorKind};
use arda_synth::{pickup, poverty, taxi, ScenarioConfig};

fn score_with(ds: &Dataset, selector: &SelectorKind, seed: u64) -> f64 {
    let ctx = SelectionContext::standard(ds, seed);
    let result = run_selector(ds, selector, &ctx).expect("selector");
    let (score, _) = evaluate_subset(ds, &result.selected, seed);
    score
}

fn main() {
    let scale = bench_scale();
    let coreset_rows = match scale {
        Scale::Quick => 200,
        Scale::Full => 400,
    };
    let cfg = |seed| ScenarioConfig {
        n_rows: 380,
        n_decoys: 8,
        seed,
    };
    let scenarios = vec![taxi(&cfg(41)), pickup(&cfg(42)), poverty(&cfg(43))];

    let mut rows: Vec<Vec<String>> = Vec::new();
    for scenario in scenarios {
        let ds = full_materialized_dataset(&scenario, 41);
        for (sel_name, selector) in selector_grid(ds.task, scale, false) {
            let uni_idx = uniform_indices(ds.n_samples(), coreset_rows, 51);
            let uni = ds.select_rows(&uni_idx).unwrap();
            let uni_score = score_with(&uni, &selector, 51);

            // Joint sketch of features and target preserves the regression
            // subspace (§3.1); selection/training run on sketched rows, but
            // evaluation must use *real* holdout rows — we evaluate the
            // selected subset on the uniform coreset.
            let (sx, sy) = sketch_xy(&ds.x, &ds.y, false, coreset_rows, 51);
            let sk = Dataset::new(sx, sy, ds.feature_names.clone(), ds.task).unwrap();
            let ctx = SelectionContext::standard(&sk, 51);
            let sk_sel = run_selector(&sk, &selector, &ctx).expect("selector");
            let (sk_score, _) = evaluate_subset(&uni, &sk_sel.selected, 51);

            rows.push(vec![
                scenario.name.clone(),
                sel_name,
                format!("{uni_score:.3}"),
                format!("{:+.2}%", (sk_score - uni_score) * 100.0),
            ]);
        }
    }

    print_table(
        "Table 3 — sketching vs uniform coresets, regression (% change of score)",
        &["dataset", "method", "uniform score", "sketch Δ"],
        &rows,
    );
}
