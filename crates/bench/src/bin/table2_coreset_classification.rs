//! **Table 2**: coreset-construction comparison for classification —
//! accuracy change of *stratified sampling* and *sketching* (per-label OSNAP
//! subspace embedding) over uniform sampling, per feature selector, on
//! School (S), Digits and Kraken.

use arda_bench::*;
use arda_coreset::{sketch_xy, stratified_indices, uniform_indices};
use arda_ml::{featurize, Dataset, FeaturizeOptions};
use arda_select::{run_selector, SelectionContext, SelectorKind};
use arda_synth::{append_noise_columns, digits, kraken, school, ScenarioConfig};

/// Accuracy of selector+estimator on a coreset variant of `ds`.
fn score_with(ds: &Dataset, selector: &SelectorKind, seed: u64) -> f64 {
    let ctx = SelectionContext::standard(ds, seed);
    let result = run_selector(ds, selector, &ctx).expect("selector");
    let (score, _) = evaluate_subset(ds, &result.selected, seed);
    score
}

fn main() {
    let scale = bench_scale();
    let coreset_rows = match scale {
        Scale::Quick => 240,
        Scale::Full => 500,
    };

    // Featurized classification datasets.
    let school_sc = school(
        &ScenarioConfig {
            n_rows: 400,
            n_decoys: 8,
            seed: 21,
        },
        false,
    );
    let school_ds = full_materialized_dataset(&school_sc, 21);
    let digits_md = {
        let d = digits(22);
        append_noise_columns(&d, 2, 22)
    };
    let digits_ds = featurize(
        &digits_md.table,
        &digits_md.target,
        true,
        &FeaturizeOptions::default(),
    )
    .unwrap();
    let kraken_md = {
        let k = kraken(23);
        append_noise_columns(&k, 2, 23)
    };
    let kraken_ds = featurize(
        &kraken_md.table,
        &kraken_md.target,
        true,
        &FeaturizeOptions::default(),
    )
    .unwrap();

    let datasets: Vec<(&str, &Dataset)> = vec![
        ("school (S)", &school_ds),
        ("digits", &digits_ds),
        ("kraken", &kraken_ds),
    ];

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (name, ds) in datasets {
        let grid = selector_grid(ds.task, scale, false);
        for (sel_name, selector) in grid {
            // Uniform baseline.
            let uni_idx = uniform_indices(ds.n_samples(), coreset_rows, 31);
            let uni = ds.select_rows(&uni_idx).unwrap();
            let uni_score = score_with(&uni, &selector, 31);

            // Stratified.
            let strat_idx = stratified_indices(&ds.y, coreset_rows, 31);
            let strat = ds.select_rows(&strat_idx).unwrap();
            let strat_score = score_with(&strat, &selector, 31);

            // Sketch (per-label OSNAP). Sketched rows are synthetic linear
            // combinations; the class label survives per stratum.
            let (sx, sy) = sketch_xy(&ds.x, &ds.y, true, coreset_rows, 31);
            let sk = Dataset::new(sx, sy, ds.feature_names.clone(), ds.task).unwrap();
            let sk_score = score_with(&sk, &selector, 31);

            rows.push(vec![
                name.to_string(),
                sel_name,
                format!("{:+.2}%", (strat_score - uni_score) * 100.0),
                format!("{:+.2}%", (sk_score - uni_score) * 100.0),
            ]);
        }
    }

    print_table(
        "Table 2 — coreset strategies for classification (accuracy change vs uniform)",
        &["dataset", "method", "stratified", "sketch"],
        &rows,
    );
}
