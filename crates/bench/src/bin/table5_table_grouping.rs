//! **Table 5**: table-grouping strategies — final-score change of
//! *table-join* (one table at a time) and *full materialization* relative to
//! the default *budget-join*, for four selectors on Taxi, Pickup, Poverty
//! and School (S). Expected shape: table-join loses co-predictors (worst on
//! Poverty); full materialization occasionally competitive but never beats
//! budget by a significant margin under RIFS.

use arda_bench::*;
use arda_core::{ArdaConfig, JoinPlan};
use arda_select::{RankingMethod, SelectorKind};
use arda_synth::{pickup, poverty, school, taxi, ScenarioConfig};

fn main() {
    let scale = bench_scale();
    let cfg = |seed| ScenarioConfig {
        n_rows: 300,
        n_decoys: 8,
        seed,
    };
    let scenarios = vec![
        taxi(&cfg(91)),
        pickup(&cfg(92)),
        poverty(&cfg(93)),
        school(&cfg(94), false),
    ];
    let selectors: Vec<(&str, SelectorKind)> = vec![
        ("RIFS", SelectorKind::Rifs(bench_rifs(scale))),
        ("forward selection", SelectorKind::ForwardSelection),
        (
            "random forest",
            SelectorKind::Ranking(RankingMethod::RandomForest),
        ),
        (
            "sparse regression",
            SelectorKind::Ranking(RankingMethod::SparseRegression),
        ),
    ];

    let mut rows: Vec<Vec<String>> = Vec::new();
    for scenario in &scenarios {
        for (sel_name, selector) in &selectors {
            let run = |plan: JoinPlan| {
                run_pipeline(
                    scenario,
                    ArdaConfig {
                        selector: selector.clone(),
                        join_plan: plan,
                        seed: 91,
                        ..Default::default()
                    },
                )
                .augmented_score
            };
            let budget = run(JoinPlan::Budget { budget: None });
            let table = run(JoinPlan::Table);
            let fullmat = run(JoinPlan::FullMaterialization);
            let pct = |s: f64| {
                if budget.abs() < 1e-12 {
                    0.0
                } else {
                    (s - budget) / budget.abs() * 100.0
                }
            };
            rows.push(vec![
                scenario.name.clone(),
                sel_name.to_string(),
                format!("{:+.2}%", pct(table)),
                format!("{:+.2}%", pct(fullmat)),
            ]);
        }
    }

    print_table(
        "Table 5 — join-plan comparison (score change vs budget-join)",
        &["dataset", "method", "table-join", "full-mat"],
        &rows,
    );
}
