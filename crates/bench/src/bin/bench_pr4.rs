//! PR 4 ingestion-throughput sweep: rows/sec of the streaming CSV engine
//! at worker counts 1 → max, chunked vs. slurp, plus the sharded
//! repository's manifest scan and lazy load. Writes `BENCH_PR4.json` so
//! future PRs can compare against a recorded baseline (CI uploads it as an
//! artifact alongside `BENCH_PR1.json`).
//!
//! ```text
//! cargo run --release -p arda-bench --bin bench_pr4
//! ```
//!
//! * **chunked** — the default streaming path: 64 KiB chunks, quote-aware
//!   block carving, per-block parse + inference fanned out on the work
//!   budget, typed columnar build.
//! * **slurp** — `chunk_size = usize::MAX`: the whole input becomes one
//!   block, so parsing is sequential regardless of budget. This is the
//!   seed reader's execution shape, kept as the baseline.
//!
//! Outputs are bit-identical between the modes and across budgets (see
//! `crates/table/tests/csv_stream.rs`); only the wall-clock changes. On a
//! single-core host the sweep degenerates gracefully — `speedup` is then
//! bounded by `available_parallelism`, which the JSON records.

use arda_bench::timing::time_op;
use arda_discovery::Repository;
use arda_table::{read_csv_str_with, read_csv_with, write_csv, Column, CsvReadOptions, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const WINDOW_SECS: f64 = 0.6;
const N_ROWS: usize = 120_000;
const N_SHARDS: usize = 8;

/// A synthetic ingest workload: mixed dtypes, nulls, and enough hostile
/// strings (quoted commas/quotes/newlines) to keep the quote-aware scanner
/// honest.
fn synth_table(name: &str, rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let strs: Vec<Option<String>> = (0..rows)
        .map(|i| {
            if i % 23 == 0 {
                None
            } else {
                Some(match i % 5 {
                    0 => format!("plain_{i}"),
                    1 => format!("with,comma_{i}"),
                    2 => format!("say \"hi\" {i}"),
                    3 => format!("line\nbreak_{i}"),
                    _ => format!("αβ🦀_{i}"),
                })
            }
        })
        .collect();
    Table::new(
        name,
        vec![
            Column::from_i64("id", (0..rows as i64).collect()),
            Column::from_f64("x", (0..rows).map(|_| rng.gen_range(-1e3..1e3)).collect()),
            Column::from_f64_opt(
                "y",
                (0..rows)
                    .map(|i| (i % 17 != 0).then(|| rng.gen_range(0.0..1.0)))
                    .collect(),
            ),
            Column::from_i64("k", (0..rows).map(|_| rng.gen_range(0i64..500)).collect()),
            Column::from_bool("flag", (0..rows).map(|i| i % 3 == 0).collect()),
            Column::new("s", arda_table::ColumnData::Str(strs)),
            Column::from_f64("z", (0..rows).map(|_| rng.gen_range(-5.0..5.0)).collect()),
            Column::from_i64("g", (0..rows).map(|i| (i % 97) as i64).collect()),
        ],
    )
    .unwrap()
}

fn to_csv(table: &Table) -> String {
    let mut buf = Vec::new();
    write_csv(table, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

struct Sweep {
    name: String,
    /// (threads, rows/sec) per swept worker count.
    by_threads: Vec<(usize, f64)>,
}

impl Sweep {
    fn speedup(&self) -> f64 {
        let one = self
            .by_threads
            .iter()
            .find(|(t, _)| *t == 1)
            .map_or(0.0, |(_, o)| *o);
        let best = self
            .by_threads
            .iter()
            .map(|(_, o)| *o)
            .fold(0.0f64, f64::max);
        if one > 0.0 {
            best / one
        } else {
            0.0
        }
    }
}

fn sweep_rows(name: &str, counts: &[usize], rows_per_op: usize, mut f: impl FnMut()) -> Sweep {
    let mut by_threads = Vec::new();
    for &t in counts {
        arda_par::set_default_threads(t);
        let m = time_op(name, WINDOW_SECS, &mut f);
        let rows_per_sec = m.ops_per_sec * rows_per_op as f64;
        println!("  {name} @ {t} threads: {:.0} rows/sec", rows_per_sec);
        by_threads.push((t, rows_per_sec));
    }
    Sweep {
        name: name.to_string(),
        by_threads,
    }
}

fn main() {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1usize, 2, 4, avail];
    counts.sort_unstable();
    counts.dedup();
    println!("bench_pr4: ingestion sweep, worker counts {counts:?} (available: {avail})");

    let table = synth_table("ingest", N_ROWS, 42);
    let text = to_csv(&table);
    let bytes = text.len();
    println!(
        "workload: {N_ROWS} rows × {} cols, {:.1} MiB of CSV",
        table.n_cols(),
        bytes as f64 / (1024.0 * 1024.0)
    );

    // Cross-check once: chunked ≡ slurp, bit for bit.
    let chunked = read_csv_str_with("t", &text, &CsvReadOptions::default()).unwrap();
    let slurp = read_csv_str_with(
        "t",
        &text,
        &CsvReadOptions {
            chunk_size: usize::MAX,
        },
    )
    .unwrap();
    assert_eq!(chunked, slurp, "modes must be bit-identical");

    // ---- In-memory parse sweeps -----------------------------------------
    let mut sweeps: Vec<Sweep> = Vec::new();
    sweeps.push(sweep_rows("parse_chunked_64k", &counts, N_ROWS, || {
        black_box(read_csv_str_with("t", &text, &CsvReadOptions::default()).unwrap());
    }));
    sweeps.push(sweep_rows("parse_slurp", &counts, N_ROWS, || {
        black_box(
            read_csv_str_with(
                "t",
                &text,
                &CsvReadOptions {
                    chunk_size: usize::MAX,
                },
            )
            .unwrap(),
        );
    }));

    // ---- File-backed ingest (the two streaming passes hit the FS) -------
    let dir = std::env::temp_dir().join(format!("arda_bench_pr4_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file_path = dir.join("ingest.csv");
    std::fs::write(&file_path, &text).unwrap();
    sweeps.push(sweep_rows("file_chunked_64k", &counts, N_ROWS, || {
        black_box(read_csv_with(&file_path, &CsvReadOptions::default()).unwrap());
    }));

    // ---- Sharded repository: manifest scan + lazy full load -------------
    let shard_rows = N_ROWS / N_SHARDS;
    let shard_dir = dir.join("shards");
    std::fs::create_dir_all(&shard_dir).unwrap();
    for s in 0..N_SHARDS {
        let t = synth_table(&format!("shard_{s:02}"), shard_rows, 100 + s as u64);
        let f = std::fs::File::create(shard_dir.join(format!("{}.csv", t.name()))).unwrap();
        write_csv(&t, f).unwrap();
    }
    // Since PR 5 `from_dir` persists a `_catalog.arda` that would turn
    // every iteration after the first into a warm (zero-header-read)
    // scan; delete it inside the loop so this metric stays what the PR 4
    // baseline recorded — the cold, headers-only manifest scan. The warm
    // path has its own metric in `bench_pr5`.
    let catalog_path = shard_dir.join(arda_discovery::CATALOG_FILE);
    let manifest = time_op("manifest_scan", WINDOW_SECS, &mut || {
        std::fs::remove_file(&catalog_path).ok();
        black_box(Repository::from_dir(&shard_dir).unwrap());
    });
    println!(
        "  manifest_scan: {:.1} scans/sec over {N_SHARDS} shards (headers only)",
        manifest.ops_per_sec
    );
    let lazy_load = sweep_rows("shard_lazy_load_all", &counts, N_ROWS, || {
        let repo = Repository::from_dir(&shard_dir).unwrap();
        let indices: Vec<usize> = (0..repo.len()).collect();
        // Load every shard through the lazy path, fanned out like
        // discovery does.
        black_box(arda_par::par_map(&indices, 0, |_, &i| {
            repo.table(i).unwrap().n_rows()
        }));
    });
    sweeps.push(lazy_load);
    std::fs::remove_dir_all(&dir).ok();

    // ---- JSON report -----------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str("  \"pr\": 4,\n");
    json.push_str(&format!("  \"available_parallelism\": {avail},\n"));
    json.push_str(&format!("  \"workload_rows\": {N_ROWS},\n"));
    json.push_str(&format!("  \"workload_bytes\": {bytes},\n"));
    json.push_str(&format!("  \"n_shards\": {N_SHARDS},\n"));
    json.push_str(&format!(
        "  \"thread_counts\": [{}],\n",
        counts
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!(
        "  \"manifest_scans_per_sec\": {:.4},\n",
        manifest.ops_per_sec
    ));
    json.push_str("  \"benchmarks\": [\n");
    for (i, s) in sweeps.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": \"{}\",\n", s.name));
        json.push_str("      \"rows_per_sec\": {");
        let cells: Vec<String> = s
            .by_threads
            .iter()
            .map(|(t, o)| format!("\"{t}\": {o:.1}"))
            .collect();
        json.push_str(&cells.join(", "));
        json.push_str("},\n");
        json.push_str(&format!(
            "      \"speedup_best_vs_1\": {:.4}\n",
            s.speedup()
        ));
        json.push_str(if i + 1 < sweeps.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_PR4.json", &json).expect("write BENCH_PR4.json");
    println!("\nwrote BENCH_PR4.json");
    for s in &sweeps {
        println!(
            "  {:24} best-vs-1-thread speedup: {:.2}x",
            s.name,
            s.speedup()
        );
    }
}
