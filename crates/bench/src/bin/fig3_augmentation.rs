//! **Figure 3**: achieved augmentation (% improvement over the base-table
//! score with the default estimator) and wall time per system, on the five
//! real-world scenarios.
//!
//! Systems: ARDA (RIFS), all tables (full materialization, no selection),
//! AutoML-lite on all features, AutoML-lite on the base table, the base
//! table itself (0% reference) and the TR rule as a stand-alone filter.

use arda_bench::*;
use arda_core::{ArdaConfig, JoinPlan};
use arda_select::SelectorKind;
use std::time::{Duration, Instant};

fn main() {
    let scale = bench_scale();
    let rifs = bench_rifs(scale);
    let mut rows: Vec<Vec<String>> = Vec::new();

    for scenario in real_world_scenarios(scale) {
        // ARDA (RIFS, budget join).
        let arda = run_pipeline(
            &scenario,
            ArdaConfig {
                selector: SelectorKind::Rifs(rifs.clone()),
                ..Default::default()
            },
        );
        let base_score = arda.base_score;
        let pct = |s: f64| {
            if base_score.abs() < 1e-12 {
                0.0
            } else {
                (s - base_score) / base_score.abs() * 100.0
            }
        };

        // All tables, no selection.
        let all = run_pipeline(
            &scenario,
            ArdaConfig {
                selector: SelectorKind::AllFeatures,
                join_plan: JoinPlan::FullMaterialization,
                ..Default::default()
            },
        );

        // TR rule as a stand-alone filter (τ = 20, Kumar et al.'s default).
        let tr = run_pipeline(
            &scenario,
            ArdaConfig {
                selector: SelectorKind::AllFeatures,
                join_plan: JoinPlan::FullMaterialization,
                tr_threshold: Some(20.0),
                ..Default::default()
            },
        );

        // AutoML-lite comparators (time-budgeted model search).
        let budget = Duration::from_secs(match scale {
            Scale::Quick => 10,
            Scale::Full => 60,
        });
        let t0 = Instant::now();
        let base_ds = arda_ml::featurize(
            &scenario.base,
            &scenario.target,
            false,
            &arda_ml::FeaturizeOptions::default(),
        )
        .unwrap();
        let automl_base = arda_core::automl_search(&base_ds, budget, 7).unwrap();
        let automl_base_secs = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let full_ds = full_materialized_dataset(&scenario, 7);
        let automl_all = arda_core::automl_search(&full_ds, budget, 7).unwrap();
        let automl_all_secs = t1.elapsed().as_secs_f64();

        for (system, score, secs) in [
            ("ARDA (RIFS)", arda.augmented_score, arda.seconds),
            ("all tables", all.augmented_score, all.seconds),
            ("TR rule", tr.augmented_score, tr.seconds),
            ("AutoML (all)", automl_all.best_score, automl_all_secs),
            ("AutoML (base)", automl_base.best_score, automl_base_secs),
            ("base table", base_score, 0.0),
        ] {
            rows.push(vec![
                scenario.name.clone(),
                system.to_string(),
                format!("{score:.3}"),
                format!("{:+.1}", pct(score)),
                format!("{secs:.1}"),
            ]);
        }
    }

    print_table(
        "Figure 3 — achieved augmentation (% improvement over base) and time",
        &["dataset", "system", "score", "improv %", "time (s)"],
        &rows,
    );
}
