//! PR 5 storage sweep: typed binary columnar shards vs CSV — ingest and
//! write throughput at worker counts 1 → max — plus the persistent-catalog
//! manifest scan, cold vs warm. Writes `BENCH_PR5.json` so future PRs can
//! compare against a recorded baseline (CI uploads it alongside
//! `BENCH_PR1.json` / `BENCH_PR4.json`).
//!
//! ```text
//! cargo run --release -p arda-bench --bin bench_pr5
//! ```
//!
//! * **csv_read / csv_write** — the streaming CSV engine (64 KiB chunks,
//!   two passes: parallel inference, parallel typed build).
//! * **arda_read / arda_write** — the binary shard store: no parsing, no
//!   inference; per-column regions decode/encode in parallel. Dtypes
//!   (Timestamps included) survive bit-exactly.
//! * **catalog_cold / catalog_warm** — `Repository::from_dir` over a
//!   directory of binary shards with the `_catalog.arda` removed before
//!   every scan (cold: one header read per shard + catalog rewrite) vs
//!   left in place (warm: zero per-shard reads).
//!
//! Outputs are bit-identical across formats, budgets and catalog states
//! (`crates/table/tests/store_roundtrip.rs`, `arda-discovery` tests); only
//! the wall-clock changes. On a single-core host the sweep degenerates
//! gracefully — `speedup` is then bounded by `available_parallelism`,
//! which the JSON records.

use arda_bench::timing::time_op;
use arda_discovery::Repository;
use arda_table::{
    read_arda_bytes, read_csv_str_with, write_arda, write_csv, Column, CsvReadOptions, Table,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const WINDOW_SECS: f64 = 0.6;
const N_ROWS: usize = 120_000;
const N_SHARDS: usize = 24;

/// Mixed-dtype workload: every column type (Timestamp included — the
/// round-trip PR 5 fixes), nulls, and hostile strings that keep the CSV
/// quote-aware scanner honest.
fn synth_table(name: &str, rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let strs: Vec<Option<String>> = (0..rows)
        .map(|i| {
            if i % 23 == 0 {
                None
            } else {
                Some(match i % 5 {
                    0 => format!("plain_{i}"),
                    1 => format!("with,comma_{i}"),
                    2 => format!("say \"hi\" {i}"),
                    3 => format!("line\nbreak_{i}"),
                    _ => format!("αβ🦀_{i}"),
                })
            }
        })
        .collect();
    Table::new(
        name,
        vec![
            Column::from_i64("id", (0..rows as i64).collect()),
            Column::from_timestamps("ts", (0..rows).map(|i| i as i64 * 3_600).collect()),
            Column::from_f64("x", (0..rows).map(|_| rng.gen_range(-1e3..1e3)).collect()),
            Column::from_f64_opt(
                "y",
                (0..rows)
                    .map(|i| (i % 17 != 0).then(|| rng.gen_range(0.0..1.0)))
                    .collect(),
            ),
            Column::from_i64("k", (0..rows).map(|_| rng.gen_range(0i64..500)).collect()),
            Column::from_bool("flag", (0..rows).map(|i| i % 3 == 0).collect()),
            Column::new("s", arda_table::ColumnData::Str(strs)),
            Column::from_i64("g", (0..rows).map(|i| (i % 97) as i64).collect()),
        ],
    )
    .unwrap()
}

fn to_csv(table: &Table) -> String {
    let mut buf = Vec::new();
    write_csv(table, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

fn to_arda(table: &Table) -> Vec<u8> {
    let mut buf = Vec::new();
    write_arda(table, &mut buf).unwrap();
    buf
}

struct Sweep {
    name: String,
    /// (threads, rows/sec) per swept worker count.
    by_threads: Vec<(usize, f64)>,
}

impl Sweep {
    fn speedup(&self) -> f64 {
        let one = self
            .by_threads
            .iter()
            .find(|(t, _)| *t == 1)
            .map_or(0.0, |(_, o)| *o);
        let best = self
            .by_threads
            .iter()
            .map(|(_, o)| *o)
            .fold(0.0f64, f64::max);
        if one > 0.0 {
            best / one
        } else {
            0.0
        }
    }
}

fn sweep_rows(name: &str, counts: &[usize], rows_per_op: usize, mut f: impl FnMut()) -> Sweep {
    let mut by_threads = Vec::new();
    for &t in counts {
        arda_par::set_default_threads(t);
        let m = time_op(name, WINDOW_SECS, &mut f);
        let rows_per_sec = m.ops_per_sec * rows_per_op as f64;
        println!("  {name} @ {t} threads: {rows_per_sec:.0} rows/sec");
        by_threads.push((t, rows_per_sec));
    }
    Sweep {
        name: name.to_string(),
        by_threads,
    }
}

fn main() {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1usize, 2, 4, avail];
    counts.sort_unstable();
    counts.dedup();
    println!("bench_pr5: binary store vs CSV, worker counts {counts:?} (available: {avail})");

    let table = synth_table("ingest", N_ROWS, 42);
    let csv_text = to_csv(&table);
    let arda_bytes = to_arda(&table);
    println!(
        "workload: {N_ROWS} rows × {} cols — {:.1} MiB CSV, {:.1} MiB binary",
        table.n_cols(),
        csv_text.len() as f64 / (1024.0 * 1024.0),
        arda_bytes.len() as f64 / (1024.0 * 1024.0),
    );

    // Cross-check once: the binary store round-trips bit-exactly (dtypes
    // included), and re-encoding reproduces the byte stream.
    let decoded = read_arda_bytes("ingest", &arda_bytes).unwrap();
    assert_eq!(decoded.schema(), table.schema(), "dtypes preserved");
    assert_eq!(to_arda(&decoded), arda_bytes, "decode∘encode is identity");

    // ---- In-memory read/write sweeps -------------------------------------
    let mut sweeps: Vec<Sweep> = Vec::new();
    sweeps.push(sweep_rows("csv_read", &counts, N_ROWS, || {
        black_box(read_csv_str_with("t", &csv_text, &CsvReadOptions::default()).unwrap());
    }));
    sweeps.push(sweep_rows("arda_read", &counts, N_ROWS, || {
        black_box(read_arda_bytes("t", &arda_bytes).unwrap());
    }));
    sweeps.push(sweep_rows("csv_write", &counts, N_ROWS, || {
        black_box(to_csv(&table));
    }));
    sweeps.push(sweep_rows("arda_write", &counts, N_ROWS, || {
        black_box(to_arda(&table));
    }));

    // ---- Catalog: cold vs warm manifest scan -----------------------------
    arda_par::set_default_threads(avail);
    let dir = std::env::temp_dir().join(format!("arda_bench_pr5_{}", std::process::id()));
    let shard_dir = dir.join("shards");
    std::fs::create_dir_all(&shard_dir).unwrap();
    let shard_rows = N_ROWS / N_SHARDS;
    {
        let src = Repository::from_tables(
            (0..N_SHARDS)
                .map(|s| synth_table(&format!("shard_{s:02}"), shard_rows, 100 + s as u64))
                .collect(),
        );
        src.save_dir(&shard_dir).unwrap();
    }
    let catalog_path = shard_dir.join(arda_discovery::CATALOG_FILE);
    let cold = time_op("catalog_cold", WINDOW_SECS, &mut || {
        std::fs::remove_file(&catalog_path).ok();
        let repo = Repository::from_dir(&shard_dir).unwrap();
        assert!(!repo.catalog_hit() && repo.header_scans() == N_SHARDS);
        black_box(repo.len());
    });
    let warm = time_op("catalog_warm", WINDOW_SECS, &mut || {
        let repo = Repository::from_dir(&shard_dir).unwrap();
        assert!(repo.catalog_hit() && repo.header_scans() == 0);
        black_box(repo.len());
    });
    println!(
        "  catalog over {N_SHARDS} shards: cold {:.1} scans/sec, warm {:.1} scans/sec ({:.2}x)",
        cold.ops_per_sec,
        warm.ops_per_sec,
        warm.ops_per_sec / cold.ops_per_sec.max(1e-12)
    );
    std::fs::remove_dir_all(&dir).ok();

    // ---- JSON report -----------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str("  \"pr\": 5,\n");
    json.push_str(&format!("  \"available_parallelism\": {avail},\n"));
    json.push_str(&format!("  \"workload_rows\": {N_ROWS},\n"));
    json.push_str(&format!("  \"csv_bytes\": {},\n", csv_text.len()));
    json.push_str(&format!("  \"arda_bytes\": {},\n", arda_bytes.len()));
    json.push_str(&format!("  \"n_shards\": {N_SHARDS},\n"));
    json.push_str(&format!(
        "  \"thread_counts\": [{}],\n",
        counts
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!(
        "  \"catalog_cold_scans_per_sec\": {:.4},\n",
        cold.ops_per_sec
    ));
    json.push_str(&format!(
        "  \"catalog_warm_scans_per_sec\": {:.4},\n",
        warm.ops_per_sec
    ));
    json.push_str("  \"benchmarks\": [\n");
    for (i, s) in sweeps.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": \"{}\",\n", s.name));
        json.push_str("      \"rows_per_sec\": {");
        let cells: Vec<String> = s
            .by_threads
            .iter()
            .map(|(t, o)| format!("\"{t}\": {o:.1}"))
            .collect();
        json.push_str(&cells.join(", "));
        json.push_str("},\n");
        json.push_str(&format!(
            "      \"speedup_best_vs_1\": {:.4}\n",
            s.speedup()
        ));
        json.push_str(if i + 1 < sweeps.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_PR5.json", &json).expect("write BENCH_PR5.json");
    println!("\nwrote BENCH_PR5.json");
    let vs = |a: &str, b: &str| -> f64 {
        let best = |n: &str| {
            sweeps
                .iter()
                .find(|s| s.name == n)
                .map(|s| s.by_threads.iter().map(|(_, o)| *o).fold(0.0f64, f64::max))
                .unwrap_or(0.0)
        };
        best(a) / best(b).max(1e-12)
    };
    println!("  binary vs CSV read:  {:.2}x", vs("arda_read", "csv_read"));
    println!(
        "  binary vs CSV write: {:.2}x",
        vs("arda_write", "csv_write")
    );
    for s in &sweeps {
        println!(
            "  {:12} best-vs-1-thread speedup: {:.2}x",
            s.name,
            s.speedup()
        );
    }
}
