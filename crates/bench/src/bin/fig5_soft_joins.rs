//! **Figure 5**: soft-join strategies for time-series keys on Pickup and
//! Taxi, across feature selectors. Strategies: plain hard join, nearest
//! neighbour, two-way nearest neighbour, and time-resampled hard join.
//! Expected shape: on Pickup (mid-hour keys, smooth signal) the two-way NN
//! interpolation wins; on Taxi (day-aligned keys) the time-resampled hard
//! join wins.

use arda_bench::*;
use arda_join::impute::impute;
use arda_join::{execute_join, JoinKind, JoinSpec, SoftMethod};
use arda_ml::{featurize, FeaturizeOptions};
use arda_select::{run_selector, SelectionContext};
use arda_synth::{pickup, taxi, Scenario, ScenarioConfig};
use arda_table::Table;

fn strategies() -> Vec<(&'static str, JoinKind)> {
    vec![
        ("hard", JoinKind::Hard),
        (
            "nearest",
            JoinKind::SoftTimeResampled(SoftMethod::Nearest { tolerance: None }),
        ),
        (
            "2-way nearest",
            JoinKind::SoftTimeResampled(SoftMethod::TwoWayNearest),
        ),
        ("time-resampled", JoinKind::HardTimeResampled),
    ]
}

fn run_dataset(
    scenario: &Scenario,
    weather_name: &str,
    key: (&str, &str),
    rows: &mut Vec<Vec<String>>,
    scale: Scale,
) {
    let weather: &Table = scenario.table(weather_name).expect("signal table");
    for (strategy, kind) in strategies() {
        let spec = JoinSpec {
            base_keys: vec![key.0.to_string()],
            foreign_keys: vec![key.1.to_string()],
            kind,
        };
        let joined = execute_join(&scenario.base, weather, &spec, 61).unwrap();
        let (imputed, _) = impute(&joined, 61).unwrap();
        let ds = featurize(
            &imputed,
            &scenario.target,
            false,
            &FeaturizeOptions::default(),
        )
        .unwrap();
        for (sel_name, selector) in selector_grid(ds.task, scale, false) {
            let ctx = SelectionContext::standard(&ds, 61);
            let sel = run_selector(&ds, &selector, &ctx).unwrap();
            let (_, err) = evaluate_subset(&ds, &sel.selected, 61);
            rows.push(vec![
                scenario.name.clone(),
                strategy.to_string(),
                sel_name,
                format!("{err:.3}"),
            ]);
        }
    }
}

fn main() {
    let scale = bench_scale();
    let mut rows: Vec<Vec<String>> = Vec::new();

    let p = pickup(&ScenarioConfig {
        n_rows: 360,
        n_decoys: 0,
        seed: 61,
    });
    run_dataset(&p, "weather_minute", ("time", "time"), &mut rows, scale);

    let t = taxi(&ScenarioConfig {
        n_rows: 360,
        n_decoys: 0,
        seed: 62,
    });
    run_dataset(&t, "weather", ("date", "date"), &mut rows, scale);

    print_table(
        "Figure 5 — time-series soft-join strategies (error = MAE; lower is better)",
        &["dataset", "strategy", "selector", "error"],
        &rows,
    );
}
