//! Hard-key LEFT joins (hash join on exact key equality).

use crate::Result;
use arda_table::{GroupBy, Key, Table};
use std::collections::HashMap;

/// Base rows below which the probe scan stays sequential.
const PAR_MIN_ROWS: usize = 4_096;

/// Pre-aggregate `foreign` on its key columns so every key maps to exactly
/// one row (ARDA §4 "Join Cardinality": one-to-many / many-to-many joins are
/// reduced to to-one joins by aggregating the foreign side). Numeric columns
/// take group means, categoricals take the group mode; the per-column
/// aggregation scans fan out on the ambient `arda-par` work budget inside
/// [`GroupBy::aggregate`]. Tables whose keys are already unique are
/// returned as-is (cheap check first).
pub fn pre_aggregate(foreign: &Table, keys: &[&str]) -> Result<Table> {
    let key_values = foreign.keys(keys)?;
    let mut seen: std::collections::HashSet<&Key> = std::collections::HashSet::new();
    let mut duplicated = false;
    for k in key_values.iter().flatten() {
        if !seen.insert(k) {
            duplicated = true;
            break;
        }
    }
    if !duplicated {
        return Ok(foreign.clone());
    }
    Ok(GroupBy::new(foreign, keys)?.aggregate_default()?)
}

/// LEFT join `base` with `foreign` on exact key equality.
///
/// * Every base row is preserved exactly once (the paper's hard requirement).
/// * The foreign table is pre-aggregated on its keys first, so duplicate
///   foreign keys can never fan out base rows.
/// * Foreign *key* columns are dropped from the output (they duplicate the
///   base keys); remaining columns are appended, renamed on collision.
/// * Unmatched base rows get nulls (imputation handles them later).
pub fn left_hard_join(
    base: &Table,
    foreign: &Table,
    base_keys: &[&str],
    foreign_keys: &[&str],
) -> Result<Table> {
    let foreign = pre_aggregate(foreign, foreign_keys)?;

    // Map foreign key → row index (keys are unique after pre-aggregation).
    let fkeys = foreign.keys(foreign_keys)?;
    let mut index: HashMap<Key, usize> = HashMap::with_capacity(fkeys.len());
    for (row, key) in fkeys.into_iter().enumerate() {
        if let Some(k) = key {
            index.entry(k).or_insert(row);
        }
    }

    // Probe scan: each base row's lookup is independent, so large bases
    // fan out on the ambient work budget (results stay in row order).
    let bkeys = base.keys(base_keys)?;
    let threads = arda_par::threads_for(0, bkeys.len(), PAR_MIN_ROWS);
    let matches: Vec<Option<usize>> = arda_par::par_map(&bkeys, threads, |_, k| {
        k.as_ref().and_then(|k| index.get(k).copied())
    });

    // Gather matched foreign rows (nulls where unmatched), minus key columns.
    let value_names: Vec<&str> = foreign
        .columns()
        .iter()
        .map(|c| c.name())
        .filter(|n| !foreign_keys.contains(n))
        .collect();
    let gathered = foreign.take_opt(&matches)?;
    let values = gathered.select(&value_names)?;
    Ok(base.hstack(&values)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arda_table::{Column, Value};

    fn base() -> Table {
        Table::new(
            "base",
            vec![
                Column::from_str("city", vec!["nyc", "bos", "nyc", "sfo"]),
                Column::from_f64("target", vec![1.0, 2.0, 3.0, 4.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn joins_and_preserves_base_rows() {
        let foreign = Table::new(
            "pop",
            vec![
                Column::from_str("city", vec!["nyc", "bos"]),
                Column::from_f64("population", vec![8.4, 0.7]),
            ],
        )
        .unwrap();
        let out = left_hard_join(&base(), &foreign, &["city"], &["city"]).unwrap();
        assert_eq!(out.n_rows(), 4);
        let p = out.column("population").unwrap();
        assert_eq!(p.get_f64(0), Some(8.4));
        assert_eq!(p.get_f64(1), Some(0.7));
        assert_eq!(p.get_f64(2), Some(8.4));
        assert!(p.get(3).is_null(), "sfo has no match → null");
        // Foreign key column is not duplicated.
        assert_eq!(out.n_cols(), 3);
    }

    #[test]
    fn one_to_many_pre_aggregates_instead_of_duplicating() {
        let foreign = Table::new(
            "sales",
            vec![
                Column::from_str("city", vec!["nyc", "nyc", "bos"]),
                Column::from_f64("amount", vec![10.0, 30.0, 5.0]),
            ],
        )
        .unwrap();
        let out = left_hard_join(&base(), &foreign, &["city"], &["city"]).unwrap();
        assert_eq!(out.n_rows(), 4, "base rows must never fan out");
        // nyc amount = mean(10, 30) = 20.
        assert_eq!(out.column("amount").unwrap().get_f64(0), Some(20.0));
    }

    #[test]
    fn composite_keys() {
        let b = Table::new(
            "b",
            vec![
                Column::from_i64("a", vec![1, 1, 2]),
                Column::from_i64("b", vec![1, 2, 1]),
            ],
        )
        .unwrap();
        let f = Table::new(
            "f",
            vec![
                Column::from_i64("a", vec![1, 2]),
                Column::from_i64("b", vec![2, 1]),
                Column::from_f64("v", vec![12.0, 21.0]),
            ],
        )
        .unwrap();
        let out = left_hard_join(&b, &f, &["a", "b"], &["a", "b"]).unwrap();
        let v = out.column("v").unwrap();
        assert!(v.get(0).is_null());
        assert_eq!(v.get_f64(1), Some(12.0));
        assert_eq!(v.get_f64(2), Some(21.0));
    }

    #[test]
    fn null_keys_never_match() {
        let b = Table::new("b", vec![Column::from_i64_opt("k", vec![Some(1), None])]).unwrap();
        let f = Table::new(
            "f",
            vec![
                Column::from_i64_opt("k", vec![Some(1), None]),
                Column::from_f64("v", vec![1.0, 99.0]),
            ],
        )
        .unwrap();
        let out = left_hard_join(&b, &f, &["k"], &["k"]).unwrap();
        assert_eq!(out.column("v").unwrap().get_f64(0), Some(1.0));
        assert!(
            out.column("v").unwrap().get(1).is_null(),
            "null keys must not match null keys"
        );
    }

    #[test]
    fn name_collisions_are_prefixed() {
        let foreign = Table::new(
            "ext",
            vec![
                Column::from_str("city", vec!["nyc"]),
                Column::from_f64("target", vec![0.5]),
            ],
        )
        .unwrap();
        let out = left_hard_join(&base(), &foreign, &["city"], &["city"]).unwrap();
        assert!(out.column("ext.target").is_ok());
        assert_eq!(
            out.column("target").unwrap().get_f64(0),
            Some(1.0),
            "base column unchanged"
        );
    }

    #[test]
    fn pre_aggregate_noop_for_unique_keys() {
        let foreign = Table::new(
            "f",
            vec![
                Column::from_i64("k", vec![1, 2]),
                Column::from_str("c", vec!["a", "b"]),
            ],
        )
        .unwrap();
        let agg = pre_aggregate(&foreign, &["k"]).unwrap();
        assert_eq!(agg, foreign);
    }

    #[test]
    fn pre_aggregate_mode_for_categoricals() {
        let foreign = Table::new(
            "f",
            vec![
                Column::from_i64("k", vec![1, 1, 1]),
                Column::from_str("c", vec!["x", "y", "x"]),
            ],
        )
        .unwrap();
        let agg = pre_aggregate(&foreign, &["k"]).unwrap();
        assert_eq!(agg.n_rows(), 1);
        assert_eq!(agg.column("c").unwrap().get(0), Value::Str("x".into()));
    }

    #[test]
    fn missing_key_column_errors() {
        let f = Table::new("f", vec![Column::from_i64("k", vec![1])]).unwrap();
        assert!(left_hard_join(&base(), &f, &["nope"], &["k"]).is_err());
        assert!(left_hard_join(&base(), &f, &["city"], &["nope"]).is_err());
    }
}
