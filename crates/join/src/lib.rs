//! # arda-join
//!
//! Join execution for the ARDA reproduction (§4 of the paper).
//!
//! ARDA's join machinery must (1) preserve every base-table row — only LEFT
//! joins are admissible — (2) join on *hard* keys (exact equality, single or
//! composite) and *soft* keys (numeric/time keys joined by proximity), (3)
//! fix join cardinality by pre-aggregating foreign tables so one-to-many and
//! many-to-many joins never duplicate training rows, (4) align mismatched
//! time granularities by resampling, and (5) impute the missing values that
//! LEFT-join semantics introduce.
//!
//! Public surface:
//!
//! * [`JoinSpec`] / [`JoinKind`] / [`SoftMethod`] — a declarative description
//!   of one candidate join.
//! * [`execute_join`] — run a spec: pre-aggregate, (optionally) resample,
//!   join, and drop duplicated key columns.
//! * [`hard::left_hard_join`], [`soft::nearest_join`],
//!   [`soft::two_way_nearest_join`] — the individual algorithms.
//! * [`resample::detect_granularity`] / [`resample::resample_to_granularity`]
//!   — time alignment.
//! * [`impute::impute`] — median / uniform-random imputation (§4
//!   "Imputation").

pub mod hard;
pub mod impute;
pub mod resample;
pub mod soft;
pub mod stats;

use arda_table::{Table, TableError};

/// Strategy for joining on a soft (numeric / time) key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SoftMethod {
    /// Join each base row with the single nearest foreign row; when
    /// `tolerance` is set and the nearest row is farther away, null-fill.
    Nearest {
        /// Maximum admissible key distance.
        tolerance: Option<f64>,
    },
    /// Interpolate between the nearest foreign rows below and above the base
    /// key (λ-weighted linear interpolation on numeric columns, uniform
    /// random choice for categoricals).
    TwoWayNearest,
}

/// How a candidate join should be executed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JoinKind {
    /// Exact key equality (hash join).
    Hard,
    /// Proximity join on a single numeric/time key.
    Soft(SoftMethod),
    /// Resample the foreign table to the base key granularity, then hard
    /// join (the paper's preferred strategy for day-level Taxi data).
    HardTimeResampled,
    /// Resample, then soft join.
    SoftTimeResampled(SoftMethod),
}

/// A fully specified candidate join.
#[derive(Debug, Clone)]
pub struct JoinSpec {
    /// Key column names in the base table.
    pub base_keys: Vec<String>,
    /// Matching key column names in the foreign table.
    pub foreign_keys: Vec<String>,
    /// Join algorithm.
    pub kind: JoinKind,
}

impl JoinSpec {
    /// Hard equi-join on a single key pair.
    pub fn hard(base_key: impl Into<String>, foreign_key: impl Into<String>) -> Self {
        JoinSpec {
            base_keys: vec![base_key.into()],
            foreign_keys: vec![foreign_key.into()],
            kind: JoinKind::Hard,
        }
    }

    /// Soft join on a single key pair.
    pub fn soft(
        base_key: impl Into<String>,
        foreign_key: impl Into<String>,
        method: SoftMethod,
    ) -> Self {
        JoinSpec {
            base_keys: vec![base_key.into()],
            foreign_keys: vec![foreign_key.into()],
            kind: JoinKind::Soft(method),
        }
    }
}

/// Error type for join execution.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinError {
    /// Underlying table operation failed.
    Table(TableError),
    /// The spec is inconsistent (key counts, soft join on composite key...).
    InvalidSpec(String),
    /// A soft join requires a numeric key.
    NonNumericSoftKey(String),
}

impl From<TableError> for JoinError {
    fn from(e: TableError) -> Self {
        JoinError::Table(e)
    }
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::Table(e) => write!(f, "table error: {e}"),
            JoinError::InvalidSpec(msg) => write!(f, "invalid join spec: {msg}"),
            JoinError::NonNumericSoftKey(col) => {
                write!(f, "soft join requires a numeric key, got column {col}")
            }
        }
    }
}

impl std::error::Error for JoinError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, JoinError>;

/// Execute a candidate join, returning the augmented table.
///
/// The base table's rows (count and order) are always preserved; foreign
/// non-key columns are appended, renamed on collision. The foreign table is
/// pre-aggregated on its keys first, so to-many joins cannot duplicate rows.
/// `seed` drives the random choices of categorical interpolation.
pub fn execute_join(base: &Table, foreign: &Table, spec: &JoinSpec, seed: u64) -> Result<Table> {
    execute_join_threads(base, foreign, spec, seed, 0)
}

/// [`execute_join`] with an explicit cap on the join's internal worker
/// count (`0` = the ambient `arda-par` work budget). Callers that already
/// fan out over candidate joins (the pipeline's batch executor) can leave
/// the cap at 0: each join plans with its split of the shared budget, so
/// nesting cannot oversubscribe.
pub fn execute_join_threads(
    base: &Table,
    foreign: &Table,
    spec: &JoinSpec,
    seed: u64,
    threads: usize,
) -> Result<Table> {
    if spec.base_keys.len() != spec.foreign_keys.len() || spec.base_keys.is_empty() {
        return Err(JoinError::InvalidSpec(format!(
            "{} base keys vs {} foreign keys",
            spec.base_keys.len(),
            spec.foreign_keys.len()
        )));
    }
    let base_keys: Vec<&str> = spec.base_keys.iter().map(String::as_str).collect();
    let foreign_keys: Vec<&str> = spec.foreign_keys.iter().map(String::as_str).collect();

    match spec.kind {
        JoinKind::Hard => hard::left_hard_join(base, foreign, &base_keys, &foreign_keys),
        JoinKind::Soft(method) => {
            let (bk, fk) = single_key(&base_keys, &foreign_keys)?;
            match method {
                SoftMethod::Nearest { tolerance } => {
                    soft::nearest_join_threads(base, foreign, bk, fk, tolerance, threads)
                }
                SoftMethod::TwoWayNearest => {
                    soft::two_way_nearest_join_threads(base, foreign, bk, fk, seed, threads)
                }
            }
        }
        JoinKind::HardTimeResampled => {
            let (bk, fk) = single_key(&base_keys, &foreign_keys)?;
            let resampled = resample::resample_to_base(base, foreign, bk, fk)?;
            hard::left_hard_join(base, &resampled, &[bk], &[fk])
        }
        JoinKind::SoftTimeResampled(method) => {
            let (bk, fk) = single_key(&base_keys, &foreign_keys)?;
            let resampled = resample::resample_to_base(base, foreign, bk, fk)?;
            match method {
                SoftMethod::Nearest { tolerance } => {
                    soft::nearest_join_threads(base, &resampled, bk, fk, tolerance, threads)
                }
                SoftMethod::TwoWayNearest => {
                    soft::two_way_nearest_join_threads(base, &resampled, bk, fk, seed, threads)
                }
            }
        }
    }
}

fn single_key<'a>(base: &[&'a str], foreign: &[&'a str]) -> Result<(&'a str, &'a str)> {
    if base.len() != 1 {
        return Err(JoinError::InvalidSpec(
            "soft / resampled joins require a single key column".into(),
        ));
    }
    Ok((base[0], foreign[0]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arda_table::Column;

    fn base() -> Table {
        Table::new(
            "base",
            vec![
                Column::from_i64("id", vec![1, 2, 3]),
                Column::from_f64("v", vec![0.1, 0.2, 0.3]),
            ],
        )
        .unwrap()
    }

    fn foreign() -> Table {
        Table::new(
            "ext",
            vec![
                Column::from_i64("fid", vec![3, 1]),
                Column::from_f64("w", vec![30.0, 10.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn execute_hard_spec() {
        let out = execute_join(&base(), &foreign(), &JoinSpec::hard("id", "fid"), 0).unwrap();
        assert_eq!(out.n_rows(), 3);
        let w = out.column("w").unwrap();
        assert_eq!(w.get_f64(0), Some(10.0));
        assert!(w.get(1).is_null());
        assert_eq!(w.get_f64(2), Some(30.0));
    }

    #[test]
    fn key_count_mismatch_rejected() {
        let spec = JoinSpec {
            base_keys: vec!["id".into(), "v".into()],
            foreign_keys: vec!["fid".into()],
            kind: JoinKind::Hard,
        };
        assert!(execute_join(&base(), &foreign(), &spec, 0).is_err());
    }

    #[test]
    fn soft_spec_requires_single_key() {
        let spec = JoinSpec {
            base_keys: vec!["id".into(), "v".into()],
            foreign_keys: vec!["fid".into(), "w".into()],
            kind: JoinKind::Soft(SoftMethod::TwoWayNearest),
        };
        assert!(matches!(
            execute_join(&base(), &foreign(), &spec, 0),
            Err(JoinError::InvalidSpec(_))
        ));
    }

    #[test]
    fn execute_soft_nearest_spec() {
        let spec = JoinSpec::soft("id", "fid", SoftMethod::Nearest { tolerance: None });
        let out = execute_join(&base(), &foreign(), &spec, 0).unwrap();
        assert_eq!(out.n_rows(), 3);
        // id=2 joins with nearest foreign key (1 or 3; tie → lower).
        assert!(out.column("w").unwrap().get_f64(1).is_some());
    }

    #[test]
    fn error_display() {
        let e = JoinError::NonNumericSoftKey("name".into());
        assert!(e.to_string().contains("name"));
        let e2: JoinError = TableError::ColumnNotFound("x".into()).into();
        assert!(e2.to_string().contains("x"));
    }
}
