//! Time-granularity detection and resampling (ARDA §4 "Time-Resampling").
//!
//! When the base table carries day-level timestamps and a foreign table
//! carries minute-level ones, a plain join either misses matches or joins a
//! single arbitrary row. ARDA instead detects the coarser granularity and
//! aggregates the foreign table over each coarse bucket before joining.

use crate::{JoinError, Result};
use arda_table::{Column, ColumnData, DataType, GroupBy, Table};

/// Estimate the key granularity as the GCD of the gaps between consecutive
/// distinct (integer) key values — e.g. daily timestamps in seconds yield
/// 86 400. Returns 1 for fewer than two distinct keys or non-integral gaps.
pub fn detect_granularity(values: &[i64]) -> i64 {
    let mut distinct: Vec<i64> = values.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    if distinct.len() < 2 {
        return 1;
    }
    fn gcd(a: i64, b: i64) -> i64 {
        if b == 0 {
            a.abs()
        } else {
            gcd(b, a % b)
        }
    }
    let mut g = 0i64;
    for w in distinct.windows(2) {
        g = gcd(g, w[1] - w[0]);
        if g == 1 {
            return 1;
        }
    }
    g.max(1)
}

/// Integer key values of a (numeric) column, skipping nulls.
fn integer_keys(table: &Table, key: &str) -> Result<Vec<i64>> {
    let col = table.column(key)?;
    if !col.dtype().is_numeric() {
        return Err(JoinError::NonNumericSoftKey(key.to_string()));
    }
    Ok((0..table.n_rows())
        .filter_map(|i| col.get_f64(i).map(|v| v.round() as i64))
        .collect())
}

/// Bucket each foreign key down to the base granularity and aggregate all
/// non-key columns per bucket (mean / mode). When the base granularity is
/// not coarser than the foreign one the table is returned unchanged.
pub fn resample_to_granularity(
    foreign: &Table,
    foreign_key: &str,
    granularity: i64,
) -> Result<Table> {
    if granularity <= 1 {
        return Ok(foreign.clone());
    }
    let col = foreign.column(foreign_key)?;
    if !col.dtype().is_numeric() {
        return Err(JoinError::NonNumericSoftKey(foreign_key.to_string()));
    }
    let bucketed: Vec<Option<i64>> = (0..foreign.n_rows())
        .map(|i| {
            col.get_f64(i).map(|v| {
                let k = v.round() as i64;
                k.div_euclid(granularity) * granularity
            })
        })
        .collect();
    let bucket_col = match col.dtype() {
        DataType::Timestamp => Column::new(foreign_key, ColumnData::Timestamp(bucketed)),
        _ => Column::new(foreign_key, ColumnData::Int(bucketed)),
    };

    // Replace the key column with its bucketed version, then aggregate.
    let mut replaced = Table::empty(foreign.name().to_string());
    for c in foreign.columns() {
        if c.name() == foreign_key {
            replaced.add_column(bucket_col.clone())?;
        } else {
            replaced.add_column(c.clone())?;
        }
    }
    Ok(GroupBy::new(&replaced, &[foreign_key])?.aggregate_default()?)
}

/// Detect both granularities and resample `foreign` to the base's
/// granularity when the base is coarser (the paper's Taxi scenario:
/// day-level base, minute-level weather).
pub fn resample_to_base(
    base: &Table,
    foreign: &Table,
    base_key: &str,
    foreign_key: &str,
) -> Result<Table> {
    let g_base = detect_granularity(&integer_keys(base, base_key)?);
    let g_foreign = detect_granularity(&integer_keys(foreign, foreign_key)?);
    if g_base > g_foreign {
        resample_to_granularity(foreign, foreign_key, g_base)
    } else {
        Ok(foreign.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hard::left_hard_join;

    #[test]
    fn granularity_of_daily_keys() {
        let days: Vec<i64> = (0..10).map(|i| i * 86_400).collect();
        assert_eq!(detect_granularity(&days), 86_400);
    }

    #[test]
    fn granularity_of_mixed_keys_is_gcd() {
        assert_eq!(detect_granularity(&[0, 60, 180, 300]), 60);
        assert_eq!(detect_granularity(&[0, 7, 13]), 1);
        assert_eq!(detect_granularity(&[5]), 1);
        assert_eq!(detect_granularity(&[]), 1);
        assert_eq!(detect_granularity(&[10, 10, 10]), 1);
    }

    fn minute_weather() -> Table {
        // Two "days" of 3 readings each at granularity 10.
        Table::new(
            "weather",
            vec![
                Column::from_timestamps("time", vec![0, 10, 20, 100, 110, 120]),
                Column::from_f64("temp", vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn resample_aggregates_buckets() {
        let out = resample_to_granularity(&minute_weather(), "time", 100).unwrap();
        assert_eq!(out.n_rows(), 2);
        let t = out.sort_by("time").unwrap();
        assert_eq!(t.column("temp").unwrap().get_f64(0), Some(2.0)); // mean(1,2,3)
        assert_eq!(t.column("temp").unwrap().get_f64(1), Some(20.0)); // mean(10,20,30)
    }

    #[test]
    fn resample_noop_for_granularity_one() {
        let w = minute_weather();
        assert_eq!(resample_to_granularity(&w, "time", 1).unwrap(), w);
    }

    #[test]
    fn resample_to_base_detects_coarser_base() {
        let base = Table::new(
            "base",
            vec![
                Column::from_timestamps("day", vec![0, 100, 200]),
                Column::from_f64("y", vec![0.0, 1.0, 2.0]),
            ],
        )
        .unwrap();
        let resampled = resample_to_base(&base, &minute_weather(), "day", "time").unwrap();
        assert_eq!(resampled.n_rows(), 2);
        // End-to-end: hard join after resampling hits both days.
        let joined = left_hard_join(&base, &resampled, &["day"], &["time"]).unwrap();
        assert_eq!(joined.column("temp").unwrap().get_f64(0), Some(2.0));
        assert_eq!(joined.column("temp").unwrap().get_f64(1), Some(20.0));
        assert!(joined.column("temp").unwrap().get(2).is_null());
    }

    #[test]
    fn resample_to_base_noop_when_base_finer() {
        let base =
            Table::new("base", vec![Column::from_timestamps("t", vec![0, 1, 2, 3])]).unwrap();
        let out = resample_to_base(&base, &minute_weather(), "t", "time").unwrap();
        assert_eq!(out, minute_weather());
    }

    #[test]
    fn negative_keys_bucket_correctly() {
        let f = Table::new(
            "f",
            vec![
                Column::from_i64("k", vec![-15, -5, 5]),
                Column::from_f64("v", vec![1.0, 2.0, 3.0]),
            ],
        )
        .unwrap();
        let out = resample_to_granularity(&f, "k", 10).unwrap();
        let sorted = out.sort_by("k").unwrap();
        // -15 → -20, -5 → -10, 5 → 0 (floor division).
        assert_eq!(sorted.column("k").unwrap().get_f64(0), Some(-20.0));
        assert_eq!(sorted.column("k").unwrap().get_f64(1), Some(-10.0));
        assert_eq!(sorted.column("k").unwrap().get_f64(2), Some(0.0));
    }

    #[test]
    fn non_numeric_key_rejected() {
        let f = Table::new("f", vec![Column::from_str("k", vec!["a"])]).unwrap();
        assert!(resample_to_granularity(&f, "k", 10).is_err());
    }
}
