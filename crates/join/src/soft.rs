//! Soft-key joins: nearest-neighbour and two-way nearest-neighbour with
//! λ-interpolation (ARDA §4 "Key Matches").
//!
//! Both joins build one [`SoftKeyIndex`] over the (pre-aggregated) foreign
//! key and reuse it across every base row; the per-row binary-search
//! matching — the hot loop for large bases — runs in parallel row bands
//! with deterministic output.

use crate::hard::pre_aggregate;
use crate::{JoinError, Result};
#[cfg(test)]
use arda_table::Value;
use arda_table::{Column, ColumnData, DataType, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Base rows below which per-row matching stays sequential.
const PAR_MIN_ROWS: usize = 4_096;

/// A sorted index over a foreign table's soft (numeric) key: `(key value,
/// row index)` pairs ordered by key then row. Built once per join and
/// shared, read-only, by all matching workers.
struct SoftKeyIndex {
    sorted: Vec<(f64, usize)>,
}

impl SoftKeyIndex {
    /// Build from the foreign table's key column.
    fn build(foreign: &Table, key: &str) -> Result<SoftKeyIndex> {
        let col = foreign.column(key)?;
        if !col.dtype().is_numeric() {
            return Err(JoinError::NonNumericSoftKey(key.to_string()));
        }
        let mut sorted: Vec<(f64, usize)> = (0..foreign.n_rows())
            .filter_map(|i| col.get_f64(i).map(|v| (v, i)))
            .collect();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        Ok(SoftKeyIndex { sorted })
    }

    /// Position of the entry closest to `x` (ties → smaller key).
    fn closest(&self, x: f64) -> Option<usize> {
        let sorted = &self.sorted;
        if sorted.is_empty() {
            return None;
        }
        let pos = sorted.partition_point(|(v, _)| *v < x);
        let mut best: Option<usize> = None;
        let mut best_dist = f64::INFINITY;
        for candidate in [pos.checked_sub(1), Some(pos)].into_iter().flatten() {
            if let Some(&(v, _)) = sorted.get(candidate) {
                let d = (v - x).abs();
                if d < best_dist {
                    best_dist = d;
                    best = Some(candidate);
                }
            }
        }
        best
    }

    /// Neighbours of `x`: (largest key ≤ x, smallest key ≥ x) as positions.
    /// Either side may be absent at the boundary.
    fn bracketing(&self, x: f64) -> (Option<usize>, Option<usize>) {
        let sorted = &self.sorted;
        if sorted.is_empty() {
            return (None, None);
        }
        let pos = sorted.partition_point(|(v, _)| *v < x);
        // `pos` is the first key ≥ x.
        let high = if pos < sorted.len() { Some(pos) } else { None };
        let low = if pos < sorted.len() && sorted[pos].0 == x {
            Some(pos) // exact match serves as both sides
        } else {
            pos.checked_sub(1)
        };
        (low, high)
    }

    /// Worker count for a scan over `n_rows` base rows: an explicit caller
    /// cap wins, otherwise small scans stay sequential and large ones plan
    /// with the ambient work budget (the pipeline's batch fan-out installs
    /// each candidate's split, so nested joins never oversubscribe).
    fn scan_threads(n_rows: usize, requested: usize) -> usize {
        arda_par::threads_for(requested, n_rows, PAR_MIN_ROWS)
    }
}

/// Nearest-neighbour soft LEFT join: each base row joins the foreign row
/// whose key is numerically closest. With `tolerance`, matches farther than
/// the threshold become nulls.
pub fn nearest_join(
    base: &Table,
    foreign: &Table,
    base_key: &str,
    foreign_key: &str,
    tolerance: Option<f64>,
) -> Result<Table> {
    nearest_join_threads(base, foreign, base_key, foreign_key, tolerance, 0)
}

/// [`nearest_join`] with an explicit worker cap (`0` = automatic).
pub fn nearest_join_threads(
    base: &Table,
    foreign: &Table,
    base_key: &str,
    foreign_key: &str,
    tolerance: Option<f64>,
    threads: usize,
) -> Result<Table> {
    let base_col = base.column(base_key)?;
    if !base_col.dtype().is_numeric() {
        return Err(JoinError::NonNumericSoftKey(base_key.to_string()));
    }
    let foreign = pre_aggregate(foreign, &[foreign_key])?;
    let index = SoftKeyIndex::build(&foreign, foreign_key)?;

    let matches: Vec<Option<usize>> = arda_par::par_for_rows(
        base.n_rows(),
        SoftKeyIndex::scan_threads(base.n_rows(), threads),
        |range| {
            range
                .map(|i| {
                    let x = base_col.get_f64(i)?;
                    let c = index.closest(x)?;
                    let (v, row) = index.sorted[c];
                    match tolerance {
                        Some(t) if (v - x).abs() > t => None,
                        _ => Some(row),
                    }
                })
                .collect()
        },
    );

    let value_names: Vec<&str> = foreign
        .columns()
        .iter()
        .map(|c| c.name())
        .filter(|n| *n != foreign_key)
        .collect();
    let gathered = foreign.take_opt(&matches)?;
    let values = gathered.select(&value_names)?;
    Ok(base.hstack(&values)?)
}

/// Two-way nearest-neighbour soft LEFT join (ARDA §4): for base key `x`,
/// find the foreign rows at `y_low ≤ x ≤ y_high` and join with the
/// λ-interpolated row `λ·r_low + (1−λ)·r_high` where `x = λ·y_low +
/// (1−λ)·y_high`. Categorical values are chosen uniformly at random between
/// the two rows; at the boundary (only one neighbour) that row is used
/// directly.
pub fn two_way_nearest_join(
    base: &Table,
    foreign: &Table,
    base_key: &str,
    foreign_key: &str,
    seed: u64,
) -> Result<Table> {
    two_way_nearest_join_threads(base, foreign, base_key, foreign_key, seed, 0)
}

/// [`two_way_nearest_join`] with an explicit worker cap (`0` = automatic).
pub fn two_way_nearest_join_threads(
    base: &Table,
    foreign: &Table,
    base_key: &str,
    foreign_key: &str,
    seed: u64,
    threads: usize,
) -> Result<Table> {
    let base_col = base.column(base_key)?;
    if !base_col.dtype().is_numeric() {
        return Err(JoinError::NonNumericSoftKey(base_key.to_string()));
    }
    let foreign = pre_aggregate(foreign, &[foreign_key])?;
    let index = SoftKeyIndex::build(&foreign, foreign_key)?;

    // Interpolation plan per base row: (row_low, row_high, λ). Pure binary
    // searches over the shared index → parallel row bands.
    let plans: Vec<Option<(usize, usize, f64)>> = arda_par::par_for_rows(
        base.n_rows(),
        SoftKeyIndex::scan_threads(base.n_rows(), threads),
        |range| {
            range
                .map(|i| {
                    let x = base_col.get_f64(i)?;
                    let (low, high) = index.bracketing(x);
                    match (low, high) {
                        (Some(l), Some(h)) => {
                            let (yl, rl) = index.sorted[l];
                            let (yh, rh) = index.sorted[h];
                            let lambda = if yh > yl { (yh - x) / (yh - yl) } else { 1.0 };
                            Some((rl, rh, lambda))
                        }
                        (Some(l), None) => {
                            let (_, rl) = index.sorted[l];
                            Some((rl, rl, 1.0))
                        }
                        (None, Some(h)) => {
                            let (_, rh) = index.sorted[h];
                            Some((rh, rh, 1.0))
                        }
                        (None, None) => None,
                    }
                })
                .collect()
        },
    );

    // Categorical neighbour picks consume the seeded RNG sequentially in
    // (column, row) order — exactly the draws the old sequential loop made —
    // so the parallel materialisation below stays deterministic.
    let value_cols: Vec<&Column> = foreign
        .columns()
        .iter()
        .filter(|c| c.name() != foreign_key)
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let str_picks: Vec<Option<Vec<Option<usize>>>> = value_cols
        .iter()
        .map(|col| {
            if col.dtype() != DataType::Str {
                return None;
            }
            Some(
                plans
                    .iter()
                    .map(|p| {
                        p.as_ref().map(|(rl, rh, _)| {
                            if rl == rh || rng.gen::<bool>() {
                                *rl
                            } else {
                                *rh
                            }
                        })
                    })
                    .collect(),
            )
        })
        .collect();

    // Each output column interpolates independently from the shared plans.
    let jobs: Vec<(&Column, Option<Vec<Option<usize>>>)> =
        value_cols.into_iter().zip(str_picks).collect();
    let threads = arda_par::threads_for(threads, base.n_rows() * jobs.len().max(1), PAR_MIN_ROWS);
    let new_cols: Vec<Result<Column>> =
        arda_par::par_map(&jobs, threads, |_, (col, picks)| {
            match (col.data(), picks) {
                (ColumnData::Str(cells), Some(picks)) => {
                    let values: Vec<Option<String>> = picks
                        .iter()
                        .map(|p| p.and_then(|row| cells[row].clone()))
                        .collect();
                    Ok(Column::from_str_opt(col.name(), values))
                }
                _ => {
                    let values: Vec<Option<f64>> = plans
                        .iter()
                        .map(|p| {
                            let (rl, rh, lambda) = (*p)?;
                            match (col.get_f64(rl), col.get_f64(rh)) {
                                (Some(a), Some(b)) => Some(lambda * a + (1.0 - lambda) * b),
                                (Some(a), None) => Some(a),
                                (None, Some(b)) => Some(b),
                                (None, None) => None,
                            }
                        })
                        .collect();
                    Ok(Column::from_f64_opt(col.name(), values))
                }
            }
        });

    let mut extras = Table::empty(foreign.name().to_string());
    for col in new_cols {
        extras.add_column(col?)?;
    }
    Ok(base.clone().hstack(&extras)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weather() -> Table {
        Table::new(
            "weather",
            vec![
                Column::from_timestamps("time", vec![0, 100, 200]),
                Column::from_f64("temp", vec![10.0, 20.0, 30.0]),
                Column::from_str("sky", vec!["clear", "rain", "snow"]),
            ],
        )
        .unwrap()
    }

    fn trips() -> Table {
        Table::new(
            "trips",
            vec![
                Column::from_timestamps("t", vec![10, 150, 400]),
                Column::from_f64("dur", vec![1.0, 2.0, 3.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn nearest_picks_closest_key() {
        let out = nearest_join(&trips(), &weather(), "t", "time", None).unwrap();
        let temp = out.column("temp").unwrap();
        assert_eq!(temp.get_f64(0), Some(10.0)); // t=10 → time=0
        assert_eq!(temp.get_f64(1), Some(20.0)); // t=150 → tie 100/200 → lower
        assert_eq!(temp.get_f64(2), Some(30.0)); // t=400 → time=200
    }

    #[test]
    fn nearest_respects_tolerance() {
        let out = nearest_join(&trips(), &weather(), "t", "time", Some(60.0)).unwrap();
        let temp = out.column("temp").unwrap();
        assert_eq!(temp.get_f64(0), Some(10.0));
        assert_eq!(temp.get_f64(1), Some(20.0));
        assert!(temp.get(2).is_null(), "t=400 is 200 away > tolerance");
    }

    #[test]
    fn two_way_interpolates_linearly() {
        let out = two_way_nearest_join(&trips(), &weather(), "t", "time", 0).unwrap();
        let temp = out.column("temp").unwrap();
        // t=10 between 0 and 100: λ=(100-10)/100=0.9 → 0.9*10+0.1*20 = 11.
        assert!((temp.get_f64(0).unwrap() - 11.0).abs() < 1e-9);
        // t=150 between 100 and 200 → 25.
        assert!((temp.get_f64(1).unwrap() - 25.0).abs() < 1e-9);
        // t=400 beyond the last key → boundary row 200 → 30.
        assert!((temp.get_f64(2).unwrap() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn two_way_exact_match_uses_that_row() {
        let base = Table::new("b", vec![Column::from_timestamps("t", vec![100])]).unwrap();
        let out = two_way_nearest_join(&base, &weather(), "t", "time", 0).unwrap();
        assert_eq!(out.column("temp").unwrap().get_f64(0), Some(20.0));
    }

    #[test]
    fn two_way_categorical_comes_from_a_neighbor() {
        let out = two_way_nearest_join(&trips(), &weather(), "t", "time", 42).unwrap();
        let sky = out.column("sky").unwrap().get(0);
        assert!(
            sky == Value::Str("clear".into()) || sky == Value::Str("rain".into()),
            "sky must come from one of the bracketing rows, got {sky:?}"
        );
    }

    #[test]
    fn base_rows_preserved_and_null_keys_null_filled() {
        let base = Table::new("b", vec![Column::from_i64_opt("t", vec![Some(50), None])]).unwrap();
        let out = nearest_join(&base, &weather(), "t", "time", None).unwrap();
        assert_eq!(out.n_rows(), 2);
        assert!(out.column("temp").unwrap().get(1).is_null());
        let out2 = two_way_nearest_join(&base, &weather(), "t", "time", 0).unwrap();
        assert!(out2.column("temp").unwrap().get(1).is_null());
    }

    #[test]
    fn non_numeric_keys_rejected() {
        let base = Table::new("b", vec![Column::from_str("k", vec!["a"])]).unwrap();
        assert!(matches!(
            nearest_join(&base, &weather(), "k", "time", None),
            Err(JoinError::NonNumericSoftKey(_))
        ));
        let f = Table::new("f", vec![Column::from_str("k", vec!["a"])]).unwrap();
        let b2 = Table::new("b2", vec![Column::from_i64("t", vec![1])]).unwrap();
        assert!(matches!(
            two_way_nearest_join(&b2, &f, "t", "k", 0),
            Err(JoinError::NonNumericSoftKey(_))
        ));
    }

    #[test]
    fn duplicate_foreign_keys_are_pre_aggregated() {
        let f = Table::new(
            "f",
            vec![
                Column::from_i64("time", vec![100, 100]),
                Column::from_f64("temp", vec![10.0, 30.0]),
            ],
        )
        .unwrap();
        let base = Table::new("b", vec![Column::from_i64("t", vec![100])]).unwrap();
        let out = nearest_join(&base, &f, "t", "time", None).unwrap();
        assert_eq!(out.column("temp").unwrap().get_f64(0), Some(20.0));
    }

    #[test]
    fn empty_foreign_yields_nulls() {
        let f = Table::new(
            "f",
            vec![
                Column::from_i64("time", vec![]),
                Column::from_f64("temp", vec![]),
            ],
        )
        .unwrap();
        let base = Table::new("b", vec![Column::from_i64("t", vec![1])]).unwrap();
        let out = nearest_join(&base, &f, "t", "time", None).unwrap();
        assert!(out.column("temp").unwrap().get(0).is_null());
        let out2 = two_way_nearest_join(&base, &f, "t", "time", 0).unwrap();
        assert!(out2.column("temp").unwrap().get(0).is_null());
    }
}
