//! Join-key match statistics: intersection scores used to rank candidate
//! joins when the discovery system provides no relevance scores (§4 "Table
//! grouping": "ARDA computes intersection-score"), and the foreign-key
//! domain sizes needed by the Tuple-Ratio rule.

use crate::Result;
use arda_table::{Key, Table};
use std::collections::HashSet;

/// Statistics of one candidate (base, foreign, key) pairing.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinStats {
    /// Base rows whose key value appears in the foreign key column.
    pub matched_rows: usize,
    /// Total base rows.
    pub base_rows: usize,
    /// Distinct non-null keys in the base column.
    pub base_distinct: usize,
    /// Distinct non-null keys in the foreign column (the foreign-key domain
    /// size `nR` of the Tuple-Ratio rule).
    pub foreign_distinct: usize,
    /// Distinct keys appearing on both sides.
    pub shared_distinct: usize,
}

impl JoinStats {
    /// Fraction of base rows that would find a hard-join match.
    pub fn intersection_score(&self) -> f64 {
        if self.base_rows == 0 {
            0.0
        } else {
            self.matched_rows as f64 / self.base_rows as f64
        }
    }

    /// Jaccard similarity of the distinct key sets.
    pub fn jaccard(&self) -> f64 {
        let union = self.base_distinct + self.foreign_distinct - self.shared_distinct;
        if union == 0 {
            0.0
        } else {
            self.shared_distinct as f64 / union as f64
        }
    }

    /// Tuple ratio `nS / nR` from Kumar et al.: base training examples over
    /// the foreign-key domain size. Infinite when the domain is empty.
    pub fn tuple_ratio(&self) -> f64 {
        if self.foreign_distinct == 0 {
            f64::INFINITY
        } else {
            self.base_rows as f64 / self.foreign_distinct as f64
        }
    }
}

/// Compute [`JoinStats`] for a hard-key candidate.
pub fn join_stats(
    base: &Table,
    foreign: &Table,
    base_keys: &[&str],
    foreign_keys: &[&str],
) -> Result<JoinStats> {
    let bkeys = base.keys(base_keys)?;
    let fkeys = foreign.keys(foreign_keys)?;
    let fset: HashSet<&Key> = fkeys.iter().flatten().collect();
    let bset: HashSet<&Key> = bkeys.iter().flatten().collect();
    let matched_rows = bkeys.iter().flatten().filter(|k| fset.contains(k)).count();
    let shared_distinct = bset.iter().filter(|k| fset.contains(*k)).count();
    Ok(JoinStats {
        matched_rows,
        base_rows: base.n_rows(),
        base_distinct: bset.len(),
        foreign_distinct: fset.len(),
        shared_distinct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arda_table::Column;

    fn tables() -> (Table, Table) {
        let base = Table::new("b", vec![Column::from_i64("k", vec![1, 1, 2, 3])]).unwrap();
        let foreign = Table::new("f", vec![Column::from_i64("k", vec![1, 2, 9, 9])]).unwrap();
        (base, foreign)
    }

    #[test]
    fn counts_matches_and_domains() {
        let (b, f) = tables();
        let s = join_stats(&b, &f, &["k"], &["k"]).unwrap();
        assert_eq!(s.matched_rows, 3); // rows with k ∈ {1,1,2}
        assert_eq!(s.base_rows, 4);
        assert_eq!(s.base_distinct, 3);
        assert_eq!(s.foreign_distinct, 3); // {1,2,9}
        assert_eq!(s.shared_distinct, 2); // {1,2}
        assert!((s.intersection_score() - 0.75).abs() < 1e-12);
        assert!((s.jaccard() - 0.5).abs() < 1e-12); // 2 / (3+3-2)
        assert!((s.tuple_ratio() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_foreign_gives_zero_score_and_infinite_ratio() {
        let b = Table::new("b", vec![Column::from_i64("k", vec![1])]).unwrap();
        let f = Table::new("f", vec![Column::from_i64("k", vec![])]).unwrap();
        let s = join_stats(&b, &f, &["k"], &["k"]).unwrap();
        assert_eq!(s.intersection_score(), 0.0);
        assert_eq!(s.jaccard(), 0.0);
        assert!(s.tuple_ratio().is_infinite());
    }

    #[test]
    fn nulls_do_not_count() {
        let b = Table::new("b", vec![Column::from_i64_opt("k", vec![Some(1), None])]).unwrap();
        let f = Table::new("f", vec![Column::from_i64_opt("k", vec![Some(1), None])]).unwrap();
        let s = join_stats(&b, &f, &["k"], &["k"]).unwrap();
        assert_eq!(s.matched_rows, 1);
        assert_eq!(s.base_distinct, 1);
        assert_eq!(s.foreign_distinct, 1);
    }

    #[test]
    fn composite_key_stats() {
        let b = Table::new(
            "b",
            vec![
                Column::from_i64("a", vec![1, 1]),
                Column::from_i64("b", vec![2, 3]),
            ],
        )
        .unwrap();
        let f = Table::new(
            "f",
            vec![
                Column::from_i64("a", vec![1]),
                Column::from_i64("b", vec![2]),
            ],
        )
        .unwrap();
        let s = join_stats(&b, &f, &["a", "b"], &["a", "b"]).unwrap();
        assert_eq!(s.matched_rows, 1);
        assert_eq!(s.shared_distinct, 1);
    }
}
