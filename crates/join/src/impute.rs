//! Missing-value imputation (ARDA §4 "Imputation").
//!
//! LEFT joins introduce nulls for unmatched base rows. Following the paper,
//! imputation is deliberately simple and fast: numeric nulls take the column
//! median, categorical nulls take a uniform random draw from the observed
//! values of the column.

use crate::Result;
use arda_table::{Column, ColumnData, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Impute all nulls in `table`. Returns the imputed table and the number of
/// cells filled. Columns that are entirely null are left untouched (there is
/// nothing to impute from — drop them during featurization instead).
pub fn impute(table: &Table, seed: u64) -> Result<(Table, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Table::empty(table.name().to_string());
    let mut filled = 0usize;

    for col in table.columns() {
        let n = col.len();
        if col.null_count() == 0 || col.null_count() == n {
            out.add_column(col.clone())?;
            continue;
        }
        let new_col = match col.data() {
            ColumnData::Float(_)
            | ColumnData::Int(_)
            | ColumnData::Timestamp(_)
            | ColumnData::Bool(_) => {
                let median = col.median().expect("non-null values exist");
                let values: Vec<Value> = (0..n)
                    .map(|i| {
                        let v = col.get(i);
                        if v.is_null() {
                            filled += 1;
                            match col.data() {
                                ColumnData::Float(_) => Value::Float(median),
                                ColumnData::Bool(_) => Value::Bool(median >= 0.5),
                                ColumnData::Timestamp(_) => Value::Timestamp(median.round() as i64),
                                _ => Value::Int(median.round() as i64),
                            }
                        } else {
                            v
                        }
                    })
                    .collect();
                Column::from_values(col.name(), col.dtype(), values)?
            }
            ColumnData::Str(_) => {
                let observed: Vec<Value> = col.iter().filter(|v| !v.is_null()).collect();
                let values: Vec<Value> = (0..n)
                    .map(|i| {
                        let v = col.get(i);
                        if v.is_null() {
                            filled += 1;
                            observed[rng.gen_range(0..observed.len())].clone()
                        } else {
                            v
                        }
                    })
                    .collect();
                Column::from_values(col.name(), col.dtype(), values)?
            }
        };
        out.add_column(new_col)?;
    }
    Ok((out, filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_nulls_take_median() {
        let t = Table::new(
            "t",
            vec![Column::from_f64_opt(
                "x",
                vec![Some(1.0), None, Some(3.0), Some(10.0)],
            )],
        )
        .unwrap();
        let (out, filled) = impute(&t, 0).unwrap();
        assert_eq!(filled, 1);
        assert_eq!(out.column("x").unwrap().get_f64(1), Some(3.0)); // median of {1,3,10}
        assert_eq!(out.null_count(), 0);
    }

    #[test]
    fn integer_nulls_rounded_median() {
        let t = Table::new(
            "t",
            vec![Column::from_i64_opt("x", vec![Some(1), None, Some(2)])],
        )
        .unwrap();
        let (out, _) = impute(&t, 0).unwrap();
        // median of {1,2} = 1.5 → rounds to 2.
        assert_eq!(out.column("x").unwrap().get(1), Value::Int(2));
    }

    #[test]
    fn categorical_nulls_sampled_from_observed() {
        let t = Table::new(
            "t",
            vec![Column::from_str_opt(
                "c",
                vec![Some("a".into()), None, Some("b".into()), None],
            )],
        )
        .unwrap();
        let (out, filled) = impute(&t, 7).unwrap();
        assert_eq!(filled, 2);
        for i in [1usize, 3] {
            let v = out.column("c").unwrap().get(i);
            assert!(
                v == Value::Str("a".into()) || v == Value::Str("b".into()),
                "imputed value must be observed, got {v:?}"
            );
        }
    }

    #[test]
    fn all_null_column_left_alone() {
        let t = Table::new("t", vec![Column::from_f64_opt("dead", vec![None, None])]).unwrap();
        let (out, filled) = impute(&t, 0).unwrap();
        assert_eq!(filled, 0);
        assert_eq!(out.column("dead").unwrap().null_count(), 2);
    }

    #[test]
    fn no_nulls_is_identity() {
        let t = Table::new(
            "t",
            vec![
                Column::from_f64("x", vec![1.0, 2.0]),
                Column::from_str("c", vec!["a", "b"]),
            ],
        )
        .unwrap();
        let (out, filled) = impute(&t, 0).unwrap();
        assert_eq!(filled, 0);
        assert_eq!(out, t);
    }

    #[test]
    fn deterministic_per_seed() {
        let t = Table::new(
            "t",
            vec![Column::from_str_opt(
                "c",
                vec![Some("a".into()), None, Some("b".into()), Some("c".into())],
            )],
        )
        .unwrap();
        let (a, _) = impute(&t, 3).unwrap();
        let (b, _) = impute(&t, 3).unwrap();
        assert_eq!(a, b);
    }
}
