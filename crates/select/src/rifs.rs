//! RIFS — Random-Injection Feature Selection (ARDA §6, Algorithms 1–3).
//!
//! The key idea: append `η·d` *synthetic noise features* to the data, rank
//! real and injected features together with an ensemble of Random Forest and
//! ℓ2,1 Sparse Regression rankings, and count how often each real feature
//! out-ranks **every** injected feature across `k` fresh injections. Real
//! features that cannot consistently beat noise are pruned. A final wrapper
//! sweeps an increasing threshold `τ` over these fractions, keeping the last
//! subset whose holdout score still improved monotonically (Algorithm 3).
//!
//! Injection distributions: when features are mostly relevant, simple
//! standard distributions (normal/uniform/Bernoulli/Poisson) suffice; the
//! adversarial regime uses *moment-matched* noise `N(µ, Σ)` fitted to the
//! empirical feature mean/covariance (Algorithm 2) so the injected features
//! "look like" the input.

use crate::ranking::order_by_scores;
use crate::sparse_regression::{l21_solve, target_matrix, L21Config};
use crate::{Result, SelectError, SelectionContext};
use arda_linalg::random::{normal_vec, MomentMatchedSampler};
use arda_linalg::stats::standardize_columns;
use arda_linalg::Matrix;
use arda_ml::{Dataset, ForestConfig, RandomForest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Distribution of the injected random features (§6.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectionDistribution {
    /// `N(µ, Σ)` moment-matched to the input features — Algorithm 2, the
    /// default for the adversarial "few relevant features" regime.
    MomentMatched,
    /// i.i.d. standard normal entries.
    StandardNormal,
    /// i.i.d. `U(0, 1)` entries.
    Uniform,
    /// i.i.d. Bernoulli(p) entries.
    Bernoulli(f64),
    /// i.i.d. Poisson(λ) entries (Knuth sampling).
    Poisson(f64),
}

/// RIFS hyper-parameters. Defaults follow the paper's experiments: η = 0.2,
/// k = 10 repeats, an even RF/SR ensemble weight and an increasing
/// threshold grid.
#[derive(Debug, Clone, PartialEq)]
pub struct RifsConfig {
    /// Fraction η of random features to inject.
    pub eta: f64,
    /// Number of injection rounds `k` (the paper's `t = 10`).
    pub repeats: usize,
    /// Ensemble weight ν: aggregate = ν·RF + (1−ν)·SR (§6.3).
    pub nu: f64,
    /// Increasing threshold grid `T` for the wrapper (Algorithm 3).
    pub thresholds: Vec<f64>,
    /// Injected-feature distribution.
    pub distribution: InjectionDistribution,
    /// ℓ2,1 solver settings for the SR half of the ensemble.
    pub l21: L21Config,
    /// Trees for the RF half of the ensemble.
    pub rf_trees: usize,
}

impl Default for RifsConfig {
    fn default() -> Self {
        RifsConfig {
            eta: 0.2,
            repeats: 10,
            nu: 0.5,
            thresholds: vec![0.3, 0.5, 0.6, 0.7, 0.8, 0.9],
            distribution: InjectionDistribution::MomentMatched,
            l21: L21Config::default(),
            rf_trees: 24,
        }
    }
}

/// RIFS output: the selection plus diagnostics used by the benches.
#[derive(Debug, Clone)]
pub struct RifsReport {
    /// Selected feature indices.
    pub selected: Vec<usize>,
    /// Per-feature fraction of rounds in which the feature out-ranked every
    /// injected random feature (`r*` of Algorithm 1).
    pub fractions: Vec<f64>,
    /// Threshold τ the wrapper settled on.
    pub threshold_used: f64,
    /// Holdout score of the selected subset.
    pub holdout_score: f64,
}

/// Draw the `n×t` injected-feature block (Algorithm 2 or a standard
/// distribution).
pub fn inject_features(
    x: &Matrix,
    t: usize,
    distribution: InjectionDistribution,
    rng: &mut StdRng,
) -> Matrix {
    let n = x.rows();
    match distribution {
        InjectionDistribution::MomentMatched => MomentMatchedSampler::fit(x).sample_columns(rng, t),
        InjectionDistribution::StandardNormal => {
            let mut m = Matrix::zeros(n, t);
            for c in 0..t {
                for (r, v) in normal_vec(rng, n).into_iter().enumerate() {
                    m.set(r, c, v);
                }
            }
            m
        }
        InjectionDistribution::Uniform => {
            let mut m = Matrix::zeros(n, t);
            for r in 0..n {
                for c in 0..t {
                    m.set(r, c, rng.gen_range(0.0..1.0));
                }
            }
            m
        }
        InjectionDistribution::Bernoulli(p) => {
            let p = p.clamp(0.0, 1.0);
            let mut m = Matrix::zeros(n, t);
            for r in 0..n {
                for c in 0..t {
                    m.set(r, c, if rng.gen::<f64>() < p { 1.0 } else { 0.0 });
                }
            }
            m
        }
        InjectionDistribution::Poisson(lambda) => {
            let mut m = Matrix::zeros(n, t);
            for r in 0..n {
                for c in 0..t {
                    m.set(r, c, poisson(rng, lambda.max(1e-9)));
                }
            }
            m
        }
    }
}

/// Knuth Poisson sampler (normal approximation for large λ).
fn poisson(rng: &mut StdRng, lambda: f64) -> f64 {
    if lambda > 30.0 {
        let g: f64 = arda_linalg::standard_normal(rng);
        return (lambda + lambda.sqrt() * g).round().max(0.0);
    }
    let l = (-lambda).exp();
    let mut k = 0.0;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1.0;
    }
}

/// Max-normalise scores to `[0, 1]` (all-zero stays all-zero).
fn max_normalize(scores: &mut [f64]) {
    let max = scores.iter().copied().fold(0.0f64, f64::max);
    if max > 0.0 {
        scores.iter_mut().for_each(|s| *s /= max);
    }
}

/// One ensemble ranking over the augmented matrix (Algorithm 1, step 2):
/// ν-weighted combination of RF importances and ℓ2,1 row norms.
///
/// The forest fit and ℓ2,1 solve run with `threads = 0`: when RIFS fans its
/// injection rounds out, each round's ambient work budget is the
/// `arda-par` split of the whole, so a wide round fan-out makes these
/// sequential while a narrow one lets them use the freed budget — without
/// ever oversubscribing.
fn ensemble_scores(aug: &Dataset, cfg: &RifsConfig, seed: u64) -> Result<Vec<f64>> {
    let rf_cfg = ForestConfig {
        n_trees: cfg.rf_trees,
        max_depth: 10,
        seed,
        ..Default::default()
    };
    let mut rf = RandomForest::fit_xy(&aug.x, &aug.y, aug.task, &rf_cfg)?
        .importances()
        .to_vec();
    max_normalize(&mut rf);

    let mut xs = aug.x.clone();
    standardize_columns(&mut xs);
    let ym = target_matrix(&aug.y, aug.task);
    let mut sr = l21_solve(&xs, &ym, &cfg.l21)?.feature_scores;
    max_normalize(&mut sr);

    Ok(rf
        .iter()
        .zip(&sr)
        .map(|(a, b)| cfg.nu * a + (1.0 - cfg.nu) * b)
        .collect())
}

/// Algorithm 1: compute `r*`, the fraction of rounds each real feature
/// out-ranks all injected features.
pub fn rifs_fractions(train_data: &Dataset, cfg: &RifsConfig, seed: u64) -> Result<Vec<f64>> {
    let d = train_data.n_features();
    if d == 0 {
        return Ok(Vec::new());
    }
    let t = ((cfg.eta * d as f64).ceil() as usize).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = vec![0usize; d];
    let repeats = cfg.repeats.max(1);

    // Draw every round's injected noise up front from the single master RNG
    // (the stream is identical to the old one-round-at-a-time order), then
    // run the independent ensemble fits concurrently on the ambient work
    // budget; each round's nested fits plan with the per-round split. Count
    // aggregation walks the ordered results, so fractions match the
    // sequential run for any budget.
    let noises: Vec<Matrix> = (0..repeats)
        .map(|_| inject_features(&train_data.x, t, cfg.distribution, &mut rng))
        .collect();
    let names: Vec<String> = (0..t).map(|i| format!("__rifs_noise_{i}")).collect();
    let round_scores: Vec<Result<Vec<f64>>> = arda_par::par_map(&noises, 0, |rep, noise| {
        let aug = train_data.append_features(noise, names.clone())?;
        ensemble_scores(&aug, cfg, seed.wrapping_add(rep as u64))
    });

    for scores in round_scores {
        let scores = scores?;
        // Threshold: the best-scoring injected feature.
        let noise_max = scores[d..]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        for (j, count) in counts.iter_mut().enumerate() {
            if scores[j] > noise_max {
                *count += 1;
            }
        }
    }
    Ok(counts.iter().map(|&c| c as f64 / repeats as f64).collect())
}

/// Algorithms 1+3: full RIFS selection with the threshold wrapper.
pub fn rifs_select(data: &Dataset, ctx: &SelectionContext, cfg: &RifsConfig) -> Result<RifsReport> {
    if cfg.thresholds.is_empty() {
        return Err(SelectError::Invalid(
            "RIFS needs a non-empty threshold grid".into(),
        ));
    }
    let train_data = data.select_rows(&ctx.train)?;
    let fractions = rifs_fractions(&train_data, cfg, ctx.seed)?;

    // Wrapper (Algorithm 3): sweep increasing τ while the holdout score is
    // monotone non-decreasing; keep the last improving subset.
    //
    // Subsets shrink monotonically as τ grows, so everything past the first
    // empty subset is empty too — exactly where the sequential loop stopped.
    let mut thresholds = cfg.thresholds.clone();
    thresholds.sort_by(|a, b| a.total_cmp(b));
    let mut candidates: Vec<(f64, Vec<usize>)> = Vec::new(); // (τ, subset)
    for &tau in &thresholds {
        let subset: Vec<usize> = (0..fractions.len())
            .filter(|&j| fractions[j] >= tau)
            .collect();
        if subset.is_empty() {
            break;
        }
        candidates.push((tau, subset));
    }

    // The holdout evaluations per τ are independent given the fractions:
    // fan them out on the ambient work budget. Consecutive thresholds often
    // select the same subset, so only distinct subsets are evaluated; the
    // estimator refit is deterministic in (subset, seed), which keeps the
    // monotone walk below bit-identical to the sequential sweep. On a
    // one-wide budget the fan-out would buy nothing, so scores stay unfilled
    // here and the walk evaluates lazily, keeping the sequential sweep's
    // early exit at the first score decrease.
    let mut distinct: Vec<Vec<usize>> = Vec::new();
    let mut subset_of: Vec<usize> = Vec::with_capacity(candidates.len());
    for (_, subset) in &candidates {
        if distinct.last() != Some(subset) {
            distinct.push(subset.clone());
        }
        subset_of.push(distinct.len() - 1);
    }
    let mut scores: Vec<Option<f64>> = vec![None; distinct.len()];
    if arda_par::current_budget().width() > 1 {
        let evaluated = arda_par::par_map(&distinct, 0, |_, subset| ctx.evaluate(data, subset));
        for (slot, score) in scores.iter_mut().zip(evaluated) {
            *slot = Some(score?);
        }
    }

    let mut best: Option<(Vec<usize>, f64, f64)> = None; // (subset, τ, score)
    for (i, (tau, subset)) in candidates.into_iter().enumerate() {
        let score = match scores[subset_of[i]] {
            Some(s) => s,
            None => {
                let s = ctx.evaluate(data, &subset)?;
                scores[subset_of[i]] = Some(s);
                s
            }
        };
        match &best {
            Some((_, _, prev)) if score < *prev => break,
            _ => best = Some((subset, tau, score)),
        }
    }

    // Fallback when no feature ever beat the noise at the lowest threshold:
    // keep the single most noise-resistant feature.
    let (selected, threshold_used, holdout_score) = match best {
        Some(b) => b,
        None => {
            let order = order_by_scores(&fractions);
            let subset = vec![order[0]];
            let score = ctx.evaluate(data, &subset)?;
            (subset, f64::NAN, score)
        }
    };

    Ok(RifsReport {
        selected,
        fractions,
        threshold_used,
        holdout_score,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arda_ml::Task;

    /// 2 strong features + `n_noise` random ones.
    fn planted(n: usize, n_noise: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let cls = (i % 2) as f64;
            let mut row = vec![
                cls * 3.0 + rng.gen_range(-0.4..0.4),
                -cls * 2.0 + rng.gen_range(-0.4..0.4),
            ];
            for _ in 0..n_noise {
                row.push(rng.gen_range(-1.0..1.0));
            }
            rows.push(row);
            y.push(cls);
        }
        let names = (0..2 + n_noise).map(|i| format!("f{i}")).collect();
        Dataset::new(
            Matrix::from_rows(&rows).unwrap(),
            y,
            names,
            Task::Classification { n_classes: 2 },
        )
        .unwrap()
    }

    fn fast_cfg() -> RifsConfig {
        RifsConfig {
            repeats: 5,
            rf_trees: 12,
            l21: L21Config {
                max_iter: 10,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn signal_features_beat_injected_noise() {
        let d = planted(160, 8, 0);
        let fr = rifs_fractions(&d, &fast_cfg(), 0).unwrap();
        assert!(fr[0] >= 0.8, "signal f0 fraction {fr:?}");
        assert!(fr[1] >= 0.6, "signal f1 fraction {fr:?}");
        let noise_mean: f64 = fr[2..].iter().sum::<f64>() / 8.0;
        assert!(noise_mean < 0.5, "noise fractions should be low: {fr:?}");
    }

    #[test]
    fn full_selection_keeps_signal_prunes_noise() {
        let d = planted(160, 10, 1);
        let ctx = SelectionContext::standard(&d, 1);
        let report = rifs_select(&d, &ctx, &fast_cfg()).unwrap();
        assert!(
            report.selected.contains(&0),
            "f0 kept: {:?}",
            report.selected
        );
        assert!(
            report.selected.len() <= 6,
            "most of 10 noise features pruned: {:?}",
            report.selected
        );
        assert!(
            report.holdout_score > 0.85,
            "score {}",
            report.holdout_score
        );
    }

    #[test]
    fn every_distribution_runs() {
        let d = planted(80, 4, 2);
        let mut rng = StdRng::seed_from_u64(0);
        for dist in [
            InjectionDistribution::MomentMatched,
            InjectionDistribution::StandardNormal,
            InjectionDistribution::Uniform,
            InjectionDistribution::Bernoulli(0.4),
            InjectionDistribution::Poisson(3.0),
        ] {
            let m = inject_features(&d.x, 3, dist, &mut rng);
            assert_eq!(m.rows(), 80);
            assert_eq!(m.cols(), 3);
            let finite = m.data().iter().all(|v| v.is_finite());
            assert!(finite, "{dist:?} produced non-finite values");
        }
    }

    #[test]
    fn bernoulli_and_poisson_ranges() {
        let d = planted(60, 2, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let b = inject_features(&d.x, 2, InjectionDistribution::Bernoulli(0.5), &mut rng);
        assert!(b.data().iter().all(|&v| v == 0.0 || v == 1.0));
        let p = inject_features(&d.x, 2, InjectionDistribution::Poisson(2.0), &mut rng);
        assert!(p.data().iter().all(|&v| v >= 0.0 && v.fract() == 0.0));
    }

    #[test]
    fn empty_threshold_grid_rejected() {
        let d = planted(60, 2, 4);
        let ctx = SelectionContext::standard(&d, 4);
        let cfg = RifsConfig {
            thresholds: vec![],
            ..fast_cfg()
        };
        assert!(rifs_select(&d, &ctx, &cfg).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let d = planted(100, 5, 5);
        let fr1 = rifs_fractions(&d, &fast_cfg(), 7).unwrap();
        let fr2 = rifs_fractions(&d, &fast_cfg(), 7).unwrap();
        assert_eq!(fr1, fr2);
    }

    #[test]
    fn poisson_sampler_mean() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 3000;
        let mean: f64 = (0..n).map(|_| poisson(&mut rng, 4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.3, "poisson mean {mean}");
        let big: f64 = (0..500).map(|_| poisson(&mut rng, 100.0)).sum::<f64>() / 500.0;
        assert!((big - 100.0).abs() < 3.0, "large-λ mean {big}");
    }
}
