//! ℓ2,1-norm sparse regression (ARDA §6.2, Equation 1).
//!
//! Solves `min_W ‖XW − Y‖₂,₁ + γ‖W‖₂,₁` where the ℓ2,1 norm sums the
//! Euclidean norms of matrix rows. Row-sparsity of `W` selects features
//! jointly across all targets. The solver is the standard IRLS fixed-point
//! iteration for this objective (Nie et al., "Efficient and Robust Feature
//! Selection via Joint ℓ2,1-Norms Minimization"; the ARDA paper cites the
//! gradient solver of Qian & Zhai for the same loss):
//!
//! ```text
//! repeat:
//!   D₁ = diag(1 / 2‖(XW − Y)ᵢ‖)        (residual row weights)
//!   D₂ = diag(1 / 2‖Wⱼ‖)               (coefficient row weights)
//!   W  = (Xᵀ D₁ X + γ D₂)⁻¹ Xᵀ D₁ Y
//! ```
//!
//! Each step solves an SPD system (Cholesky); ε-clamping of the row norms
//! gives the usual smoothed convergence guarantee.

use crate::{Result, SelectError};
use arda_linalg::{cholesky_solve_multi, Matrix};
use arda_ml::Task;

/// Configuration for the IRLS solver.
#[derive(Debug, Clone, PartialEq)]
pub struct L21Config {
    /// Regularisation weight γ.
    pub gamma: f64,
    /// Maximum IRLS iterations.
    pub max_iter: usize,
    /// Convergence tolerance on the relative objective change.
    pub tol: f64,
    /// Norm smoothing ε.
    pub eps: f64,
    /// Re-estimate labels inside the loop (the "modified objective from
    /// [56]" the paper uses for corrupted classification labels): after each
    /// W update, blend Y towards the model's own consistent labelling.
    pub robust_labels: bool,
    /// Blend factor for robust labels.
    pub label_blend: f64,
    /// Worker cap for the solver's matrix products (`0` = the ambient
    /// `arda-par` work budget). Callers that run many solves concurrently
    /// (RIFS rounds) can leave this at 0: each solve plans with its split
    /// of the shared budget, so nesting cannot oversubscribe.
    pub threads: usize,
}

impl Default for L21Config {
    fn default() -> Self {
        L21Config {
            gamma: 0.1,
            max_iter: 30,
            tol: 1e-5,
            eps: 1e-8,
            robust_labels: false,
            label_blend: 0.3,
            threads: 0,
        }
    }
}

/// Result of the ℓ2,1 solve.
#[derive(Debug, Clone)]
pub struct L21Solution {
    /// Coefficient matrix `W` (d×c).
    pub w: Matrix,
    /// Row norms of `W` — the per-feature importance scores.
    pub feature_scores: Vec<f64>,
    /// Objective value at termination.
    pub objective: f64,
    /// Iterations performed.
    pub iterations: usize,
}

/// Build the target matrix `Y`: the raw column for regression, one-hot for
/// classification.
pub fn target_matrix(y: &[f64], task: Task) -> Matrix {
    match task {
        Task::Regression => {
            let mut m = Matrix::zeros(y.len(), 1);
            for (i, &v) in y.iter().enumerate() {
                m.set(i, 0, v);
            }
            m
        }
        Task::Classification { n_classes } => {
            let mut m = Matrix::zeros(y.len(), n_classes.max(1));
            for (i, &v) in y.iter().enumerate() {
                let c = (v as usize).min(n_classes.saturating_sub(1));
                m.set(i, c, 1.0);
            }
            m
        }
    }
}

fn l21_norm_rows(m: &Matrix) -> f64 {
    m.row_norms().iter().sum()
}

/// Weighted Gram matrix `Xᵀ D X` for diagonal `D = diag(weights)`.
fn weighted_gram(x: &Matrix, weights: &[f64]) -> Matrix {
    let d = x.cols();
    let mut out = Matrix::zeros(d, d);
    for r in 0..x.rows() {
        let wr = weights[r];
        if wr == 0.0 {
            continue;
        }
        let row = x.row(r);
        for i in 0..d {
            let a = wr * row[i];
            if a == 0.0 {
                continue;
            }
            for j in i..d {
                let v = a * row[j];
                out.data_mut()[i * d + j] += v;
            }
        }
    }
    for i in 0..d {
        for j in 0..i {
            out.data_mut()[i * d + j] = out.get(j, i);
        }
    }
    out
}

/// Weighted cross-product `Xᵀ D Y`.
fn weighted_cross(x: &Matrix, weights: &[f64], y: &Matrix) -> Matrix {
    let d = x.cols();
    let c = y.cols();
    let mut out = Matrix::zeros(d, c);
    for r in 0..x.rows() {
        let wr = weights[r];
        if wr == 0.0 {
            continue;
        }
        let xr = x.row(r);
        let yr = y.row(r);
        for i in 0..d {
            let a = wr * xr[i];
            if a == 0.0 {
                continue;
            }
            for j in 0..c {
                out.data_mut()[i * c + j] += a * yr[j];
            }
        }
    }
    out
}

/// Solve the ℓ2,1 objective on (standardised) `x` against targets `y`.
pub fn l21_solve(x: &Matrix, y: &Matrix, cfg: &L21Config) -> Result<L21Solution> {
    if x.rows() != y.rows() {
        return Err(SelectError::Invalid(format!(
            "l21: {} rows vs {} targets",
            x.rows(),
            y.rows()
        )));
    }
    let n = x.rows();
    let d = x.cols();
    if n == 0 || d == 0 {
        return Err(SelectError::Invalid("l21: empty input".into()));
    }
    let mut y_work = y.clone();

    // Ridge initialisation: (XᵀX + γI) W = XᵀY.
    let ones = vec![1.0; n];
    let mut gram = weighted_gram(x, &ones);
    for i in 0..d {
        let v = gram.get(i, i) + cfg.gamma.max(1e-9);
        gram.set(i, i, v);
    }
    let rhs = weighted_cross(x, &ones, &y_work);
    let mut w =
        cholesky_solve_multi(&gram, &rhs).map_err(|e| SelectError::Invalid(e.to_string()))?;

    let objective = |w: &Matrix, y_cur: &Matrix| -> f64 {
        let resid = x
            .matmul_threads(w, cfg.threads)
            .expect("dims")
            .sub(y_cur)
            .expect("dims");
        l21_norm_rows(&resid) + cfg.gamma * l21_norm_rows(w)
    };
    let mut prev_obj = objective(&w, &y_work);
    let mut iterations = 0;

    for it in 0..cfg.max_iter {
        iterations = it + 1;
        let resid = x
            .matmul_threads(&w, cfg.threads)
            .expect("dims")
            .sub(&y_work)
            .expect("dims");
        let d1: Vec<f64> = resid
            .row_norms()
            .iter()
            .map(|r| 1.0 / (2.0 * r.max(cfg.eps)))
            .collect();
        let d2: Vec<f64> = w
            .row_norms()
            .iter()
            .map(|r| 1.0 / (2.0 * r.max(cfg.eps)))
            .collect();

        let mut lhs = weighted_gram(x, &d1);
        for i in 0..d {
            let v = lhs.get(i, i) + cfg.gamma * d2[i];
            lhs.set(i, i, v);
        }
        let rhs = weighted_cross(x, &d1, &y_work);
        w = cholesky_solve_multi(&lhs, &rhs).map_err(|e| SelectError::Invalid(e.to_string()))?;

        // Optional robust-label refinement (classification): pull Y towards
        // the model's own hardened predictions.
        if cfg.robust_labels && y.cols() > 1 {
            let pred = x.matmul_threads(&w, cfg.threads).expect("dims");
            for r in 0..n {
                let best = (0..y.cols())
                    .max_by(|&a, &b| pred.get(r, a).total_cmp(&pred.get(r, b)))
                    .unwrap_or(0);
                for c in 0..y.cols() {
                    let orig = y.get(r, c);
                    let hard = if c == best { 1.0 } else { 0.0 };
                    y_work.set(
                        r,
                        c,
                        (1.0 - cfg.label_blend) * orig + cfg.label_blend * hard,
                    );
                }
            }
        }

        let obj = objective(&w, &y_work);
        if (prev_obj - obj).abs() <= cfg.tol * prev_obj.abs().max(1e-12) {
            prev_obj = obj;
            break;
        }
        prev_obj = obj;
    }

    let feature_scores = w.row_norms();
    Ok(L21Solution {
        w,
        feature_scores,
        objective: prev_obj,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arda_linalg::stats::standardize_columns;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn planted(n: usize, d: usize, seed: u64) -> (Matrix, Vec<f64>) {
        // y depends on features 0 and 1 only.
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| 3.0 * r[0] - 2.0 * r[1] + rng.gen_range(-0.01..0.01))
            .collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn recovers_row_sparse_support_regression() {
        let (mut x, y) = planted(200, 8, 0);
        standardize_columns(&mut x);
        let ym = target_matrix(&y, Task::Regression);
        let sol = l21_solve(
            &x,
            &ym,
            &L21Config {
                gamma: 2.0,
                ..Default::default()
            },
        )
        .unwrap();
        let s = &sol.feature_scores;
        assert!(s[0] > 0.5 && s[1] > 0.3, "signal rows large: {s:?}");
        for j in 2..8 {
            assert!(s[j] < s[0] / 5.0, "noise row {j} should be small: {s:?}");
        }
        assert!(sol.iterations >= 1);
    }

    #[test]
    fn classification_one_hot_targets() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 150;
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let cls = (i % 3) as f64;
            rows.push(vec![
                cls + rng.gen_range(-0.2..0.2),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ]);
            y.push(cls);
        }
        let mut x = Matrix::from_rows(&rows).unwrap();
        standardize_columns(&mut x);
        let ym = target_matrix(&y, Task::Classification { n_classes: 3 });
        assert_eq!(ym.cols(), 3);
        let sol = l21_solve(
            &x,
            &ym,
            &L21Config {
                gamma: 1.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            sol.feature_scores[0] > 2.0 * sol.feature_scores[1],
            "class-separating feature must rank first: {:?}",
            sol.feature_scores
        );
    }

    #[test]
    fn larger_gamma_gives_sparser_rows() {
        let (mut x, y) = planted(150, 6, 2);
        standardize_columns(&mut x);
        let ym = target_matrix(&y, Task::Regression);
        let weak = l21_solve(
            &x,
            &ym,
            &L21Config {
                gamma: 0.01,
                ..Default::default()
            },
        )
        .unwrap();
        let strong = l21_solve(
            &x,
            &ym,
            &L21Config {
                gamma: 20.0,
                ..Default::default()
            },
        )
        .unwrap();
        let mass = |s: &[f64]| s.iter().sum::<f64>();
        assert!(mass(&strong.feature_scores) < mass(&weak.feature_scores));
    }

    #[test]
    fn objective_decreases_monotonically_enough() {
        let (mut x, y) = planted(100, 5, 3);
        standardize_columns(&mut x);
        let ym = target_matrix(&y, Task::Regression);
        let short = l21_solve(
            &x,
            &ym,
            &L21Config {
                max_iter: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let long = l21_solve(
            &x,
            &ym,
            &L21Config {
                max_iter: 25,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(long.objective <= short.objective + 1e-9);
    }

    #[test]
    fn robust_labels_still_finds_signal() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 120;
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let cls = (i % 2) as f64;
            rows.push(vec![
                cls * 2.0 + rng.gen_range(-0.3..0.3),
                rng.gen_range(-1.0..1.0),
            ]);
            // 10% label noise.
            let noisy = if rng.gen::<f64>() < 0.1 {
                1.0 - cls
            } else {
                cls
            };
            y.push(noisy);
        }
        let mut x = Matrix::from_rows(&rows).unwrap();
        standardize_columns(&mut x);
        let ym = target_matrix(&y, Task::Classification { n_classes: 2 });
        let cfg = L21Config {
            robust_labels: true,
            ..Default::default()
        };
        let sol = l21_solve(&x, &ym, &cfg).unwrap();
        assert!(sol.feature_scores[0] > sol.feature_scores[1]);
    }

    #[test]
    fn shape_errors() {
        let x = Matrix::zeros(3, 2);
        let y = Matrix::zeros(2, 1);
        assert!(l21_solve(&x, &y, &L21Config::default()).is_err());
        assert!(l21_solve(
            &Matrix::zeros(0, 0),
            &Matrix::zeros(0, 1),
            &L21Config::default()
        )
        .is_err());
    }

    #[test]
    fn target_matrix_shapes() {
        let y = vec![0.0, 1.0, 2.0];
        let reg = target_matrix(&y, Task::Regression);
        assert_eq!((reg.rows(), reg.cols()), (3, 1));
        let cls = target_matrix(&y, Task::Classification { n_classes: 3 });
        assert_eq!((cls.rows(), cls.cols()), (3, 3));
        assert_eq!(cls.get(2, 2), 1.0);
        assert_eq!(cls.get(2, 0), 0.0);
    }
}
