//! Feature-ranking methods: each assigns every feature a relevance score
//! (higher = better). Rankings feed the exponential search, the wrappers and
//! the RIFS ensemble.

use crate::relief::{relief_scores, ReliefConfig};
use crate::sparse_regression::{l21_solve, target_matrix, L21Config};
use crate::{Result, SelectError};
use arda_linalg::stats::standardize_columns;
use arda_ml::{Dataset, ForestConfig, Lasso, LinearSvm, LogisticRegression, RandomForest, Task};

/// The ranking models of the paper's grid (§7: "Methods such as Random
/// Forest, Sparse Regression, Mutual Information, Logistic Regression,
/// Lasso, Relief, and Linear SVM return ranking[s]").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankingMethod {
    /// Random-forest impurity importances.
    RandomForest,
    /// ℓ2,1 sparse-regression row norms (Equation 1).
    SparseRegression,
    /// Histogram mutual information.
    MutualInfo,
    /// ANOVA / correlation F statistic.
    FTest,
    /// |lasso coefficients| (regression only).
    Lasso,
    /// Logistic-regression coefficient magnitudes (classification only).
    LogisticRegression,
    /// Linear-SVM coefficient magnitudes (classification only).
    LinearSvc,
    /// ReliefF weights.
    Relief,
}

impl RankingMethod {
    /// Paper-facing name.
    pub fn name(&self) -> &'static str {
        match self {
            RankingMethod::RandomForest => "random forest",
            RankingMethod::SparseRegression => "sparse regression",
            RankingMethod::MutualInfo => "mutual info",
            RankingMethod::FTest => "f-test",
            RankingMethod::Lasso => "lasso",
            RankingMethod::LogisticRegression => "logistic reg",
            RankingMethod::LinearSvc => "linear svc",
            RankingMethod::Relief => "relief",
        }
    }

    /// Task compatibility (the `n/a` cells of Table 1).
    pub fn supports(&self, task: Task) -> bool {
        match self {
            RankingMethod::Lasso => !task.is_classification(),
            RankingMethod::LogisticRegression | RankingMethod::LinearSvc => {
                task.is_classification()
            }
            _ => true,
        }
    }

    /// All methods applicable to `task`, in the paper's table order.
    pub fn all_for(task: Task) -> Vec<RankingMethod> {
        [
            RankingMethod::SparseRegression,
            RankingMethod::RandomForest,
            RankingMethod::FTest,
            RankingMethod::Lasso,
            RankingMethod::MutualInfo,
            RankingMethod::Relief,
            RankingMethod::LinearSvc,
            RankingMethod::LogisticRegression,
        ]
        .into_iter()
        .filter(|m| m.supports(task))
        .collect()
    }
}

/// Compute per-feature scores with the given method on (all rows of) `data`.
pub fn rank_features(data: &Dataset, method: RankingMethod, seed: u64) -> Result<Vec<f64>> {
    if !method.supports(data.task) {
        return Err(SelectError::Invalid(format!(
            "{} does not support {:?}",
            method.name(),
            data.task
        )));
    }
    let x = &data.x;
    let y = &data.y;
    let scores = match method {
        RankingMethod::RandomForest => {
            let cfg = ForestConfig {
                n_trees: 32,
                max_depth: 10,
                seed,
                ..Default::default()
            };
            RandomForest::fit_xy(x, y, data.task, &cfg)?
                .importances()
                .to_vec()
        }
        RankingMethod::SparseRegression => {
            let mut xs = x.clone();
            standardize_columns(&mut xs);
            let ym = target_matrix(y, data.task);
            l21_solve(&xs, &ym, &L21Config::default())?.feature_scores
        }
        RankingMethod::MutualInfo => crate::mutual_info::mutual_info_scores(x, y, data.task, 10),
        RankingMethod::FTest => crate::ftest::f_scores(x, y, data.task),
        RankingMethod::Lasso => {
            let mut m = Lasso::new(0.05);
            m.fit(x, y)?;
            m.coefficients().iter().map(|c| c.abs()).collect()
        }
        RankingMethod::LogisticRegression => {
            let mut m = LogisticRegression::new(1e-3);
            m.fit(x, y, data.task.n_classes())?;
            m.coefficient_magnitudes()
        }
        RankingMethod::LinearSvc => {
            let mut m = LinearSvm::new(0.01);
            m.seed = seed;
            m.fit(x, y, data.task.n_classes())?;
            m.coefficient_magnitudes()
        }
        RankingMethod::Relief => {
            let cfg = ReliefConfig {
                seed,
                ..Default::default()
            };
            relief_scores(x, y, data.task, &cfg)
        }
    };
    debug_assert_eq!(scores.len(), data.n_features());
    Ok(scores)
}

/// Feature indices ordered best-first under `scores` (stable for ties).
pub fn order_by_scores(scores: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use arda_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn classification_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let cls = (i % 2) as f64;
            rows.push(vec![
                cls * 4.0 + rng.gen_range(-0.5..0.5),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ]);
            y.push(cls);
        }
        Dataset::new(
            Matrix::from_rows(&rows).unwrap(),
            y,
            vec!["sig".into(), "n1".into(), "n2".into()],
            Task::Classification { n_classes: 2 },
        )
        .unwrap()
    }

    fn regression_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 5.0 * r[0]).collect();
        Dataset::new(
            Matrix::from_rows(&rows).unwrap(),
            y,
            vec!["sig".into(), "noise".into()],
            Task::Regression,
        )
        .unwrap()
    }

    #[test]
    fn every_classification_ranker_puts_signal_first() {
        let d = classification_data(200, 0);
        for m in RankingMethod::all_for(d.task) {
            let s = rank_features(&d, m, 0).unwrap();
            let order = order_by_scores(&s);
            assert_eq!(order[0], 0, "{} misranked: {s:?}", m.name());
        }
    }

    #[test]
    fn every_regression_ranker_puts_signal_first() {
        let d = regression_data(200, 1);
        for m in RankingMethod::all_for(d.task) {
            let s = rank_features(&d, m, 0).unwrap();
            let order = order_by_scores(&s);
            assert_eq!(order[0], 0, "{} misranked: {s:?}", m.name());
        }
    }

    #[test]
    fn task_support_is_enforced() {
        let d = regression_data(50, 2);
        assert!(rank_features(&d, RankingMethod::LogisticRegression, 0).is_err());
        assert!(rank_features(&d, RankingMethod::LinearSvc, 0).is_err());
        let c = classification_data(50, 2);
        assert!(rank_features(&c, RankingMethod::Lasso, 0).is_err());
    }

    #[test]
    fn all_for_excludes_incompatible() {
        let cls = RankingMethod::all_for(Task::Classification { n_classes: 2 });
        assert!(!cls.contains(&RankingMethod::Lasso));
        assert!(cls.contains(&RankingMethod::LinearSvc));
        let reg = RankingMethod::all_for(Task::Regression);
        assert!(reg.contains(&RankingMethod::Lasso));
        assert!(!reg.contains(&RankingMethod::LogisticRegression));
    }

    #[test]
    fn order_by_scores_stable_desc() {
        assert_eq!(order_by_scores(&[0.1, 0.9, 0.9, 0.0]), vec![1, 2, 0, 3]);
        assert!(order_by_scores(&[]).is_empty());
    }
}
