//! F-test feature scoring: one-way ANOVA F for classification, the
//! regression F statistic from the Pearson correlation for regression (the
//! "f-test" baseline of Tables 1/6).

use arda_linalg::stats::pearson;
use arda_linalg::Matrix;
use arda_ml::Task;

/// One-way ANOVA F statistic of `feature` against class ids.
pub fn anova_f(feature: &[f64], labels: &[f64], n_classes: usize) -> f64 {
    assert_eq!(feature.len(), labels.len(), "anova_f: length mismatch");
    let n = feature.len();
    if n == 0 || n_classes < 2 {
        return 0.0;
    }
    let grand_mean = feature.iter().sum::<f64>() / n as f64;
    let mut group_sum = vec![0.0; n_classes];
    let mut group_n = vec![0usize; n_classes];
    for (&v, &y) in feature.iter().zip(labels) {
        let c = (y as usize).min(n_classes - 1);
        group_sum[c] += v;
        group_n[c] += 1;
    }
    let present = group_n.iter().filter(|&&c| c > 0).count();
    if present < 2 {
        return 0.0;
    }
    let mut ss_between = 0.0;
    for c in 0..n_classes {
        if group_n[c] == 0 {
            continue;
        }
        let mean = group_sum[c] / group_n[c] as f64;
        ss_between += group_n[c] as f64 * (mean - grand_mean) * (mean - grand_mean);
    }
    let mut ss_within = 0.0;
    for (&v, &y) in feature.iter().zip(labels) {
        let c = (y as usize).min(n_classes - 1);
        let mean = group_sum[c] / group_n[c] as f64;
        ss_within += (v - mean) * (v - mean);
    }
    let df_between = (present - 1) as f64;
    let df_within = (n - present) as f64;
    if ss_within <= 1e-12 || df_within <= 0.0 {
        // Perfect separation — return a large finite statistic.
        return if ss_between > 0.0 { 1e12 } else { 0.0 };
    }
    (ss_between / df_between) / (ss_within / df_within)
}

/// Univariate regression F statistic: `F = r² (n−2) / (1−r²)`.
pub fn regression_f(feature: &[f64], y: &[f64]) -> f64 {
    let n = feature.len();
    if n < 3 {
        return 0.0;
    }
    let r = pearson(feature, y);
    let r2 = r * r;
    if (1.0 - r2) <= 1e-12 {
        return 1e12;
    }
    r2 * (n as f64 - 2.0) / (1.0 - r2)
}

/// F scores of all columns of `x` for the given task.
pub fn f_scores(x: &Matrix, y: &[f64], task: Task) -> Vec<f64> {
    (0..x.cols())
        .map(|c| {
            let col = x.col(c);
            match task {
                Task::Classification { n_classes } => anova_f(&col, y, n_classes),
                Task::Regression => regression_f(&col, y),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn anova_separated_groups_score_high() {
        let labels: Vec<f64> = (0..100).map(|i| (i % 2) as f64).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let separated: Vec<f64> = labels
            .iter()
            .map(|&c| c * 10.0 + rng.gen_range(-0.5..0.5))
            .collect();
        let noise: Vec<f64> = (0..100).map(|_| rng.gen_range(-1.0..1.0)).collect();
        assert!(anova_f(&separated, &labels, 2) > 100.0);
        assert!(anova_f(&noise, &labels, 2) < 5.0);
    }

    #[test]
    fn anova_three_groups() {
        let labels: Vec<f64> = (0..90).map(|i| (i % 3) as f64).collect();
        let x: Vec<f64> = labels.iter().map(|&c| c * 5.0).collect();
        // Perfect separation → large finite value.
        assert!(anova_f(&x, &labels, 3) >= 1e12);
    }

    #[test]
    fn anova_degenerate_cases() {
        assert_eq!(anova_f(&[], &[], 2), 0.0);
        assert_eq!(anova_f(&[1.0, 2.0], &[0.0, 0.0], 2), 0.0); // single class present
        assert_eq!(anova_f(&[1.0, 2.0], &[0.0, 1.0], 1), 0.0); // k < 2
        let constant = vec![3.0; 10];
        let labels: Vec<f64> = (0..10).map(|i| (i % 2) as f64).collect();
        assert_eq!(anova_f(&constant, &labels, 2), 0.0);
    }

    #[test]
    fn regression_f_correlated_beats_noise() {
        let mut rng = StdRng::seed_from_u64(1);
        let y: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let corr: Vec<f64> = y
            .iter()
            .map(|v| 2.0 * v + rng.gen_range(-5.0..5.0))
            .collect();
        let noise: Vec<f64> = (0..200).map(|_| rng.gen_range(0.0..200.0)).collect();
        assert!(regression_f(&corr, &y) > 100.0 * regression_f(&noise, &y).max(1.0));
    }

    #[test]
    fn regression_f_perfect_correlation_is_large() {
        let y: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert!(regression_f(&y, &y) >= 1e12);
        assert_eq!(regression_f(&[1.0, 2.0], &[1.0, 2.0]), 0.0); // n < 3
    }

    #[test]
    fn f_scores_dispatch_by_task() {
        let x = Matrix::from_rows(&[
            vec![0.0, 1.0],
            vec![10.0, 2.0],
            vec![0.1, 3.0],
            vec![10.1, 4.0],
        ])
        .unwrap();
        let y_cls = vec![0.0, 1.0, 0.0, 1.0];
        let s = f_scores(&x, &y_cls, Task::Classification { n_classes: 2 });
        assert!(s[0] > s[1]);
        let y_reg = vec![1.0, 2.0, 3.0, 4.0];
        let s = f_scores(&x, &y_reg, Task::Regression);
        assert!(s[1] > s[0]);
    }
}
