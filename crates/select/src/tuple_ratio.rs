//! The Tuple-Ratio decision rule of Kumar et al. ("To join or not to join?",
//! SIGMOD 2016), used by ARDA as an optional table pre-filter (§7 "Tuple
//! Ratio Test", Table 4).
//!
//! The Tuple Ratio is `nS / nR`: base-table training examples over the
//! foreign-key domain size. When it exceeds a threshold τ, the foreign table
//! is "safe to avoid" — the key itself already carries all the signal the
//! join could add — so ARDA can skip the join (and all downstream feature
//! selection for that table).

/// Outcome of the rule for one candidate table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TupleRatioDecision {
    /// Ratio above threshold: drop the table before feature selection.
    Eliminate,
    /// Ratio at or below threshold: keep the candidate.
    Keep,
}

/// Apply the rule: `tuple_ratio = n_base_rows / foreign_key_domain`.
///
/// `threshold` is the tuned τ (Table 4 optimises it per dataset; Kumar et
/// al. suggest per-model tuning with τ ≈ 20 for linear models). An empty
/// foreign-key domain yields an infinite ratio → eliminate.
pub fn tuple_ratio_filter(
    n_base_rows: usize,
    foreign_key_domain: usize,
    threshold: f64,
) -> TupleRatioDecision {
    let ratio = if foreign_key_domain == 0 {
        f64::INFINITY
    } else {
        n_base_rows as f64 / foreign_key_domain as f64
    };
    if ratio > threshold {
        TupleRatioDecision::Eliminate
    } else {
        TupleRatioDecision::Keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_ratio_eliminates() {
        // 1000 rows, 10 distinct keys → ratio 100 > τ=20.
        assert_eq!(
            tuple_ratio_filter(1000, 10, 20.0),
            TupleRatioDecision::Eliminate
        );
    }

    #[test]
    fn low_ratio_keeps() {
        // 100 rows, 90 distinct keys → ratio ≈ 1.1 ≤ τ=20.
        assert_eq!(tuple_ratio_filter(100, 90, 20.0), TupleRatioDecision::Keep);
    }

    #[test]
    fn boundary_is_kept() {
        assert_eq!(tuple_ratio_filter(200, 10, 20.0), TupleRatioDecision::Keep);
    }

    #[test]
    fn empty_domain_eliminates() {
        assert_eq!(
            tuple_ratio_filter(10, 0, 20.0),
            TupleRatioDecision::Eliminate
        );
    }
}
