//! Histogram-based mutual information between each feature and the target
//! (the "mutual info" filter baseline of Tables 1/6).

use arda_ml::Task;

/// Equal-width bin index of `v` over `[lo, hi]` with `bins` buckets.
fn bin_of(v: f64, lo: f64, hi: f64, bins: usize) -> usize {
    if hi <= lo {
        return 0;
    }
    let t = ((v - lo) / (hi - lo) * bins as f64).floor() as isize;
    t.clamp(0, bins as isize - 1) as usize
}

/// Discretise the target: class ids pass through; regression targets are
/// quantile-binned into `bins` buckets.
pub fn discretize_target(y: &[f64], task: Task, bins: usize) -> (Vec<usize>, usize) {
    match task {
        Task::Classification { n_classes } => (
            y.iter()
                .map(|&v| (v as usize).min(n_classes.saturating_sub(1)))
                .collect(),
            n_classes.max(1),
        ),
        Task::Regression => {
            let bins = bins.max(2);
            let mut sorted: Vec<f64> = y.to_vec();
            sorted.sort_by(|a, b| a.total_cmp(b));
            // Quantile edges.
            let edges: Vec<f64> = (1..bins)
                .map(|b| sorted[(b * sorted.len() / bins).min(sorted.len() - 1)])
                .collect();
            let ids = y
                .iter()
                .map(|&v| edges.partition_point(|&e| e < v).min(bins - 1))
                .collect();
            (ids, bins)
        }
    }
}

/// Mutual information (nats) between a continuous feature and a discrete
/// target, via an equal-width histogram on the feature.
pub fn mutual_information(
    feature: &[f64],
    target_ids: &[usize],
    n_target: usize,
    bins: usize,
) -> f64 {
    assert_eq!(feature.len(), target_ids.len(), "mi: length mismatch");
    let n = feature.len();
    if n == 0 || n_target == 0 {
        return 0.0;
    }
    let bins = bins.max(2);
    let lo = feature.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = feature.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut joint = vec![0usize; bins * n_target];
    let mut px = vec![0usize; bins];
    let mut py = vec![0usize; n_target];
    for (&v, &t) in feature.iter().zip(target_ids) {
        let b = bin_of(v, lo, hi, bins);
        joint[b * n_target + t] += 1;
        px[b] += 1;
        py[t] += 1;
    }
    let nf = n as f64;
    let mut mi = 0.0;
    for b in 0..bins {
        for t in 0..n_target {
            let c = joint[b * n_target + t];
            if c == 0 {
                continue;
            }
            let pxy = c as f64 / nf;
            let p_x = px[b] as f64 / nf;
            let p_y = py[t] as f64 / nf;
            mi += pxy * (pxy / (p_x * p_y)).ln();
        }
    }
    mi.max(0.0)
}

/// MI score of every column of `x` against `y`.
pub fn mutual_info_scores(x: &arda_linalg::Matrix, y: &[f64], task: Task, bins: usize) -> Vec<f64> {
    let (target_ids, n_target) = discretize_target(y, task, bins);
    (0..x.cols())
        .map(|c| mutual_information(&x.col(c), &target_ids, n_target, bins))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use arda_linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn perfect_dependence_beats_noise() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 500;
        let y: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
        let signal: Vec<f64> = y
            .iter()
            .map(|&c| c * 5.0 + rng.gen_range(-0.1..0.1))
            .collect();
        let noise: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let (ids, k) = discretize_target(&y, Task::Classification { n_classes: 2 }, 10);
        let mi_signal = mutual_information(&signal, &ids, k, 10);
        let mi_noise = mutual_information(&noise, &ids, k, 10);
        assert!(mi_signal > 0.5, "signal MI {mi_signal}");
        assert!(mi_noise < 0.05, "noise MI {mi_noise}");
    }

    #[test]
    fn independent_variables_have_near_zero_mi() {
        let mut rng = StdRng::seed_from_u64(1);
        let x: Vec<f64> = (0..2000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let t: Vec<usize> = (0..2000).map(|_| rng.gen_range(0..4)).collect();
        let mi = mutual_information(&x, &t, 4, 8);
        assert!(mi < 0.02, "mi {mi}");
    }

    #[test]
    fn regression_target_quantile_bins() {
        let y: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let (ids, bins) = discretize_target(&y, Task::Regression, 4);
        assert_eq!(bins, 4);
        // Quartiles should have 25 members each.
        for b in 0..4 {
            let c = ids.iter().filter(|&&v| v == b).count();
            assert!((20..=30).contains(&c), "bin {b} has {c}");
        }
    }

    #[test]
    fn scores_rank_signal_first() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 300;
        let y: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![y[i] * 2.0, rng.gen_range(-1.0..1.0)])
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let scores = mutual_info_scores(&x, &y, Task::Regression, 8);
        assert!(scores[0] > scores[1] * 3.0, "{scores:?}");
    }

    #[test]
    fn constant_feature_zero_mi() {
        let x = vec![5.0; 100];
        let t: Vec<usize> = (0..100).map(|i| i % 2).collect();
        assert_eq!(mutual_information(&x, &t, 2, 8), 0.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mutual_information(&[], &[], 2, 4), 0.0);
    }
}
