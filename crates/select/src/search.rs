//! Exponential subset search over a feature ranking (ARDA §6.3).
//!
//! "We start with 2 features, and repeatedly double the number of features
//! we test until model accuracy decreases. Suppose the model accuracy first
//! decreases when we test 2^k features. Then, we perform a binary search
//! between 2^(k−1) and 2^k" — a modification of the unbounded search of
//! Bentley & Yao. Compared to a linear (forward) scan this trains the model
//! `O(log d)` instead of `O(d)` times.

use crate::ranking::order_by_scores;
use crate::{Result, SelectionContext};
use arda_ml::Dataset;

/// Select the best top-`m` prefix of the ranking via doubling + binary
/// search, evaluating on the context's holdout split. Returns the selected
/// feature indices (best-first).
pub fn exponential_search(
    data: &Dataset,
    ctx: &SelectionContext,
    scores: &[f64],
) -> Result<Vec<usize>> {
    let order = order_by_scores(scores);
    let d = order.len();
    if d == 0 {
        return Ok(Vec::new());
    }
    if d == 1 {
        return Ok(order);
    }

    let eval_prefix = |m: usize| -> Result<f64> { ctx.evaluate(data, &order[..m.min(d)]) };

    // Doubling phase.
    let mut best_m = 2.min(d);
    let mut best_score = eval_prefix(best_m)?;
    let mut m = best_m;
    loop {
        if m >= d {
            break;
        }
        let next = (m * 2).min(d);
        let score = eval_prefix(next)?;
        if score < best_score {
            // First decrease at `next` — binary search in (m, next).
            let (mut lo, mut hi) = (m, next);
            while hi - lo > 1 {
                let mid = (lo + hi) / 2;
                let s = eval_prefix(mid)?;
                if s >= best_score {
                    best_score = s;
                    best_m = mid;
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            break;
        }
        best_score = score;
        best_m = next;
        m = next;
    }
    Ok(order[..best_m].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use arda_linalg::Matrix;
    use arda_ml::{Dataset, Task};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// `n_signal` informative features followed by noise; labels need all
    /// signal features (sum parity).
    fn dataset(n: usize, n_signal: usize, n_noise: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row: Vec<f64> = Vec::with_capacity(n_signal + n_noise);
            let mut acc = 0.0;
            for _ in 0..n_signal {
                let v: f64 = rng.gen_range(0.0..1.0);
                acc += v;
                row.push(v);
            }
            for _ in 0..n_noise {
                row.push(rng.gen_range(0.0..1.0));
            }
            rows.push(row);
            y.push(if acc > n_signal as f64 / 2.0 {
                1.0
            } else {
                0.0
            });
        }
        let names = (0..n_signal + n_noise).map(|i| format!("f{i}")).collect();
        Dataset::new(
            Matrix::from_rows(&rows).unwrap(),
            y,
            names,
            Task::Classification { n_classes: 2 },
        )
        .unwrap()
    }

    #[test]
    fn keeps_signal_prefix() {
        let d = dataset(300, 3, 12, 0);
        let ctx = SelectionContext::standard(&d, 0);
        // Perfect oracle ranking: signal features first.
        let mut scores = vec![0.0; 15];
        for (i, s) in scores.iter_mut().enumerate().take(3) {
            *s = 10.0 - i as f64;
        }
        let sel = exponential_search(&d, &ctx, &scores).unwrap();
        assert!(sel.len() >= 2, "at least the doubling base: {sel:?}");
        assert!(
            sel.contains(&0) && sel.contains(&1),
            "top-ranked kept: {sel:?}"
        );
        assert!(sel.len() < 15, "must not balloon to all features: {sel:?}");
    }

    #[test]
    fn empty_and_singleton() {
        let d = dataset(40, 1, 0, 1);
        let ctx = SelectionContext::standard(&d, 1);
        assert_eq!(exponential_search(&d, &ctx, &[1.0]).unwrap(), vec![0]);
        let empty: Vec<f64> = vec![];
        assert!(exponential_search(&d, &ctx, &empty).unwrap().is_empty());
    }

    #[test]
    fn never_selects_more_than_d() {
        let d = dataset(100, 2, 1, 2);
        let ctx = SelectionContext::standard(&d, 2);
        let sel = exponential_search(&d, &ctx, &[3.0, 2.0, 1.0]).unwrap();
        assert!(sel.len() <= 3);
        let mut dedup = sel.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), sel.len(), "no duplicates");
    }
}
