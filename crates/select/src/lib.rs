//! # arda-select
//!
//! Feature selection for the ARDA reproduction: the paper's contribution —
//! **RIFS** (Random-Injection Feature Selection, §6, Algorithms 1–3) — plus
//! every baseline selector of the experimental grid (§7): random-forest,
//! sparse-regression (ℓ2,1), mutual-information, F-test, lasso, logistic,
//! linear-SVM and Relief rankings (consumed through exponential search), the
//! forward/backward/RFE wrappers, and the Tuple-Ratio table-filtering rule
//! of Kumar et al.
//!
//! All selectors share one protocol ([`SelectionContext`]): rank/search on a
//! train split, validate on a holdout split, return the selected feature
//! indices with timing.

// Numeric kernels below index several arrays with one loop variable;
// iterator rewrites would obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod ftest;
pub mod mutual_info;
pub mod ranking;
pub mod relief;
pub mod rifs;
pub mod search;
pub mod sparse_regression;
pub mod tuple_ratio;
pub mod wrappers;

pub use ranking::{rank_features, RankingMethod};
pub use rifs::{rifs_fractions, rifs_select, InjectionDistribution, RifsConfig, RifsReport};
pub use search::exponential_search;
pub use tuple_ratio::{tuple_ratio_filter, TupleRatioDecision};

use arda_ml::{Dataset, MlError, ModelKind};
use std::time::Instant;

/// Error type for selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectError {
    /// Underlying ML failure.
    Ml(MlError),
    /// Invalid configuration (e.g. selector/task mismatch).
    Invalid(String),
}

impl From<MlError> for SelectError {
    fn from(e: MlError) -> Self {
        SelectError::Ml(e)
    }
}

impl std::fmt::Display for SelectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectError::Ml(e) => write!(f, "ml error: {e}"),
            SelectError::Invalid(msg) => write!(f, "invalid: {msg}"),
        }
    }
}

impl std::error::Error for SelectError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SelectError>;

/// Shared evaluation protocol: a dataset with fixed train/holdout splits and
/// the estimator used for wrapper evaluations.
#[derive(Debug, Clone)]
pub struct SelectionContext {
    /// Train-split row indices.
    pub train: Vec<usize>,
    /// Holdout-split row indices.
    pub holdout: Vec<usize>,
    /// Estimator refit during searches (paper default: random forest).
    pub estimator: ModelKind,
    /// Master seed.
    pub seed: u64,
}

impl SelectionContext {
    /// Standard context: stratified (classification) or shuffled 75/25 split
    /// with the paper's random-forest estimator.
    pub fn standard(data: &Dataset, seed: u64) -> Self {
        let (train, holdout) = if data.task.is_classification() {
            arda_ml::stratified_split(&data.y, 0.25, seed)
        } else {
            arda_ml::train_test_split(data.n_samples(), 0.25, seed)
        };
        SelectionContext {
            train,
            holdout,
            estimator: ModelKind::RandomForest {
                n_trees: 32,
                max_depth: 10,
            },
            seed,
        }
    }

    /// Holdout score of the estimator restricted to `features`.
    pub fn evaluate(&self, data: &Dataset, features: &[usize]) -> Result<f64> {
        if features.is_empty() {
            return Ok(f64::NEG_INFINITY);
        }
        let sub = data.select_features(features)?;
        Ok(arda_ml::model::holdout_score(
            &sub,
            &self.estimator,
            &self.train,
            &self.holdout,
            self.seed,
        )?)
    }
}

/// Every feature-selection method of the paper's evaluation grid.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectorKind {
    /// Keep all features (the "all features" rows of Tables 1/6).
    AllFeatures,
    /// RIFS (§6) with the given configuration.
    Rifs(RifsConfig),
    /// Ranking + exponential search.
    Ranking(RankingMethod),
    /// Forward selection over the random-forest ranking.
    ForwardSelection,
    /// Backward elimination over the random-forest ranking.
    BackwardSelection,
    /// Recursive feature elimination (random-forest ranker).
    Rfe,
}

impl SelectorKind {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            SelectorKind::AllFeatures => "all features",
            SelectorKind::Rifs(_) => "RIFS",
            SelectorKind::Ranking(m) => m.name(),
            SelectorKind::ForwardSelection => "forward selection",
            SelectorKind::BackwardSelection => "backward selection",
            SelectorKind::Rfe => "RFE",
        }
    }

    /// True when the selector can run on the given task (lasso is
    /// regression-only; logistic / linear SVC are classification-only —
    /// the `n/a` cells of Table 1).
    pub fn supports(&self, task: arda_ml::Task) -> bool {
        match self {
            SelectorKind::Ranking(m) => m.supports(task),
            _ => true,
        }
    }
}

/// Outcome of running one selector.
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// Chosen feature indices (into the dataset's columns).
    pub selected: Vec<usize>,
    /// Holdout score of the estimator on the chosen subset.
    pub holdout_score: f64,
    /// Wall-clock selection time in seconds.
    pub seconds: f64,
}

/// Run a selector end-to-end under the shared protocol.
pub fn run_selector(
    data: &Dataset,
    kind: &SelectorKind,
    ctx: &SelectionContext,
) -> Result<SelectionResult> {
    if !kind.supports(data.task) {
        return Err(SelectError::Invalid(format!(
            "{} does not support {:?}",
            kind.name(),
            data.task
        )));
    }
    let start = Instant::now();
    let selected = match kind {
        SelectorKind::AllFeatures => (0..data.n_features()).collect(),
        SelectorKind::Rifs(cfg) => rifs::rifs_select(data, ctx, cfg)?.selected,
        SelectorKind::Ranking(method) => {
            let train_data = data.select_rows(&ctx.train)?;
            let scores = rank_features(&train_data, *method, ctx.seed)?;
            exponential_search(data, ctx, &scores)?
        }
        SelectorKind::ForwardSelection => wrappers::forward_selection(data, ctx)?,
        SelectorKind::BackwardSelection => wrappers::backward_elimination(data, ctx)?,
        SelectorKind::Rfe => wrappers::rfe(data, ctx)?,
    };
    let seconds = start.elapsed().as_secs_f64();
    let holdout_score = ctx.evaluate(data, &selected)?;
    Ok(SelectionResult {
        selected,
        holdout_score,
        seconds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arda_linalg::Matrix;
    use arda_ml::Task;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// 2 informative + 8 noise features, binary labels.
    pub(crate) fn planted_classification(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let cls = (i % 2) as f64;
            let mut row = vec![
                cls * 3.0 + rng.gen_range(-0.5..0.5),
                -cls * 2.0 + rng.gen_range(-0.5..0.5),
            ];
            for _ in 0..8 {
                row.push(rng.gen_range(-1.0..1.0));
            }
            rows.push(row);
            y.push(cls);
        }
        let names = (0..10).map(|i| format!("f{i}")).collect();
        Dataset::new(
            Matrix::from_rows(&rows).unwrap(),
            y,
            names,
            Task::Classification { n_classes: 2 },
        )
        .unwrap()
    }

    #[test]
    fn all_features_selects_everything() {
        let d = planted_classification(80, 0);
        let ctx = SelectionContext::standard(&d, 0);
        let r = run_selector(&d, &SelectorKind::AllFeatures, &ctx).unwrap();
        assert_eq!(r.selected.len(), 10);
        assert!(r.holdout_score > 0.8);
    }

    #[test]
    fn ranking_selector_finds_signal() {
        let d = planted_classification(120, 1);
        let ctx = SelectionContext::standard(&d, 1);
        let r = run_selector(
            &d,
            &SelectorKind::Ranking(RankingMethod::RandomForest),
            &ctx,
        )
        .unwrap();
        assert!(
            r.selected.contains(&0),
            "signal feature 0 selected: {:?}",
            r.selected
        );
        assert!(r.holdout_score > 0.85);
        assert!(r.seconds >= 0.0);
    }

    #[test]
    fn unsupported_selector_task_pairs_error() {
        let d = planted_classification(40, 2);
        let ctx = SelectionContext::standard(&d, 2);
        assert!(run_selector(&d, &SelectorKind::Ranking(RankingMethod::Lasso), &ctx).is_err());
    }

    #[test]
    fn context_evaluate_empty_is_neg_infinity() {
        let d = planted_classification(40, 3);
        let ctx = SelectionContext::standard(&d, 3);
        assert_eq!(ctx.evaluate(&d, &[]).unwrap(), f64::NEG_INFINITY);
    }

    #[test]
    fn selector_names_match_paper() {
        assert_eq!(SelectorKind::Rifs(RifsConfig::default()).name(), "RIFS");
        assert_eq!(SelectorKind::ForwardSelection.name(), "forward selection");
        assert_eq!(
            SelectorKind::Ranking(RankingMethod::SparseRegression).name(),
            "sparse regression"
        );
    }
}
