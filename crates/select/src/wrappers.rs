//! Wrapper selectors: forward selection, backward elimination and recursive
//! feature elimination, all driven by the random-forest ranking as in the
//! paper ("Forward Selection, Backward Selection, and Recursive Feature
//! elimination (RFE) use Random Forest ranker", §7).

use crate::ranking::{order_by_scores, rank_features, RankingMethod};
use crate::{Result, SelectionContext};
use arda_ml::Dataset;

/// Forward selection: walk the ranking best-first, greedily keeping each
/// feature that improves the holdout score. Stops early after `patience`
/// consecutive non-improvements (the paper observes forward selection is
/// accurate but an order of magnitude slower than RIFS — the per-step refits
/// are the cost).
pub fn forward_selection(data: &Dataset, ctx: &SelectionContext) -> Result<Vec<usize>> {
    let train_data = data.select_rows(&ctx.train)?;
    let scores = rank_features(&train_data, RankingMethod::RandomForest, ctx.seed)?;
    let order = order_by_scores(&scores);

    let patience = 8usize;
    let mut selected: Vec<usize> = Vec::new();
    let mut best_score = f64::NEG_INFINITY;
    let mut misses = 0usize;
    for &f in &order {
        let mut candidate = selected.clone();
        candidate.push(f);
        let score = ctx.evaluate(data, &candidate)?;
        if score > best_score {
            best_score = score;
            selected = candidate;
            misses = 0;
        } else {
            misses += 1;
            if misses >= patience {
                break;
            }
        }
    }
    if selected.is_empty() && !order.is_empty() {
        selected.push(order[0]);
    }
    Ok(selected)
}

/// Backward elimination: start from all features and walk the ranking
/// worst-first, dropping each feature whose removal does not hurt the
/// holdout score.
pub fn backward_elimination(data: &Dataset, ctx: &SelectionContext) -> Result<Vec<usize>> {
    let train_data = data.select_rows(&ctx.train)?;
    let scores = rank_features(&train_data, RankingMethod::RandomForest, ctx.seed)?;
    let mut order = order_by_scores(&scores);
    order.reverse(); // worst first

    let mut selected: Vec<usize> = (0..data.n_features()).collect();
    let mut best_score = ctx.evaluate(data, &selected)?;
    for &f in &order {
        if selected.len() <= 1 {
            break;
        }
        let candidate: Vec<usize> = selected.iter().copied().filter(|&j| j != f).collect();
        let score = ctx.evaluate(data, &candidate)?;
        if score >= best_score {
            best_score = score;
            selected = candidate;
        }
    }
    Ok(selected)
}

/// Recursive feature elimination: repeatedly refit the random-forest ranker
/// on the surviving features and drop the worst `drop_fraction`, tracking
/// the best-scoring subset seen.
pub fn rfe(data: &Dataset, ctx: &SelectionContext) -> Result<Vec<usize>> {
    let drop_fraction = 0.25f64;
    let mut current: Vec<usize> = (0..data.n_features()).collect();
    let mut best_subset = current.clone();
    let mut best_score = ctx.evaluate(data, &current)?;

    while current.len() > 2 {
        // Re-rank the surviving features on the train split.
        let sub = data.select_features(&current)?.select_rows(&ctx.train)?;
        let scores = rank_features(&sub, RankingMethod::RandomForest, ctx.seed)?;
        let order = order_by_scores(&scores); // indices into `current`
        let keep = (current.len() as f64 * (1.0 - drop_fraction)).floor() as usize;
        let keep = keep.clamp(1, current.len() - 1);
        let mut next: Vec<usize> = order[..keep].iter().map(|&i| current[i]).collect();
        next.sort_unstable();
        let score = ctx.evaluate(data, &next)?;
        if score >= best_score {
            best_score = score;
            best_subset = next.clone();
        }
        current = next;
    }
    Ok(best_subset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arda_linalg::Matrix;
    use arda_ml::Task;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn planted(n: usize, n_noise: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let cls = (i % 2) as f64;
            let mut row = vec![cls * 3.0 + rng.gen_range(-0.4..0.4)];
            for _ in 0..n_noise {
                row.push(rng.gen_range(-1.0..1.0));
            }
            rows.push(row);
            y.push(cls);
        }
        let names = (0..1 + n_noise).map(|i| format!("f{i}")).collect();
        Dataset::new(
            Matrix::from_rows(&rows).unwrap(),
            y,
            names,
            Task::Classification { n_classes: 2 },
        )
        .unwrap()
    }

    #[test]
    fn forward_keeps_signal() {
        let d = planted(150, 6, 0);
        let ctx = SelectionContext::standard(&d, 0);
        let sel = forward_selection(&d, &ctx).unwrap();
        assert!(sel.contains(&0), "signal selected: {sel:?}");
        assert!(sel.len() < d.n_features(), "some noise dropped");
    }

    #[test]
    fn backward_drops_noise() {
        let d = planted(150, 6, 1);
        let ctx = SelectionContext::standard(&d, 1);
        let sel = backward_elimination(&d, &ctx).unwrap();
        assert!(sel.contains(&0), "signal survives: {sel:?}");
        assert!(sel.len() < d.n_features(), "noise eliminated: {sel:?}");
    }

    #[test]
    fn rfe_keeps_signal() {
        let d = planted(150, 7, 2);
        let ctx = SelectionContext::standard(&d, 2);
        let sel = rfe(&d, &ctx).unwrap();
        assert!(sel.contains(&0), "signal survives RFE: {sel:?}");
    }

    #[test]
    fn wrappers_never_return_empty() {
        let d = planted(60, 2, 3);
        let ctx = SelectionContext::standard(&d, 3);
        assert!(!forward_selection(&d, &ctx).unwrap().is_empty());
        assert!(!backward_elimination(&d, &ctx).unwrap().is_empty());
        assert!(!rfe(&d, &ctx).unwrap().is_empty());
    }

    #[test]
    fn single_feature_dataset() {
        let d = planted(60, 0, 4);
        let ctx = SelectionContext::standard(&d, 4);
        assert_eq!(forward_selection(&d, &ctx).unwrap(), vec![0]);
        assert_eq!(backward_elimination(&d, &ctx).unwrap(), vec![0]);
        assert_eq!(rfe(&d, &ctx).unwrap(), vec![0]);
    }
}
