//! ReliefF feature weighting (the "relief" baseline of Tables 1/6).
//!
//! Classic embedded selector: a feature scores well when it separates each
//! sample from its nearest *misses* (different class) but not from its
//! nearest *hits* (same class). The paper notes Relief degrades under noise
//! (§5) — the micro benchmarks (Fig. 6) reproduce that behaviour.
//!
//! Regression targets are quantile-binned first (a standard RReliefF
//! approximation; bins follow [`crate::mutual_info::discretize_target`]).

use crate::mutual_info::discretize_target;
use arda_linalg::Matrix;
use arda_ml::{nearest_neighbors_threads, Task};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Anchor·row·feature work units below which the anchor loop stays
/// sequential.
const PAR_MIN_WORK: usize = 1 << 15;

/// ReliefF configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliefConfig {
    /// Neighbours per hit/miss search.
    pub k: usize,
    /// Sampled anchor rows (`None` → all rows).
    pub n_samples: Option<usize>,
    /// Quantile bins for regression targets.
    pub regression_bins: usize,
    /// RNG seed for anchor sampling.
    pub seed: u64,
}

impl Default for ReliefConfig {
    fn default() -> Self {
        ReliefConfig {
            k: 5,
            n_samples: Some(100),
            regression_bins: 4,
            seed: 0,
        }
    }
}

/// ReliefF weights for every feature (higher = more relevant).
pub fn relief_scores(x: &Matrix, y: &[f64], task: Task, cfg: &ReliefConfig) -> Vec<f64> {
    let n = x.rows();
    let d = x.cols();
    if n == 0 || d == 0 {
        return vec![0.0; d];
    }
    let (classes, _) = discretize_target(y, task, cfg.regression_bins);

    // Per-feature ranges for distance normalisation (one reused gather
    // buffer across the column sweep).
    let mut ranges = vec![0.0f64; d];
    let mut buf = Vec::new();
    for (c, range) in ranges.iter_mut().enumerate() {
        x.col_into(c, &mut buf);
        let lo = buf.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = buf.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        *range = (hi - lo).max(1e-12);
    }

    let mut anchors: Vec<usize> = (0..n).collect();
    if let Some(m) = cfg.n_samples {
        if m < n {
            anchors.shuffle(&mut StdRng::seed_from_u64(cfg.seed));
            anchors.truncate(m);
        }
    }

    // Each anchor's hit/miss search and weight delta is independent; the
    // deltas are reduced in anchor order afterwards, so the accumulated
    // weights match the sequential loop at any thread count. Small
    // datasets stay sequential (the per-anchor scan costs ~n·d work).
    let threads = arda_par::threads_for(0, anchors.len() * n * d, PAR_MIN_WORK);
    let deltas: Vec<Option<Vec<f64>>> = arda_par::par_map(&anchors, threads, |_, &i| {
        // Inner scans run on this anchor's split of the shared work budget:
        // sequential when the anchor fan-out is wide, parallel when few
        // anchors leave budget to spare — never oversubscribed.
        let hits = nearest_neighbors_threads(x, i, cfg.k, |j| classes[j] == classes[i], 0);
        let misses = nearest_neighbors_threads(x, i, cfg.k, |j| classes[j] != classes[i], 0);
        if hits.is_empty() || misses.is_empty() {
            return None;
        }
        let anchor = x.row(i);
        let mut delta = vec![0.0f64; d];
        for (f, w) in delta.iter_mut().enumerate() {
            let hit_diff: f64 = hits
                .iter()
                .map(|&h| (anchor[f] - x.get(h, f)).abs() / ranges[f])
                .sum::<f64>()
                / hits.len() as f64;
            let miss_diff: f64 = misses
                .iter()
                .map(|&m| (anchor[f] - x.get(m, f)).abs() / ranges[f])
                .sum::<f64>()
                / misses.len() as f64;
            *w = miss_diff - hit_diff;
        }
        Some(delta)
    });

    let mut weights = vec![0.0f64; d];
    let mut updates = 0usize;
    for delta in deltas.into_iter().flatten() {
        updates += 1;
        for (w, v) in weights.iter_mut().zip(&delta) {
            *w += v;
        }
    }
    if updates > 0 {
        weights.iter_mut().for_each(|w| *w /= updates as f64);
    }
    weights
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn planted(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let cls = (i % 2) as f64;
            rows.push(vec![
                cls * 2.0 + rng.gen_range(-0.3..0.3),
                rng.gen_range(-1.0..1.0),
            ]);
            y.push(cls);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn signal_feature_outranks_noise() {
        let (x, y) = planted(200, 0);
        let w = relief_scores(
            &x,
            &y,
            Task::Classification { n_classes: 2 },
            &ReliefConfig::default(),
        );
        assert!(w[0] > 0.2, "signal weight {w:?}");
        assert!(w[0] > w[1] * 3.0, "{w:?}");
    }

    #[test]
    fn regression_binning_path() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 150;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64, rng.gen_range(-1.0..1.0)])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * 10.0).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let w = relief_scores(&x, &y, Task::Regression, &ReliefConfig::default());
        assert!(w[0] > w[1], "{w:?}");
    }

    #[test]
    fn single_class_gives_zero_weights() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = vec![0.0, 0.0, 0.0];
        let w = relief_scores(
            &x,
            &y,
            Task::Classification { n_classes: 2 },
            &ReliefConfig::default(),
        );
        assert_eq!(w, vec![0.0]);
    }

    #[test]
    fn empty_input() {
        let x = Matrix::zeros(0, 3);
        let w = relief_scores(&x, &[], Task::Regression, &ReliefConfig::default());
        assert_eq!(w, vec![0.0; 3]);
    }

    #[test]
    fn sampling_is_deterministic() {
        let (x, y) = planted(120, 2);
        let cfg = ReliefConfig {
            n_samples: Some(30),
            seed: 9,
            ..Default::default()
        };
        let a = relief_scores(&x, &y, Task::Classification { n_classes: 2 }, &cfg);
        let b = relief_scores(&x, &y, Task::Classification { n_classes: 2 }, &cfg);
        assert_eq!(a, b);
    }
}
