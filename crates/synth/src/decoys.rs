//! Decoy-table generation: tables that join cleanly onto the base table but
//! whose columns are pure noise. These reproduce the "highly noisy"
//! candidate collections ARDA is designed for (§2: "the majority of the
//! joins are semantically meaningless and will not improve a predictive
//! model").

use arda_table::{Column, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a decoy table named `name` keyed by `key_name` over the given key
/// domain (so discovery *will* find it and the join *will* succeed), with
/// `n_cols` random value columns of mixed types.
pub fn decoy_table(
    name: &str,
    key_name: &str,
    key_domain: &[Value],
    n_cols: usize,
    seed: u64,
) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    // Random subset (~80%) of the key domain, shuffled — imperfect coverage
    // like real repository tables.
    let mut keys: Vec<Value> = key_domain.to_vec();
    for i in (1..keys.len()).rev() {
        keys.swap(i, rng.gen_range(0..=i));
    }
    let keep = ((keys.len() as f64) * 0.8).ceil() as usize;
    keys.truncate(keep.max(1));
    let n = keys.len();

    let key_col = match keys.first() {
        Some(Value::Str(_)) => Column::from_strings(
            key_name,
            keys.iter()
                .map(|v| match v {
                    Value::Str(s) => s.clone(),
                    other => other.to_string(),
                })
                .collect(),
        ),
        Some(Value::Timestamp(_)) => Column::from_timestamps(
            key_name,
            keys.iter().map(|v| v.as_i64().unwrap_or(0)).collect(),
        ),
        _ => Column::from_i64(
            key_name,
            keys.iter().map(|v| v.as_i64().unwrap_or(0)).collect(),
        ),
    };

    let mut cols = vec![key_col];
    for c in 0..n_cols.max(1) {
        match rng.gen_range(0..3) {
            0 => {
                let scale: f64 = rng.gen_range(0.5..20.0);
                cols.push(Column::from_f64(
                    format!("noise_f{c}"),
                    (0..n).map(|_| rng.gen_range(-scale..scale)).collect(),
                ));
            }
            1 => {
                let hi: i64 = rng.gen_range(2..100);
                cols.push(Column::from_i64(
                    format!("noise_i{c}"),
                    (0..n).map(|_| rng.gen_range(0..hi)).collect(),
                ));
            }
            _ => {
                let cats = ["alpha", "beta", "gamma", "delta"];
                cols.push(Column::from_str(
                    format!("noise_c{c}"),
                    (0..n).map(|_| cats[rng.gen_range(0..cats.len())]).collect(),
                ));
            }
        }
    }
    Table::new(name, cols).expect("decoy construction is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoy_joins_onto_key_domain() {
        let domain: Vec<Value> = (0..50).map(Value::Int).collect();
        let d = decoy_table("noise_1", "id", &domain, 3, 0);
        assert_eq!(d.column("id").unwrap().name(), "id");
        assert_eq!(d.n_cols(), 4);
        assert!(d.n_rows() >= 40, "~80% of the domain: {}", d.n_rows());
        // All keys come from the domain.
        for v in d.column("id").unwrap().iter() {
            let k = v.as_i64().unwrap();
            assert!((0..50).contains(&k));
        }
    }

    #[test]
    fn string_and_timestamp_domains() {
        let sdomain: Vec<Value> = ["a", "b", "c"]
            .iter()
            .map(|s| Value::Str(s.to_string()))
            .collect();
        let d = decoy_table("d", "k", &sdomain, 2, 1);
        assert_eq!(d.column("k").unwrap().dtype(), arda_table::DataType::Str);
        let tdomain: Vec<Value> = (0..10).map(|i| Value::Timestamp(i * 3600)).collect();
        let d2 = decoy_table("d2", "t", &tdomain, 2, 2);
        assert_eq!(
            d2.column("t").unwrap().dtype(),
            arda_table::DataType::Timestamp
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let domain: Vec<Value> = (0..20).map(Value::Int).collect();
        assert_eq!(
            decoy_table("d", "k", &domain, 2, 7),
            decoy_table("d", "k", &domain, 2, 7)
        );
        assert_ne!(
            decoy_table("d", "k", &domain, 2, 7),
            decoy_table("d", "k", &domain, 2, 8)
        );
    }
}
