//! Micro-benchmark datasets (ARDA §7.2): Kraken and Digits stand-ins plus
//! the 10× noise-feature injection used to stress feature selectors.

use arda_table::{Column, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A single-table micro-benchmark dataset with planted ground truth.
#[derive(Debug, Clone)]
pub struct MicroDataset {
    /// The data (features + target column).
    pub table: Table,
    /// Target column name.
    pub target: String,
    /// Names of the truly informative feature columns.
    pub informative: Vec<String>,
}

/// **Kraken**: binary machine-failure classification from anonymised sensor
/// and usage statistics — 1 000 samples with the paper's 568/432 label
/// split; 8 of 20 sensor channels carry *weak* failure signal and 8% of
/// labels are flipped, putting achievable accuracy in the paper's 57–75%
/// band (Table 6) instead of saturating.
pub fn kraken(seed: u64) -> MicroDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 1_000;
    let n_features = 20;
    let n_informative = 8;

    // Fixed per-feature class offsets for the informative channels.
    let offsets: Vec<f64> = (0..n_informative)
        .map(|_| rng.gen_range(0.15..0.5))
        .collect();

    // Exactly 568 zeros and 432 ones, shuffled.
    let mut labels: Vec<f64> = std::iter::repeat_n(0.0, 568)
        .chain(std::iter::repeat_n(1.0, 432))
        .collect();
    for i in (1..labels.len()).rev() {
        labels.swap(i, rng.gen_range(0..=i));
    }

    let mut feature_cols: Vec<Vec<f64>> = (0..n_features).map(|_| Vec::with_capacity(n)).collect();
    for &y in &labels {
        for (f, col) in feature_cols.iter_mut().enumerate() {
            let v = if f < n_informative {
                y * offsets[f] + rng.gen_range(-1.0..1.0)
            } else {
                rng.gen_range(-1.0..1.0)
            };
            col.push(v);
        }
    }
    // 8% label noise via cross-class swaps: the features reflect the true
    // state while the recorded label sometimes lies — and swapping one
    // label from each class preserves the exact 568/432 split.
    let zeros: Vec<usize> = (0..n).filter(|&i| labels[i] == 0.0).collect();
    let ones: Vec<usize> = (0..n).filter(|&i| labels[i] == 1.0).collect();
    for k in 0..40 {
        let a = zeros[rng.gen_range(0..zeros.len())];
        let b = ones[rng.gen_range(0..ones.len())];
        let _ = k;
        labels.swap(a, b);
    }

    let mut cols: Vec<Column> = feature_cols
        .into_iter()
        .enumerate()
        .map(|(f, v)| Column::from_f64(format!("sensor_{f}"), v))
        .collect();
    cols.push(Column::from_i64(
        "failure",
        labels.iter().map(|&y| y as i64).collect(),
    ));

    MicroDataset {
        table: Table::new("kraken", cols).unwrap(),
        target: "failure".into(),
        informative: (0..n_informative).map(|f| format!("sensor_{f}")).collect(),
    }
}

/// **Digits**: 10-class classification with ~180 samples per digit and 64
/// blob features (8×8 intensity grid stand-in). Class signal is spread over
/// a class-specific subset of pixels, like the sklearn digits set.
pub fn digits(seed: u64) -> MicroDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let per_class = 180;
    let n_classes = 10;
    let d = 64;

    // Class templates: each class lights up 12 pseudo-random pixels.
    let mut templates = vec![vec![0.0f64; d]; n_classes];
    for (c, t) in templates.iter_mut().enumerate() {
        let mut lit = 0;
        let mut k = 0usize;
        while lit < 10 {
            let p = (c * 17 + k * 29) % d;
            if t[p] == 0.0 {
                t[p] = rng.gen_range(4.0..9.0);
                lit += 1;
            }
            k += 1;
        }
    }

    let n = per_class * n_classes;
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n);
    let mut labels: Vec<i64> = Vec::with_capacity(n);
    for c in 0..n_classes {
        for _ in 0..per_class {
            let row: Vec<f64> = templates[c]
                .iter()
                .map(|&t| (t + rng.gen_range(-5.0..5.0)).max(0.0))
                .collect();
            rows.push(row);
            labels.push(c as i64);
        }
    }
    // Shuffle rows.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        rows.swap(i, j);
        labels.swap(i, j);
    }

    let mut cols: Vec<Column> = (0..d)
        .map(|p| Column::from_f64(format!("px_{p}"), rows.iter().map(|r| r[p]).collect()))
        .collect();
    cols.push(Column::from_i64("digit", labels));

    MicroDataset {
        table: Table::new("digits", cols).unwrap(),
        target: "digit".into(),
        informative: (0..d).map(|p| format!("px_{p}")).collect(),
    }
}

/// Append `factor ×` as many noise columns as the table has feature columns
/// (excluding `target`), "sampled from standard distributions such as
/// uniform, Gaussian, and Bernoulli with randomly initialized parameters"
/// (§7.2). Returns the augmented dataset with the noise-column names added
/// so benches can measure exact noise recovery (Fig. 6).
pub fn append_noise_columns(data: &MicroDataset, factor: usize, seed: u64) -> MicroDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = data.table.n_rows();
    let n_original = data.table.n_cols() - 1; // minus target
    let n_noise = n_original * factor;

    let mut table = data.table.clone();
    for k in 0..n_noise {
        let name = format!("synthnoise_{k}");
        let col = match rng.gen_range(0..3) {
            0 => {
                let lo: f64 = rng.gen_range(-10.0..0.0);
                let hi: f64 = rng.gen_range(0.0..10.0);
                Column::from_f64(&name, (0..n).map(|_| rng.gen_range(lo..hi)).collect())
            }
            1 => {
                let mu: f64 = rng.gen_range(-5.0..5.0);
                let sigma: f64 = rng.gen_range(0.1..4.0);
                Column::from_f64(
                    &name,
                    (0..n)
                        .map(|_| mu + sigma * arda_linalg_normal(&mut rng))
                        .collect(),
                )
            }
            _ => {
                let p: f64 = rng.gen_range(0.1..0.9);
                Column::from_f64(
                    &name,
                    (0..n)
                        .map(|_| if rng.gen::<f64>() < p { 1.0 } else { 0.0 })
                        .collect(),
                )
            }
        };
        table.add_column(col).expect("noise names are unique");
    }
    MicroDataset {
        table,
        target: data.target.clone(),
        informative: data.informative.clone(),
    }
}

/// Local Box–Muller (avoids a dependency edge from synth to linalg).
fn arda_linalg_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kraken_label_split_matches_paper() {
        let k = kraken(0);
        assert_eq!(k.table.n_rows(), 1_000);
        let labels = k.table.column("failure").unwrap();
        let ones: i64 = labels.iter().map(|v| v.as_i64().unwrap()).sum();
        assert_eq!(ones, 432);
        assert_eq!(k.informative.len(), 8);
        assert_eq!(k.table.n_cols(), 21);
    }

    #[test]
    fn digits_shape() {
        let d = digits(0);
        assert_eq!(d.table.n_rows(), 1_800);
        assert_eq!(d.table.n_cols(), 65);
        let distinct = d.table.column("digit").unwrap().distinct();
        assert_eq!(distinct.len(), 10);
    }

    #[test]
    fn noise_injection_is_10x() {
        let k = kraken(1);
        let noisy = append_noise_columns(&k, 10, 2);
        // 20 original features → 200 noise columns.
        assert_eq!(noisy.table.n_cols(), 21 + 200);
        assert!(noisy.table.column("synthnoise_0").is_ok());
        assert_eq!(noisy.informative, k.informative);
    }

    #[test]
    fn informative_features_separate_classes() {
        let k = kraken(3);
        let labels: Vec<f64> = k
            .table
            .column("failure")
            .unwrap()
            .iter()
            .map(|v| v.as_i64().unwrap() as f64)
            .collect();
        let sensor0 = k.table.column("sensor_0").unwrap();
        let mean = |cls: f64| {
            let vals: Vec<f64> = (0..k.table.n_rows())
                .filter(|&i| labels[i] == cls)
                .map(|i| sensor0.get_f64(i).unwrap())
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(
            (mean(1.0) - mean(0.0)).abs() > 0.08,
            "informative channel separates classes"
        );
        let sensor19 = k.table.column("sensor_19").unwrap();
        let mean19 = |cls: f64| {
            let vals: Vec<f64> = (0..k.table.n_rows())
                .filter(|&i| labels[i] == cls)
                .map(|i| sensor19.get_f64(i).unwrap())
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(
            (mean19(1.0) - mean19(0.0)).abs() < 0.25,
            "uninformative channel does not"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(kraken(5).table, kraken(5).table);
        assert_eq!(digits(5).table, digits(5).table);
        let k = kraken(5);
        assert_eq!(
            append_noise_columns(&k, 2, 9).table,
            append_noise_columns(&k, 2, 9).table
        );
    }
}
