//! Scenario types shared by the generators.

use arda_table::Table;

/// Generation knobs.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Base-table rows.
    pub n_rows: usize,
    /// Number of decoy (noise) tables in the repository.
    pub n_decoys: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            n_rows: 400,
            n_decoys: 20,
            seed: 0,
        }
    }
}

/// A complete augmentation scenario: base table + repository + ground truth.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (paper dataset it mirrors).
    pub name: String,
    /// The user's base table (contains the target column).
    pub base: Table,
    /// Candidate tables (relevant ones first is NOT guaranteed — order is
    /// shuffled like a real discovery result).
    pub repository: Vec<Table>,
    /// Target column name in the base table.
    pub target: String,
    /// True for classification targets.
    pub classification: bool,
    /// Names of repository tables that truly carry signal.
    pub relevant_tables: Vec<String>,
}

impl Scenario {
    /// Fraction of repository tables that are decoys.
    pub fn decoy_fraction(&self) -> f64 {
        if self.repository.is_empty() {
            return 0.0;
        }
        1.0 - self.relevant_tables.len() as f64 / self.repository.len() as f64
    }

    /// Look up a repository table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.repository.iter().find(|t| t.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arda_table::Column;

    #[test]
    fn decoy_fraction_math() {
        let t = Table::new("sig", vec![Column::from_i64("k", vec![1])]).unwrap();
        let d = Table::new("decoy", vec![Column::from_i64("k", vec![1])]).unwrap();
        let s = Scenario {
            name: "x".into(),
            base: t.clone(),
            repository: vec![t.clone(), d],
            target: "k".into(),
            classification: false,
            relevant_tables: vec!["sig".into()],
        };
        assert!((s.decoy_fraction() - 0.5).abs() < 1e-12);
        assert!(s.table("decoy").is_some());
        assert!(s.table("nope").is_none());
    }
}
