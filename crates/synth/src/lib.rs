//! # arda-synth
//!
//! Synthetic scenario generators with planted ground truth.
//!
//! The paper's evaluation uses real datasets assembled through NYU Auctus
//! (Taxi, Pickup, Poverty, School) and two micro-benchmark sets (Kraken,
//! Digits). None of those are redistributable or reachable offline, so this
//! crate generates *structurally equivalent* scenarios (see DESIGN.md §1):
//!
//! * a base table whose own features carry only part of the signal,
//! * a repository in which a few joinable tables carry the rest of the
//!   signal — including *co-predictors split across tables* (Poverty) and a
//!   *soft time key at finer granularity* (Pickup/Taxi weather),
//! * many *decoy* tables that join successfully but contain pure noise —
//!   exactly the failure mode RIFS exists to handle,
//! * micro-benchmark tables with known informative columns plus 10×
//!   appended noise features (Kraken, Digits).
//!
//! Because the ground truth is planted, the benches can measure noise
//! filtering exactly (Fig. 6) instead of eyeballing it.

// Numeric kernels below index several arrays with one loop variable;
// iterator rewrites would obscure the math.
#![allow(clippy::needless_range_loop)]

mod decoys;
mod micro;
mod real_world;
mod scenario;

pub use decoys::decoy_table;
pub use micro::{append_noise_columns, digits, kraken, MicroDataset};
pub use real_world::{pickup, poverty, school, taxi};
pub use scenario::{Scenario, ScenarioConfig};
