//! Generators mirroring the paper's real-world scenarios (§7.1): Taxi,
//! Pickup, Poverty and School. Each plants signal in a few repository
//! tables and surrounds them with decoys.

use crate::decoys::decoy_table;
use crate::scenario::{Scenario, ScenarioConfig};
use arda_table::{Column, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DAY: i64 = 86_400;
const HOUR: i64 = 3_600;

fn shuffled(mut tables: Vec<Table>, seed: u64) -> Vec<Table> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5487_1CE5);
    for i in (1..tables.len()).rev() {
        tables.swap(i, rng.gen_range(0..=i));
    }
    tables
}

/// **Taxi**: daily vehicle-collision regression. The base table knows the
/// borough and weekday; the real drivers (precipitation, temperature, event
/// volume) live in two *daily* repository tables joinable on the date hard
/// key. Mirrors the NYPD collisions base + 29 Auctus tables.
pub fn taxi(cfg: &ScenarioConfig) -> Scenario {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.n_rows;
    let boroughs = ["bronx", "queens", "manhattan", "brooklyn", "staten"];

    let dates: Vec<i64> = (0..n).map(|i| (i as i64 / 5) * DAY).collect();
    let borough: Vec<&str> = (0..n).map(|i| boroughs[i % 5]).collect();
    let day_count = n / 5 + 1;
    let temp: Vec<f64> = (0..day_count)
        .map(|d| 15.0 + 10.0 * (d as f64 / 20.0).sin() + rng.gen_range(-2.0..2.0))
        .collect();
    let precip: Vec<f64> = (0..day_count)
        .map(|_| rng.gen_range(0.0f64..8.0).powi(2) / 8.0)
        .collect();
    let volume: Vec<f64> = (0..day_count).map(|_| rng.gen_range(0.0..5.0)).collect();

    let target: Vec<f64> = (0..n)
        .map(|i| {
            let d = i / 5;
            let borough_effect = (i % 5) as f64 * 2.0;
            let dow_effect = ((i / 5) % 7) as f64 * 0.8;
            20.0 + borough_effect
                + dow_effect
                + 3.0 * precip[d]
                + 0.8 * (temp[d] - 15.0).abs()
                + 2.5 * volume[d]
                + rng.gen_range(-2.0..2.0)
        })
        .collect();

    let base = Table::new(
        "taxi",
        vec![
            Column::from_timestamps("date", dates.clone()),
            Column::from_str("borough", borough),
            Column::from_i64(
                "day_of_week",
                (0..n).map(|i| ((i / 5) % 7) as i64).collect(),
            ),
            Column::from_f64("collisions", target),
        ],
    )
    .unwrap();

    let day_keys: Vec<i64> = (0..day_count).map(|d| d as i64 * DAY).collect();
    let weather = Table::new(
        "weather",
        vec![
            Column::from_timestamps("date", day_keys.clone()),
            Column::from_f64("temp", temp),
            Column::from_f64("precip", precip),
            Column::from_f64(
                "wind",
                (0..day_count).map(|_| rng.gen_range(0.0..30.0)).collect(),
            ),
        ],
    )
    .unwrap();
    let events = Table::new(
        "events",
        vec![
            Column::from_timestamps("date", day_keys),
            Column::from_f64("event_volume", volume),
            Column::from_i64(
                "permits",
                (0..day_count).map(|_| rng.gen_range(0..40)).collect(),
            ),
        ],
    )
    .unwrap();

    let key_domain: Vec<Value> = (0..day_count)
        .map(|d| Value::Timestamp(d as i64 * DAY))
        .collect();
    let mut repository = vec![weather, events];
    for k in 0..cfg.n_decoys {
        repository.push(decoy_table(
            &format!("taxi_decoy_{k}"),
            "date",
            &key_domain,
            2 + k % 3,
            cfg.seed.wrapping_add(100 + k as u64),
        ));
    }

    Scenario {
        name: "taxi".into(),
        base,
        repository: shuffled(repository, cfg.seed),
        target: "collisions".into(),
        classification: false,
        relevant_tables: vec!["weather".into(), "events".into()],
    }
}

/// **Pickup**: hourly airport-pickup regression with a *soft* time key —
/// the weather table reports every 5 minutes while the base table is hourly,
/// and the temperature varies smoothly so two-way nearest-neighbour
/// interpolation beats both plain nearest and raw hard joins (Fig. 5).
pub fn pickup(cfg: &ScenarioConfig) -> Scenario {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.n_rows;
    // Hourly base timestamps, offset mid-hour so hard joins on raw keys miss.
    let times: Vec<i64> = (0..n).map(|i| i as i64 * HOUR + 1_830).collect();
    let smooth_temp =
        |t: i64| 10.0 + 8.0 * (t as f64 / (24.0 * HOUR as f64) * std::f64::consts::TAU).sin();

    let target: Vec<f64> = times
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let hour = (t / HOUR) % 24;
            let rush = if (7..10).contains(&hour) || (16..19).contains(&hour) {
                25.0
            } else {
                0.0
            };
            40.0 + rush - 1.5 * smooth_temp(t) + ((i % 7) as f64) + rng.gen_range(-3.0..3.0)
        })
        .collect();

    let base = Table::new(
        "pickup",
        vec![
            Column::from_timestamps("time", times),
            Column::from_i64("dow", (0..n).map(|i| (i % 7) as i64).collect()),
            Column::from_f64("passengers", target),
        ],
    )
    .unwrap();

    // Weather at 5-minute granularity covering the same span.
    let span = n as i64 * HOUR;
    let wtimes: Vec<i64> = (0..span / 300).map(|i| i * 300).collect();
    let weather = Table::new(
        "weather_minute",
        vec![
            Column::from_timestamps("time", wtimes.clone()),
            Column::from_f64(
                "temp",
                wtimes
                    .iter()
                    .map(|&t| smooth_temp(t) + rng.gen_range(-0.2..0.2))
                    .collect(),
            ),
            Column::from_f64(
                "humidity",
                wtimes.iter().map(|_| rng.gen_range(20.0..90.0)).collect(),
            ),
        ],
    )
    .unwrap();

    let key_domain: Vec<Value> = (0..n)
        .map(|i| Value::Timestamp(i as i64 * HOUR + 1_830))
        .collect();
    let mut repository = vec![weather];
    for k in 0..cfg.n_decoys {
        repository.push(decoy_table(
            &format!("pickup_decoy_{k}"),
            "time",
            &key_domain,
            2 + k % 3,
            cfg.seed.wrapping_add(500 + k as u64),
        ));
    }

    Scenario {
        name: "pickup".into(),
        base,
        repository: shuffled(repository, cfg.seed.wrapping_add(1)),
        target: "passengers".into(),
        classification: false,
        relevant_tables: vec!["weather_minute".into()],
    }
}

/// **Poverty**: county-level socio-economic regression whose dominant term
/// is an *interaction* between columns living in two different tables
/// (education × employment) — co-predictors that table-at-a-time join plans
/// cannot discover together (Table 5's motivation).
pub fn poverty(cfg: &ScenarioConfig) -> Scenario {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.n_rows;
    let county: Vec<i64> = (0..n as i64).collect();
    let regions = ["northeast", "south", "midwest", "west"];

    let edu: Vec<f64> = (0..n).map(|_| rng.gen_range(0.3..0.95)).collect();
    let unemp: Vec<f64> = (0..n).map(|_| rng.gen_range(0.02..0.2)).collect();
    let pop_change: Vec<f64> = (0..n).map(|_| rng.gen_range(-0.05..0.05)).collect();

    let target: Vec<f64> = (0..n)
        .map(|i| {
            // Interaction term dominates: high unemployment hurts far more
            // where education is low.
            10.0 + 60.0 * unemp[i] * (1.0 - edu[i]) + 5.0 * unemp[i] + 3.0 * (1.0 - edu[i])
                - 8.0 * pop_change[i]
                + rng.gen_range(-0.5..0.5)
        })
        .collect();

    let base = Table::new(
        "poverty",
        vec![
            Column::from_i64("county", county.clone()),
            Column::from_str("region", (0..n).map(|i| regions[i % 4]).collect()),
            Column::from_f64("poverty_rate", target),
        ],
    )
    .unwrap();

    let education = Table::new(
        "education",
        vec![
            Column::from_i64("county", county.clone()),
            Column::from_f64("hs_completion", edu),
            Column::from_f64(
                "college_rate",
                (0..n).map(|_| rng.gen_range(0.1..0.6)).collect(),
            ),
        ],
    )
    .unwrap();
    let employment = Table::new(
        "employment",
        vec![
            Column::from_i64("county", county.clone()),
            Column::from_f64("unemployment", unemp),
            Column::from_f64("pop_change", pop_change),
        ],
    )
    .unwrap();

    let key_domain: Vec<Value> = county.iter().map(|&c| Value::Int(c)).collect();
    let mut repository = vec![education, employment];
    for k in 0..cfg.n_decoys {
        repository.push(decoy_table(
            &format!("poverty_decoy_{k}"),
            "county",
            &key_domain,
            2 + k % 4,
            cfg.seed.wrapping_add(900 + k as u64),
        ));
    }

    Scenario {
        name: "poverty".into(),
        base,
        repository: shuffled(repository, cfg.seed.wrapping_add(2)),
        target: "poverty_rate".into(),
        classification: false,
        relevant_tables: vec!["education".into(), "employment".into()],
    }
}

/// **School**: binary school-performance classification. Pass/fail depends
/// on per-student funding and neighbourhood income, both in repository
/// tables. `large = true` mirrors School (L) with its 350 candidate tables;
/// `false` mirrors School (S) with 16.
pub fn school(cfg: &ScenarioConfig, large: bool) -> Scenario {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.n_rows;
    let school_id: Vec<i64> = (0..n as i64).collect();

    let funding: Vec<f64> = (0..n).map(|_| rng.gen_range(4.0..20.0)).collect();
    let income: Vec<f64> = (0..n).map(|_| rng.gen_range(20.0..120.0)).collect();
    let enrollment: Vec<f64> = (0..n).map(|_| rng.gen_range(100.0..3000.0)).collect();

    let labels: Vec<&str> = (0..n)
        .map(|i| {
            let score = 0.4 * funding[i] + 0.08 * income[i] - 0.001 * enrollment[i]
                + rng.gen_range(-1.5..1.5);
            if score > 8.0 {
                "pass"
            } else {
                "fail"
            }
        })
        .collect();

    let base = Table::new(
        "school",
        vec![
            Column::from_i64("school_id", school_id.clone()),
            Column::from_f64("enrollment", enrollment),
            Column::from_i64("grade_span", (0..n).map(|_| rng.gen_range(6..13)).collect()),
            Column::from_str("result", labels),
        ],
    )
    .unwrap();

    let funding_table = Table::new(
        "funding",
        vec![
            Column::from_i64("school_id", school_id.clone()),
            Column::from_f64("per_student", funding),
            Column::from_f64("grants", (0..n).map(|_| rng.gen_range(0.0..5.0)).collect()),
        ],
    )
    .unwrap();
    let demographics = Table::new(
        "demographics",
        vec![
            Column::from_i64("school_id", school_id.clone()),
            Column::from_f64("median_income", income),
            Column::from_f64(
                "density",
                (0..n).map(|_| rng.gen_range(0.1..10.0)).collect(),
            ),
        ],
    )
    .unwrap();

    let n_decoys = if large {
        cfg.n_decoys.max(348)
    } else {
        cfg.n_decoys.min(14)
    };
    let key_domain: Vec<Value> = school_id.iter().map(|&s| Value::Int(s)).collect();
    let mut repository = vec![funding_table, demographics];
    for k in 0..n_decoys {
        repository.push(decoy_table(
            &format!("school_decoy_{k}"),
            "school_id",
            &key_domain,
            1 + k % 3,
            cfg.seed.wrapping_add(1_300 + k as u64),
        ));
    }

    Scenario {
        name: if large {
            "school_l".into()
        } else {
            "school_s".into()
        },
        base,
        repository: shuffled(repository, cfg.seed.wrapping_add(3)),
        target: "result".into(),
        classification: true,
        relevant_tables: vec!["funding".into(), "demographics".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n_decoys: usize) -> ScenarioConfig {
        ScenarioConfig {
            n_rows: 120,
            n_decoys,
            seed: 42,
        }
    }

    #[test]
    fn taxi_shape() {
        let s = taxi(&cfg(10));
        assert_eq!(s.base.n_rows(), 120);
        assert_eq!(s.repository.len(), 12);
        assert!(!s.classification);
        assert!(s.table("weather").is_some());
        assert!(s.table("events").is_some());
        assert!(s.base.column("collisions").is_ok());
        assert!(s.decoy_fraction() > 0.7);
    }

    #[test]
    fn pickup_weather_is_finer_granularity() {
        let s = pickup(&cfg(5));
        let w = s.table("weather_minute").unwrap();
        assert!(
            w.n_rows() > s.base.n_rows(),
            "minute weather has more rows than hourly base"
        );
        // Base keys offset mid-hour: no exact matches with 5-min weather grid.
        let base_keys: Vec<i64> = s
            .base
            .column("time")
            .unwrap()
            .iter()
            .map(|v| v.as_i64().unwrap())
            .collect();
        assert!(base_keys.iter().all(|k| k % 300 != 0));
    }

    #[test]
    fn poverty_has_two_relevant_tables() {
        let s = poverty(&cfg(8));
        assert_eq!(s.relevant_tables.len(), 2);
        assert_eq!(s.repository.len(), 10);
        for t in &s.relevant_tables {
            assert!(s.table(t).is_some(), "{t} in repository");
        }
    }

    #[test]
    fn school_sizes() {
        let small = school(&cfg(14), false);
        assert_eq!(small.repository.len(), 16);
        assert!(small.classification);
        let large = school(
            &ScenarioConfig {
                n_rows: 60,
                n_decoys: 348,
                seed: 1,
            },
            true,
        );
        assert_eq!(large.repository.len(), 350);
        assert_eq!(large.name, "school_l");
    }

    #[test]
    fn school_labels_are_binary_strings() {
        let s = school(&cfg(2), false);
        let distinct = s.base.column("result").unwrap().distinct();
        assert!(distinct.len() <= 2 && !distinct.is_empty());
    }

    #[test]
    fn generators_deterministic() {
        let a = taxi(&cfg(4));
        let b = taxi(&cfg(4));
        assert_eq!(a.base, b.base);
        assert_eq!(a.repository.len(), b.repository.len());
        for (x, y) in a.repository.iter().zip(&b.repository) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn decoy_keys_join_base_domain() {
        let s = poverty(&cfg(3));
        let decoy = s
            .repository
            .iter()
            .find(|t| t.name().starts_with("poverty_decoy"))
            .unwrap();
        let base_max = s.base.n_rows() as i64;
        for v in decoy.column("county").unwrap().iter() {
            assert!((0..base_max).contains(&v.as_i64().unwrap()));
        }
    }
}
