//! Error type for table operations.

use std::fmt;

/// Errors produced by relational operations on [`crate::Table`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A column with the given name was not found.
    ColumnNotFound(String),
    /// A column with the given name already exists.
    DuplicateColumn(String),
    /// Columns in a table (or an operation across tables) disagree on length.
    LengthMismatch {
        expected: usize,
        actual: usize,
        context: String,
    },
    /// The operation required a different column type.
    TypeMismatch {
        column: String,
        expected: String,
        actual: String,
    },
    /// A row index was out of bounds.
    RowOutOfBounds { index: usize, len: usize },
    /// CSV parsing failed.
    Csv(String),
    /// Binary shard store encode/decode failed (bad magic, truncated
    /// payload, corrupt offsets, ...). Always an error, never a panic.
    Store(String),
    /// Generic invalid-argument error.
    Invalid(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::ColumnNotFound(name) => write!(f, "column not found: {name}"),
            TableError::DuplicateColumn(name) => write!(f, "duplicate column: {name}"),
            TableError::LengthMismatch {
                expected,
                actual,
                context,
            } => {
                write!(
                    f,
                    "length mismatch in {context}: expected {expected}, got {actual}"
                )
            }
            TableError::TypeMismatch {
                column,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "type mismatch for column {column}: expected {expected}, got {actual}"
                )
            }
            TableError::RowOutOfBounds { index, len } => {
                write!(f, "row index {index} out of bounds for table of {len} rows")
            }
            TableError::Csv(msg) => write!(f, "csv error: {msg}"),
            TableError::Store(msg) => write!(f, "store error: {msg}"),
            TableError::Invalid(msg) => write!(f, "invalid operation: {msg}"),
        }
    }
}

impl std::error::Error for TableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_column_not_found() {
        let e = TableError::ColumnNotFound("price".into());
        assert_eq!(e.to_string(), "column not found: price");
    }

    #[test]
    fn display_length_mismatch() {
        let e = TableError::LengthMismatch {
            expected: 3,
            actual: 5,
            context: "add_column".into(),
        };
        assert!(e.to_string().contains("expected 3"));
        assert!(e.to_string().contains("got 5"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(TableError::Csv("bad row".into()));
        assert!(e.to_string().contains("bad row"));
    }
}
