//! The [`Table`]: equal-length named columns with relational operations.

use crate::{Column, DataType, Field, Key, Result, Schema, TableError, Value};

/// An in-memory relational table: an ordered set of equal-length [`Column`]s
/// plus an optional table name (used to prefix columns after joins).
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
}

impl Table {
    /// Build a table, validating that all columns share one length and that
    /// names are unique.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Result<Self> {
        let name = name.into();
        if let Some(first) = columns.first() {
            let expected = first.len();
            for c in &columns {
                if c.len() != expected {
                    return Err(TableError::LengthMismatch {
                        expected,
                        actual: c.len(),
                        context: format!("table {name}"),
                    });
                }
            }
        }
        let mut seen = std::collections::HashSet::new();
        for c in &columns {
            if !seen.insert(c.name().to_string()) {
                return Err(TableError::DuplicateColumn(c.name().to_string()));
            }
        }
        Ok(Table { name, columns })
    }

    /// An empty, zero-column table.
    pub fn empty(name: impl Into<String>) -> Self {
        Table {
            name: name.into(),
            columns: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the table.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of rows (0 for a zero-column table).
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// Columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The table's schema (derived from its columns).
    pub fn schema(&self) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(|c| Field::new(c.name(), c.dtype()))
                .collect(),
        )
        .expect("table invariant guarantees unique column names")
    }

    /// Column lookup by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.columns
            .iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| TableError::ColumnNotFound(name.to_string()))
    }

    /// Positional column access.
    pub fn column_at(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name() == name)
    }

    /// Append a column (must match the row count unless the table is empty).
    pub fn add_column(&mut self, column: Column) -> Result<()> {
        if !self.columns.is_empty() && column.len() != self.n_rows() {
            return Err(TableError::LengthMismatch {
                expected: self.n_rows(),
                actual: column.len(),
                context: format!("add_column({})", column.name()),
            });
        }
        if self.column_index(column.name()).is_some() {
            return Err(TableError::DuplicateColumn(column.name().to_string()));
        }
        self.columns.push(column);
        Ok(())
    }

    /// Remove a column by name, returning it.
    pub fn drop_column(&mut self, name: &str) -> Result<Column> {
        match self.column_index(name) {
            Some(i) => Ok(self.columns.remove(i)),
            None => Err(TableError::ColumnNotFound(name.to_string())),
        }
    }

    /// Keep only the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<Table> {
        let mut cols = Vec::with_capacity(names.len());
        for n in names {
            cols.push(self.column(n)?.clone());
        }
        Table::new(self.name.clone(), cols)
    }

    /// Gather the given row indices into a new table (repeats allowed).
    pub fn take(&self, indices: &[usize]) -> Result<Table> {
        let n = self.n_rows();
        if let Some(&bad) = indices.iter().find(|&&i| i >= n) {
            return Err(TableError::RowOutOfBounds { index: bad, len: n });
        }
        let cols = self.columns.iter().map(|c| c.take(indices)).collect();
        Table::new(self.name.clone(), cols)
    }

    /// Gather optional row indices; `None` becomes an all-null row. The LEFT
    /// JOIN primitive.
    pub fn take_opt(&self, indices: &[Option<usize>]) -> Result<Table> {
        let n = self.n_rows();
        if let Some(bad) = indices.iter().flatten().find(|&&i| i >= n) {
            return Err(TableError::RowOutOfBounds {
                index: *bad,
                len: n,
            });
        }
        let cols = self.columns.iter().map(|c| c.take_opt(indices)).collect();
        Table::new(self.name.clone(), cols)
    }

    /// Keep rows where `predicate(row_index)` is true.
    pub fn filter(&self, predicate: impl Fn(usize) -> bool) -> Result<Table> {
        let idx: Vec<usize> = (0..self.n_rows()).filter(|&i| predicate(i)).collect();
        self.take(&idx)
    }

    /// First `n` rows.
    pub fn head(&self, n: usize) -> Table {
        let idx: Vec<usize> = (0..self.n_rows().min(n)).collect();
        self.take(&idx).expect("head indices in bounds")
    }

    /// Dynamically typed row view.
    pub fn row(&self, i: usize) -> Result<Vec<Value>> {
        if i >= self.n_rows() {
            return Err(TableError::RowOutOfBounds {
                index: i,
                len: self.n_rows(),
            });
        }
        Ok(self.columns.iter().map(|c| c.get(i)).collect())
    }

    /// Row indices sorted ascending by the given column ([`Value::total_cmp`];
    /// nulls first). Stable.
    pub fn sort_indices_by(&self, column: &str) -> Result<Vec<usize>> {
        let col = self.column(column)?;
        let mut idx: Vec<usize> = (0..self.n_rows()).collect();
        idx.sort_by(|&a, &b| col.get(a).total_cmp(&col.get(b)));
        Ok(idx)
    }

    /// New table sorted ascending by `column`.
    pub fn sort_by(&self, column: &str) -> Result<Table> {
        let idx = self.sort_indices_by(column)?;
        self.take(&idx)
    }

    /// Join keys for the given key columns, one entry per row. `None` marks a
    /// row whose key contains a null (it will never match).
    pub fn keys(&self, key_columns: &[&str]) -> Result<Vec<Option<Key>>> {
        let cols: Vec<&Column> = key_columns
            .iter()
            .map(|n| self.column(n))
            .collect::<Result<_>>()?;
        let n = self.n_rows();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            if cols.len() == 1 {
                out.push(cols[0].get(i).key());
            } else {
                out.push(Key::composite(
                    cols.iter().map(|c| c.get(i).key()).collect(),
                ));
            }
        }
        Ok(out)
    }

    /// Horizontally concatenate `other`'s columns onto `self`, renaming
    /// collisions to `{other.name}.{column}` (and numeric suffixes if still
    /// colliding). Row counts must match.
    pub fn hstack(&self, other: &Table) -> Result<Table> {
        if other.n_cols() > 0 && self.n_cols() > 0 && other.n_rows() != self.n_rows() {
            return Err(TableError::LengthMismatch {
                expected: self.n_rows(),
                actual: other.n_rows(),
                context: "hstack".into(),
            });
        }
        let mut out = self.clone();
        for col in &other.columns {
            let mut c = col.clone();
            if out.column_index(c.name()).is_some() {
                let mut candidate = format!("{}.{}", other.name, c.name());
                let mut salt = 2usize;
                while out.column_index(&candidate).is_some() {
                    candidate = format!("{}.{}_{salt}", other.name, c.name());
                    salt += 1;
                }
                c.set_name(candidate);
            }
            out.columns.push(c);
        }
        Ok(out)
    }

    /// Vertically concatenate tables with identical schemas.
    pub fn vstack(&self, other: &Table) -> Result<Table> {
        if self.schema() != other.schema() {
            return Err(TableError::Invalid(format!(
                "vstack requires identical schemas ({} vs {})",
                self.name, other.name
            )));
        }
        let mut cols = Vec::with_capacity(self.n_cols());
        for (a, b) in self.columns.iter().zip(&other.columns) {
            let mut c = a.clone();
            for v in b.iter() {
                c.push(v)?;
            }
            cols.push(c);
        }
        Table::new(self.name.clone(), cols)
    }

    /// Names of columns whose dtype is numeric.
    pub fn numeric_column_names(&self) -> Vec<&str> {
        self.columns
            .iter()
            .filter(|c| c.dtype().is_numeric())
            .map(|c| c.name())
            .collect()
    }

    /// Names of string (categorical) columns.
    pub fn string_column_names(&self) -> Vec<&str> {
        self.columns
            .iter()
            .filter(|c| c.dtype() == DataType::Str)
            .map(|c| c.name())
            .collect()
    }

    /// Total null count across all columns.
    pub fn null_count(&self) -> usize {
        self.columns.iter().map(Column::null_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::new(
            "t",
            vec![
                Column::from_i64("id", vec![1, 2, 3]),
                Column::from_f64("x", vec![0.5, 1.5, 2.5]),
                Column::from_str("cat", vec!["a", "b", "a"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_lengths() {
        let err = Table::new(
            "bad",
            vec![
                Column::from_i64("a", vec![1]),
                Column::from_i64("b", vec![1, 2]),
            ],
        );
        assert!(matches!(err, Err(TableError::LengthMismatch { .. })));
    }

    #[test]
    fn construction_validates_unique_names() {
        let err = Table::new(
            "bad",
            vec![
                Column::from_i64("a", vec![1]),
                Column::from_f64("a", vec![1.0]),
            ],
        );
        assert!(matches!(err, Err(TableError::DuplicateColumn(_))));
    }

    #[test]
    fn shape_and_lookup() {
        let t = sample();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.column("x").unwrap().get_f64(2), Some(2.5));
        assert!(t.column("nope").is_err());
        assert_eq!(t.column_index("cat"), Some(2));
    }

    #[test]
    fn schema_reflects_columns() {
        let t = sample();
        let s = t.schema();
        assert_eq!(s.field("id").unwrap().dtype, DataType::Int);
        assert_eq!(s.field("cat").unwrap().dtype, DataType::Str);
    }

    #[test]
    fn take_and_filter() {
        let t = sample();
        let sub = t.take(&[2, 0]).unwrap();
        assert_eq!(sub.n_rows(), 2);
        assert_eq!(sub.column("id").unwrap().get(0), Value::Int(3));
        let f = t.filter(|i| i != 1).unwrap();
        assert_eq!(f.n_rows(), 2);
        assert!(t.take(&[9]).is_err());
    }

    #[test]
    fn take_opt_nulls() {
        let t = sample();
        let j = t.take_opt(&[Some(0), None]).unwrap();
        assert_eq!(j.n_rows(), 2);
        assert!(j.column("x").unwrap().get(1).is_null());
    }

    #[test]
    fn sort_by_column() {
        let t = Table::new("t", vec![Column::from_f64("v", vec![3.0, 1.0, 2.0])]).unwrap();
        let s = t.sort_by("v").unwrap();
        assert_eq!(s.column("v").unwrap().get_f64(0), Some(1.0));
        assert_eq!(s.column("v").unwrap().get_f64(2), Some(3.0));
    }

    #[test]
    fn keys_single_and_composite() {
        let t = sample();
        let k = t.keys(&["id"]).unwrap();
        assert_eq!(k.len(), 3);
        assert!(k.iter().all(Option::is_some));
        let kc = t.keys(&["id", "cat"]).unwrap();
        assert!(matches!(kc[0], Some(Key::Composite(_))));
    }

    #[test]
    fn keys_null_rows_excluded() {
        let t = Table::new("t", vec![Column::from_i64_opt("k", vec![Some(1), None])]).unwrap();
        let keys = t.keys(&["k"]).unwrap();
        assert!(keys[0].is_some());
        assert!(keys[1].is_none());
    }

    #[test]
    fn hstack_renames_collisions() {
        let a = sample();
        let b = Table::new("weather", vec![Column::from_f64("x", vec![9.0, 8.0, 7.0])]).unwrap();
        let j = a.hstack(&b).unwrap();
        assert_eq!(j.n_cols(), 4);
        assert!(j.column("weather.x").is_ok());
    }

    #[test]
    fn hstack_length_mismatch() {
        let a = sample();
        let b = Table::new("b", vec![Column::from_i64("y", vec![1])]).unwrap();
        assert!(a.hstack(&b).is_err());
    }

    #[test]
    fn vstack_same_schema() {
        let a = sample();
        let b = sample();
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.n_rows(), 6);
        let c = Table::new("c", vec![Column::from_i64("id", vec![1])]).unwrap();
        assert!(a.vstack(&c).is_err());
    }

    #[test]
    fn add_drop_column() {
        let mut t = sample();
        t.add_column(Column::from_bool("flag", vec![true, false, true]))
            .unwrap();
        assert_eq!(t.n_cols(), 4);
        assert!(t
            .add_column(Column::from_bool("flag", vec![true, false, true]))
            .is_err());
        assert!(t
            .add_column(Column::from_bool("short", vec![true]))
            .is_err());
        let c = t.drop_column("flag").unwrap();
        assert_eq!(c.name(), "flag");
        assert!(t.drop_column("flag").is_err());
    }

    #[test]
    fn numeric_and_string_names() {
        let t = sample();
        assert_eq!(t.numeric_column_names(), vec!["id", "x"]);
        assert_eq!(t.string_column_names(), vec!["cat"]);
    }

    #[test]
    fn row_view() {
        let t = sample();
        let r = t.row(1).unwrap();
        assert_eq!(
            r,
            vec![Value::Int(2), Value::Float(1.5), Value::Str("b".into())]
        );
        assert!(t.row(10).is_err());
    }

    #[test]
    fn select_projects_in_order() {
        let t = sample();
        let p = t.select(&["cat", "id"]).unwrap();
        assert_eq!(p.schema().names(), vec!["cat", "id"]);
        assert!(t.select(&["missing"]).is_err());
    }
}
