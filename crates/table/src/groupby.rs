//! Group-by aggregation.
//!
//! ARDA pre-aggregates foreign tables on their join keys to turn one-to-many
//! and many-to-many joins into one-to-one / many-to-one joins (§4 "Join
//! Cardinality"), and resamples time-series tables to a coarser granularity
//! (§4 "Time-Resampling"). Both reduce to the group-by implemented here.

use crate::{Column, ColumnData, DataType, Key, Result, Table, TableError, Value};
use std::collections::HashMap;

/// Cells (rows × aggregated columns) below which aggregation stays
/// sequential.
const PAR_MIN_AGG_CELLS: usize = 1 << 14;

/// Aggregation functions applicable to a grouped column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregation {
    /// Arithmetic mean of non-null numeric values.
    Mean,
    /// Sum of non-null numeric values.
    Sum,
    /// Minimum non-null value.
    Min,
    /// Maximum non-null value.
    Max,
    /// Number of non-null values.
    Count,
    /// Median of non-null numeric values.
    Median,
    /// Most frequent non-null value (ties broken by first appearance) —
    /// used for categorical columns when resampling.
    Mode,
    /// First non-null value in the group.
    First,
}

impl Aggregation {
    /// Default aggregation for a column dtype (mean for numeric, mode for
    /// strings), mirroring ARDA's resampling defaults.
    pub fn default_for(dtype: DataType) -> Aggregation {
        if dtype.is_numeric() {
            Aggregation::Mean
        } else {
            Aggregation::Mode
        }
    }
}

/// One aggregation request: `column` → `agg`, optionally renamed via `alias`.
#[derive(Debug, Clone)]
pub struct AggExpr {
    /// Source column name.
    pub column: String,
    /// Aggregation to apply.
    pub agg: Aggregation,
    /// Output column name; defaults to the source name (deduplicated with an
    /// aggregation suffix when several expressions target one column).
    pub alias: Option<String>,
}

impl AggExpr {
    /// Convenience constructor.
    pub fn new(column: impl Into<String>, agg: Aggregation) -> Self {
        AggExpr {
            column: column.into(),
            agg,
            alias: None,
        }
    }

    /// Set the output column name.
    pub fn with_alias(mut self, alias: impl Into<String>) -> Self {
        self.alias = Some(alias.into());
        self
    }
}

fn agg_suffix(agg: Aggregation) -> &'static str {
    match agg {
        Aggregation::Mean => "mean",
        Aggregation::Sum => "sum",
        Aggregation::Min => "min",
        Aggregation::Max => "max",
        Aggregation::Count => "count",
        Aggregation::Median => "median",
        Aggregation::Mode => "mode",
        Aggregation::First => "first",
    }
}

/// Lazily built group-by operation over a table.
pub struct GroupBy<'a> {
    table: &'a Table,
    key_columns: Vec<String>,
}

impl<'a> GroupBy<'a> {
    /// Start a group-by on the given key columns.
    pub fn new(table: &'a Table, key_columns: &[&str]) -> Result<Self> {
        for k in key_columns {
            table.column(k)?;
        }
        Ok(GroupBy {
            table,
            key_columns: key_columns.iter().map(|s| s.to_string()).collect(),
        })
    }

    /// Group rows by key; returns (group keys in first-appearance order,
    /// row-index lists per group). Rows with null keys are dropped, matching
    /// SQL GROUP BY over join keys.
    pub fn groups(&self) -> Result<(Vec<Key>, Vec<Vec<usize>>)> {
        let names: Vec<&str> = self.key_columns.iter().map(String::as_str).collect();
        let keys = self.table.keys(&names)?;
        let mut order: Vec<Key> = Vec::new();
        let mut index: HashMap<Key, usize> = HashMap::new();
        let mut rows: Vec<Vec<usize>> = Vec::new();
        for (i, k) in keys.into_iter().enumerate() {
            let Some(k) = k else { continue };
            match index.get(&k) {
                Some(&g) => rows[g].push(i),
                None => {
                    index.insert(k.clone(), rows.len());
                    order.push(k);
                    rows.push(vec![i]);
                }
            }
        }
        Ok((order, rows))
    }

    /// Apply aggregations, producing one output row per group. The key
    /// columns are carried through using their first-row values.
    pub fn aggregate(&self, exprs: &[AggExpr]) -> Result<Table> {
        let (_, groups) = self.groups()?;
        let mut out_cols: Vec<Column> = Vec::new();

        for key_name in &self.key_columns {
            let src = self.table.column(key_name)?;
            let first_rows: Vec<usize> = groups.iter().map(|g| g[0]).collect();
            out_cols.push(src.take(&first_rows));
        }

        // Output names dedupe sequentially (order-dependent), then each
        // aggregated column computes independently: the scan over all
        // groups × columns — ARDA's pre-aggregation hot loop for
        // high-cardinality foreign tables — fans out per column on the
        // ambient `arda-par` work budget, with results folded back in
        // expression order (identical to the sequential loop at any
        // budget).
        let mut used: std::collections::HashSet<String> =
            out_cols.iter().map(|c| c.name().to_string()).collect();
        let mut jobs: Vec<(&Column, Aggregation, String)> = Vec::with_capacity(exprs.len());
        for expr in exprs {
            let src = self.table.column(&expr.column)?;
            let mut name = expr.alias.clone().unwrap_or_else(|| expr.column.clone());
            if used.contains(&name) {
                name = format!("{}_{}", expr.column, agg_suffix(expr.agg));
            }
            let mut salt = 2usize;
            while used.contains(&name) {
                name = format!("{}_{}_{salt}", expr.column, agg_suffix(expr.agg));
                salt += 1;
            }
            used.insert(name.clone());
            jobs.push((src, expr.agg, name));
        }
        let threads = arda_par::threads_for(
            0,
            self.table.n_rows() * jobs.len().max(1),
            PAR_MIN_AGG_CELLS,
        );
        let agg_cols = arda_par::par_map(&jobs, threads, |_, (src, agg, name)| {
            aggregate_column(src, &groups, *agg, name)
        });
        for col in agg_cols {
            out_cols.push(col?);
        }

        Table::new(self.table.name().to_string(), out_cols)
    }

    /// Aggregate every non-key column with its dtype default (mean/mode).
    /// This is the ARDA pre-aggregation used before high-cardinality joins.
    pub fn aggregate_default(&self) -> Result<Table> {
        let exprs: Vec<AggExpr> = self
            .table
            .columns()
            .iter()
            .filter(|c| !self.key_columns.iter().any(|k| k == c.name()))
            .map(|c| AggExpr::new(c.name(), Aggregation::default_for(c.dtype())))
            .collect();
        self.aggregate(&exprs)
    }
}

fn aggregate_column(
    src: &Column,
    groups: &[Vec<usize>],
    agg: Aggregation,
    name: &str,
) -> Result<Column> {
    match agg {
        Aggregation::Mean | Aggregation::Sum | Aggregation::Median => {
            if !src.dtype().is_numeric() {
                return Err(TableError::TypeMismatch {
                    column: name.to_string(),
                    expected: "numeric".into(),
                    actual: src.dtype().to_string(),
                });
            }
            let mut out = Vec::with_capacity(groups.len());
            for g in groups {
                let vals: Vec<f64> = g.iter().filter_map(|&i| src.get_f64(i)).collect();
                out.push(if vals.is_empty() {
                    None
                } else {
                    Some(match agg {
                        Aggregation::Sum => vals.iter().sum(),
                        Aggregation::Mean => vals.iter().sum::<f64>() / vals.len() as f64,
                        Aggregation::Median => median_of(vals),
                        _ => unreachable!(),
                    })
                });
            }
            Ok(Column::new(name, ColumnData::Float(out)))
        }
        Aggregation::Count => {
            let out: Vec<Option<i64>> = groups
                .iter()
                .map(|g| Some(g.iter().filter(|&&i| !src.get(i).is_null()).count() as i64))
                .collect();
            Ok(Column::new(name, ColumnData::Int(out)))
        }
        Aggregation::Min | Aggregation::Max => {
            let mut out: Vec<Value> = Vec::with_capacity(groups.len());
            for g in groups {
                let mut best: Option<Value> = None;
                for &i in g {
                    let v = src.get(i);
                    if v.is_null() {
                        continue;
                    }
                    best = Some(match best {
                        None => v,
                        Some(b) => {
                            let keep_new = match agg {
                                Aggregation::Min => v.total_cmp(&b).is_lt(),
                                _ => v.total_cmp(&b).is_gt(),
                            };
                            if keep_new {
                                v
                            } else {
                                b
                            }
                        }
                    });
                }
                out.push(best.unwrap_or(Value::Null));
            }
            Column::from_values(name, src.dtype(), out)
        }
        Aggregation::Mode => {
            let mut out: Vec<Value> = Vec::with_capacity(groups.len());
            for g in groups {
                out.push(mode_of(src, g));
            }
            Column::from_values(name, src.dtype(), out)
        }
        Aggregation::First => {
            let mut out: Vec<Value> = Vec::with_capacity(groups.len());
            for g in groups {
                out.push(
                    g.iter()
                        .map(|&i| src.get(i))
                        .find(|v| !v.is_null())
                        .unwrap_or(Value::Null),
                );
            }
            Column::from_values(name, src.dtype(), out)
        }
    }
}

fn median_of(mut vals: Vec<f64>) -> f64 {
    vals.sort_by(|a, b| a.total_cmp(b));
    let mid = vals.len() / 2;
    if vals.len().is_multiple_of(2) {
        (vals[mid - 1] + vals[mid]) / 2.0
    } else {
        vals[mid]
    }
}

fn mode_of(src: &Column, rows: &[usize]) -> Value {
    let mut counts: HashMap<Key, (usize, usize)> = HashMap::new(); // key -> (count, first_pos)
    let mut values: HashMap<Key, Value> = HashMap::new();
    for (pos, &i) in rows.iter().enumerate() {
        let v = src.get(i);
        if let Some(k) = v.key() {
            let e = counts.entry(k.clone()).or_insert((0, pos));
            e.0 += 1;
            values.entry(k).or_insert(v);
        }
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1 .0.cmp(&b.1 .0).then(b.1 .1.cmp(&a.1 .1)))
        .and_then(|(k, _)| values.remove(&k))
        .unwrap_or(Value::Null)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::new(
            "sales",
            vec![
                Column::from_str("store", vec!["a", "b", "a", "a", "b"]),
                Column::from_f64("amount", vec![10.0, 20.0, 30.0, 50.0, 40.0]),
                Column::from_str("clerk", vec!["x", "y", "x", "z", "y"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn groups_preserve_first_appearance_order() {
        let t = sample();
        let gb = GroupBy::new(&t, &["store"]).unwrap();
        let (keys, rows) = gb.groups().unwrap();
        assert_eq!(keys.len(), 2);
        assert_eq!(rows[0], vec![0, 2, 3]); // store "a"
        assert_eq!(rows[1], vec![1, 4]); // store "b"
    }

    #[test]
    fn mean_sum_count() {
        let t = sample();
        let gb = GroupBy::new(&t, &["store"]).unwrap();
        let out = gb
            .aggregate(&[
                AggExpr::new("amount", Aggregation::Mean),
                AggExpr::new("amount", Aggregation::Count),
            ])
            .unwrap();
        // aggregate uses the source column name; second gets renamed on hstack
        // use positional access here.
        assert_eq!(out.n_rows(), 2);
        let mean = out.column_at(1).unwrap();
        assert_eq!(mean.get_f64(0), Some(30.0));
        assert_eq!(mean.get_f64(1), Some(30.0));
        let count = out.column_at(2).unwrap();
        assert_eq!(count.get(0), Value::Int(3));
    }

    #[test]
    fn duplicate_agg_columns_get_suffixed_names() {
        let t = sample();
        let gb = GroupBy::new(&t, &["store"]).unwrap();
        let out = gb
            .aggregate(&[
                AggExpr::new("amount", Aggregation::Mean),
                AggExpr::new("amount", Aggregation::Sum),
            ])
            .unwrap();
        assert!(out.column("amount").is_ok());
        assert_eq!(out.column("amount_sum").unwrap().get_f64(0), Some(90.0));
    }

    #[test]
    fn alias_renames_output() {
        let t = sample();
        let gb = GroupBy::new(&t, &["store"]).unwrap();
        let out = gb
            .aggregate(&[AggExpr::new("amount", Aggregation::Mean).with_alias("avg_amount")])
            .unwrap();
        assert!(out.column("avg_amount").is_ok());
    }

    #[test]
    fn min_max_median() {
        let t = sample();
        let gb = GroupBy::new(&t, &["store"]).unwrap();
        let out = gb
            .aggregate(&[AggExpr::new("amount", Aggregation::Max)])
            .unwrap();
        assert_eq!(out.column("amount").unwrap().get_f64(0), Some(50.0));
        let out = gb
            .aggregate(&[AggExpr::new("amount", Aggregation::Min)])
            .unwrap();
        assert_eq!(out.column("amount").unwrap().get_f64(1), Some(20.0));
        let out = gb
            .aggregate(&[AggExpr::new("amount", Aggregation::Median)])
            .unwrap();
        assert_eq!(out.column("amount").unwrap().get_f64(0), Some(30.0));
    }

    #[test]
    fn mode_picks_most_frequent() {
        let t = sample();
        let gb = GroupBy::new(&t, &["store"]).unwrap();
        let out = gb
            .aggregate(&[AggExpr::new("clerk", Aggregation::Mode)])
            .unwrap();
        assert_eq!(out.column("clerk").unwrap().get(0), Value::Str("x".into()));
    }

    #[test]
    fn aggregate_default_covers_all_non_key_columns() {
        let t = sample();
        let gb = GroupBy::new(&t, &["store"]).unwrap();
        let out = gb.aggregate_default().unwrap();
        assert_eq!(out.n_cols(), 3); // store + amount(mean) + clerk(mode)
        assert_eq!(out.n_rows(), 2);
        assert_eq!(out.column("amount").unwrap().get_f64(0), Some(30.0));
    }

    #[test]
    fn null_keys_are_dropped() {
        let t = Table::new(
            "t",
            vec![
                Column::from_i64_opt("k", vec![Some(1), None, Some(1)]),
                Column::from_f64("v", vec![1.0, 2.0, 3.0]),
            ],
        )
        .unwrap();
        let gb = GroupBy::new(&t, &["k"]).unwrap();
        let out = gb
            .aggregate(&[AggExpr::new("v", Aggregation::Sum)])
            .unwrap();
        assert_eq!(out.n_rows(), 1);
        assert_eq!(out.column("v").unwrap().get_f64(0), Some(4.0));
    }

    #[test]
    fn composite_key_grouping() {
        let t = Table::new(
            "t",
            vec![
                Column::from_i64("a", vec![1, 1, 2]),
                Column::from_str("b", vec!["x", "x", "x"]),
                Column::from_f64("v", vec![1.0, 3.0, 5.0]),
            ],
        )
        .unwrap();
        let gb = GroupBy::new(&t, &["a", "b"]).unwrap();
        let out = gb
            .aggregate(&[AggExpr::new("v", Aggregation::Mean)])
            .unwrap();
        assert_eq!(out.n_rows(), 2);
        assert_eq!(out.column("v").unwrap().get_f64(0), Some(2.0));
    }

    #[test]
    fn mean_on_string_column_errors() {
        let t = sample();
        let gb = GroupBy::new(&t, &["store"]).unwrap();
        assert!(gb
            .aggregate(&[AggExpr::new("clerk", Aggregation::Mean)])
            .is_err());
    }

    #[test]
    fn first_skips_nulls() {
        let t = Table::new(
            "t",
            vec![
                Column::from_i64("k", vec![1, 1]),
                Column::from_f64_opt("v", vec![None, Some(7.0)]),
            ],
        )
        .unwrap();
        let gb = GroupBy::new(&t, &["k"]).unwrap();
        let out = gb
            .aggregate(&[AggExpr::new("v", Aggregation::First)])
            .unwrap();
        assert_eq!(out.column("v").unwrap().get_f64(0), Some(7.0));
    }
}
