//! Pretty-printed table rendering (for examples and experiment output).

use crate::Table;
use std::fmt;

/// Render at most `max_rows` rows as an aligned ASCII grid.
pub fn render(table: &Table, max_rows: usize) -> String {
    let n_show = table.n_rows().min(max_rows);
    let mut widths: Vec<usize> = table
        .columns()
        .iter()
        .map(|c| c.name().chars().count())
        .collect();
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(n_show);
    for i in 0..n_show {
        let row: Vec<String> = table
            .columns()
            .iter()
            .map(|c| c.get(i).to_string())
            .collect();
        for (w, cell) in widths.iter_mut().zip(&row) {
            *w = (*w).max(cell.chars().count());
        }
        rows.push(row);
    }

    let mut out = String::new();
    let header: Vec<String> = table
        .columns()
        .iter()
        .zip(&widths)
        .map(|(c, w)| format!("{:w$}", c.name(), w = w))
        .collect();
    out.push_str(&header.join(" | "));
    out.push('\n');
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&rule.join("-+-"));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(cell, w)| format!("{:w$}", cell, w = w))
            .collect();
        out.push_str(&line.join(" | "));
        out.push('\n');
    }
    if table.n_rows() > n_show {
        out.push_str(&format!("... {} more rows\n", table.n_rows() - n_show));
    }
    out
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", render(self, 10))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Column;

    #[test]
    fn renders_header_and_rows() {
        let t = Table::new(
            "t",
            vec![
                Column::from_i64("id", vec![1, 22]),
                Column::from_str("name", vec!["a", "b"]),
            ],
        )
        .unwrap();
        let s = render(&t, 10);
        assert!(s.contains("id"));
        assert!(s.contains("name"));
        assert!(s.contains("22"));
    }

    #[test]
    fn truncates_long_tables() {
        let t = Table::new("t", vec![Column::from_i64("x", (0..100).collect())]).unwrap();
        let s = render(&t, 5);
        assert!(s.contains("95 more rows"));
    }

    #[test]
    fn display_trait_works() {
        let t = Table::new("t", vec![Column::from_i64("x", vec![7])]).unwrap();
        assert!(format!("{t}").contains('7'));
    }
}
