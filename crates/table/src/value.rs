//! Dynamically typed cell values and hashable join keys.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single dynamically typed cell in a table.
///
/// `Value` is used at API boundaries (row access, join keys, imputation);
/// bulk storage lives in typed [`crate::Column`]s.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing value (SQL NULL).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string (categorical or free text).
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Timestamp as integer ticks (e.g. seconds since epoch). ARDA's soft
    /// time joins operate on this representation.
    Timestamp(i64),
}

impl Value {
    /// True when the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one. Timestamps are numeric so
    /// that soft (nearest-neighbour) joins can measure distances on them.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Timestamp(v) => Some(*v as f64),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view, if exact.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Timestamp(v) => Some(*v),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// String view for categorical handling.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// An equality/hash key usable in hash joins. Returns `None` for nulls,
    /// which never match any key (SQL semantics).
    pub fn key(&self) -> Option<Key> {
        match self {
            Value::Null => None,
            Value::Int(v) => Some(Key::Int(*v)),
            Value::Float(v) => {
                if v.is_nan() {
                    None
                } else {
                    Some(Key::Float(v.to_bits()))
                }
            }
            Value::Str(s) => Some(Key::Str(s.clone())),
            Value::Bool(b) => Some(Key::Bool(*b)),
            Value::Timestamp(v) => Some(Key::Int(*v)),
        }
    }

    /// Total ordering used for sorting: Null < Bool < numeric < Str.
    /// Numeric types compare by value across Int/Float/Timestamp.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                _ => rank(a).cmp(&rank(b)),
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Timestamp(v) => write!(f, "@{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Hashable, equality-comparable join key derived from a [`Value`].
///
/// Floats are keyed by bit pattern (NaN is excluded at construction), so
/// `Key` can implement `Eq`/`Hash` soundly for hash joins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Key {
    /// Integer (also used for timestamps).
    Int(i64),
    /// Float bits (never NaN).
    Float(u64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Composite key for multi-column joins.
    Composite(Vec<Key>),
}

impl Hash for Key {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Key::Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            Key::Float(v) => {
                // Normalise +0.0/-0.0 so they hash (and compare) identically
                // after the PartialEq below.
                1u8.hash(state);
                v.hash(state);
            }
            Key::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Key::Bool(b) => {
                3u8.hash(state);
                b.hash(state);
            }
            Key::Composite(parts) => {
                4u8.hash(state);
                for p in parts {
                    p.hash(state);
                }
            }
        }
    }
}

impl Key {
    /// Build a composite key from per-column keys; `None` (null) in any part
    /// poisons the whole key, matching SQL null-join semantics.
    pub fn composite(parts: Vec<Option<Key>>) -> Option<Key> {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            out.push(p?);
        }
        Some(Key::Composite(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn null_detection() {
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Timestamp(10).as_f64(), Some(10.0));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn keys_match_across_hash_map() {
        let mut m: HashMap<Key, usize> = HashMap::new();
        m.insert(Value::Int(7).key().unwrap(), 1);
        m.insert(Value::Str("a".into()).key().unwrap(), 2);
        assert_eq!(m.get(&Value::Int(7).key().unwrap()), Some(&1));
        assert_eq!(m.get(&Value::Str("a".into()).key().unwrap()), Some(&2));
    }

    #[test]
    fn null_and_nan_have_no_key() {
        assert!(Value::Null.key().is_none());
        assert!(Value::Float(f64::NAN).key().is_none());
    }

    #[test]
    fn composite_key_poisoned_by_null() {
        let ok = Key::composite(vec![Value::Int(1).key(), Value::Int(2).key()]);
        assert!(ok.is_some());
        let bad = Key::composite(vec![Value::Int(1).key(), Value::Null.key()]);
        assert!(bad.is_none());
    }

    #[test]
    fn total_cmp_orders_numerics_together() {
        let mut vals = [
            Value::Float(2.5),
            Value::Int(1),
            Value::Timestamp(3),
            Value::Null,
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(1));
        assert_eq!(vals[2], Value::Float(2.5));
        assert_eq!(vals[3], Value::Timestamp(3));
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Timestamp(9).to_string(), "@9");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.0f64), Value::Float(2.0));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
