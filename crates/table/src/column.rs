//! Typed, named columns with null masks.

use crate::{DataType, Result, TableError, Value};

/// Physical storage for one column. Each variant stores values alongside an
/// implicit null mask via `Option`.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Integers.
    Int(Vec<Option<i64>>),
    /// Floats.
    Float(Vec<Option<f64>>),
    /// Strings.
    Str(Vec<Option<String>>),
    /// Booleans.
    Bool(Vec<Option<bool>>),
    /// Integer timestamps.
    Timestamp(Vec<Option<i64>>),
}

impl ColumnData {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Timestamp(v) => v.len(),
        }
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The logical type of this storage.
    pub fn dtype(&self) -> DataType {
        match self {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Str(_) => DataType::Str,
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::Timestamp(_) => DataType::Timestamp,
        }
    }
}

/// A named column of homogeneously typed values.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    name: String,
    data: ColumnData,
}

impl Column {
    /// Create a column from raw storage.
    pub fn new(name: impl Into<String>, data: ColumnData) -> Self {
        Column {
            name: name.into(),
            data,
        }
    }

    /// Non-null integer column.
    pub fn from_i64(name: impl Into<String>, values: Vec<i64>) -> Self {
        Column::new(
            name,
            ColumnData::Int(values.into_iter().map(Some).collect()),
        )
    }

    /// Non-null float column.
    pub fn from_f64(name: impl Into<String>, values: Vec<f64>) -> Self {
        Column::new(
            name,
            ColumnData::Float(values.into_iter().map(Some).collect()),
        )
    }

    /// Nullable float column.
    pub fn from_f64_opt(name: impl Into<String>, values: Vec<Option<f64>>) -> Self {
        Column::new(name, ColumnData::Float(values))
    }

    /// Nullable integer column.
    pub fn from_i64_opt(name: impl Into<String>, values: Vec<Option<i64>>) -> Self {
        Column::new(name, ColumnData::Int(values))
    }

    /// Non-null string column.
    pub fn from_str(name: impl Into<String>, values: Vec<&str>) -> Self {
        Column::new(
            name,
            ColumnData::Str(values.into_iter().map(|s| Some(s.to_string())).collect()),
        )
    }

    /// Non-null owned-string column.
    pub fn from_strings(name: impl Into<String>, values: Vec<String>) -> Self {
        Column::new(
            name,
            ColumnData::Str(values.into_iter().map(Some).collect()),
        )
    }

    /// Nullable string column.
    pub fn from_str_opt(name: impl Into<String>, values: Vec<Option<String>>) -> Self {
        Column::new(name, ColumnData::Str(values))
    }

    /// Non-null boolean column.
    pub fn from_bool(name: impl Into<String>, values: Vec<bool>) -> Self {
        Column::new(
            name,
            ColumnData::Bool(values.into_iter().map(Some).collect()),
        )
    }

    /// Non-null timestamp column (integer ticks).
    pub fn from_timestamps(name: impl Into<String>, values: Vec<i64>) -> Self {
        Column::new(
            name,
            ColumnData::Timestamp(values.into_iter().map(Some).collect()),
        )
    }

    /// Build a column of `dtype` from dynamically typed values, converting
    /// where lossless and erroring otherwise. Nulls pass through.
    ///
    /// The coercion matrix is the same one [`Self::push`] enforces (see
    /// its docs), with one constructor-only extension: `DataType::Str`
    /// accepts any value via its `Display` form, because building a text
    /// column from mixed values is an explicit, caller-visible request.
    pub fn from_values(
        name: impl Into<String>,
        dtype: DataType,
        values: Vec<Value>,
    ) -> Result<Self> {
        let name = name.into();
        let mismatch = |v: &Value| TableError::TypeMismatch {
            column: name.clone(),
            expected: dtype.to_string(),
            actual: format!("{v:?}"),
        };
        let data = match dtype {
            DataType::Int => {
                let mut out = Vec::with_capacity(values.len());
                for v in &values {
                    out.push(match v {
                        Value::Null => None,
                        Value::Int(x) | Value::Timestamp(x) => Some(*x),
                        // Bool is deliberately rejected: `Value::total_cmp`
                        // keeps Bool outside the Int/Float/Timestamp numeric
                        // family, and the storage coercions mirror that.
                        _ => return Err(mismatch(v)),
                    });
                }
                ColumnData::Int(out)
            }
            DataType::Float => {
                let mut out = Vec::with_capacity(values.len());
                for v in &values {
                    out.push(match v {
                        Value::Null => None,
                        other => match other.as_f64() {
                            Some(x) => Some(x),
                            None => return Err(mismatch(v)),
                        },
                    });
                }
                ColumnData::Float(out)
            }
            DataType::Str => {
                let mut out = Vec::with_capacity(values.len());
                for v in values {
                    out.push(match v {
                        Value::Null => None,
                        Value::Str(s) => Some(s),
                        other => Some(other.to_string()),
                    });
                }
                ColumnData::Str(out)
            }
            DataType::Bool => {
                let mut out = Vec::with_capacity(values.len());
                for v in &values {
                    out.push(match v {
                        Value::Null => None,
                        Value::Bool(b) => Some(*b),
                        _ => return Err(mismatch(v)),
                    });
                }
                ColumnData::Bool(out)
            }
            DataType::Timestamp => {
                let mut out = Vec::with_capacity(values.len());
                for v in &values {
                    out.push(match v {
                        Value::Null => None,
                        Value::Timestamp(x) | Value::Int(x) => Some(*x),
                        _ => return Err(mismatch(v)),
                    });
                }
                ColumnData::Timestamp(out)
            }
        };
        Ok(Column { name, data })
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename in place (used for join-prefix disambiguation).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Underlying storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Logical type.
    pub fn dtype(&self) -> DataType {
        self.data.dtype()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of null entries.
    pub fn null_count(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.iter().filter(|x| x.is_none()).count(),
            ColumnData::Float(v) => v.iter().filter(|x| x.is_none()).count(),
            ColumnData::Str(v) => v.iter().filter(|x| x.is_none()).count(),
            ColumnData::Bool(v) => v.iter().filter(|x| x.is_none()).count(),
            ColumnData::Timestamp(v) => v.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Dynamically typed view of row `i` (panics if out of bounds).
    pub fn get(&self, i: usize) -> Value {
        match &self.data {
            ColumnData::Int(v) => v[i].map_or(Value::Null, Value::Int),
            ColumnData::Float(v) => v[i].map_or(Value::Null, Value::Float),
            ColumnData::Str(v) => v[i].clone().map_or(Value::Null, Value::Str),
            ColumnData::Bool(v) => v[i].map_or(Value::Null, Value::Bool),
            ColumnData::Timestamp(v) => v[i].map_or(Value::Null, Value::Timestamp),
        }
    }

    /// Checked row access.
    pub fn try_get(&self, i: usize) -> Result<Value> {
        if i >= self.len() {
            return Err(TableError::RowOutOfBounds {
                index: i,
                len: self.len(),
            });
        }
        Ok(self.get(i))
    }

    /// Numeric view of row `i` (`None` for nulls and non-numeric values).
    pub fn get_f64(&self, i: usize) -> Option<f64> {
        match &self.data {
            ColumnData::Int(v) => v[i].map(|x| x as f64),
            ColumnData::Float(v) => v[i],
            ColumnData::Timestamp(v) => v[i].map(|x| x as f64),
            ColumnData::Bool(v) => v[i].map(|b| if b { 1.0 } else { 0.0 }),
            ColumnData::Str(_) => None,
        }
    }

    /// Gather the rows at `indices` into a new column (repeats allowed —
    /// this is what LEFT joins and bootstrap sampling use).
    pub fn take(&self, indices: &[usize]) -> Column {
        fn gather<T: Clone>(v: &[Option<T>], idx: &[usize]) -> Vec<Option<T>> {
            idx.iter().map(|&i| v[i].clone()).collect()
        }
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(gather(v, indices)),
            ColumnData::Float(v) => ColumnData::Float(gather(v, indices)),
            ColumnData::Str(v) => ColumnData::Str(gather(v, indices)),
            ColumnData::Bool(v) => ColumnData::Bool(gather(v, indices)),
            ColumnData::Timestamp(v) => ColumnData::Timestamp(gather(v, indices)),
        };
        Column {
            name: self.name.clone(),
            data,
        }
    }

    /// Gather rows at optional `indices`; `None` produces a null row. This is
    /// the primitive behind LEFT JOIN: unmatched base rows map to `None`.
    pub fn take_opt(&self, indices: &[Option<usize>]) -> Column {
        fn gather<T: Clone>(v: &[Option<T>], idx: &[Option<usize>]) -> Vec<Option<T>> {
            idx.iter().map(|i| i.and_then(|i| v[i].clone())).collect()
        }
        let data = match &self.data {
            ColumnData::Int(v) => ColumnData::Int(gather(v, indices)),
            ColumnData::Float(v) => ColumnData::Float(gather(v, indices)),
            ColumnData::Str(v) => ColumnData::Str(gather(v, indices)),
            ColumnData::Bool(v) => ColumnData::Bool(gather(v, indices)),
            ColumnData::Timestamp(v) => ColumnData::Timestamp(gather(v, indices)),
        };
        Column {
            name: self.name.clone(),
            data,
        }
    }

    /// All values as `f64` with nulls/non-numerics as `None`.
    pub fn to_f64_vec(&self) -> Vec<Option<f64>> {
        (0..self.len()).map(|i| self.get_f64(i)).collect()
    }

    /// Iterator over dynamically typed values.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Append a single dynamically typed value (must match the column type or
    /// be null).
    ///
    /// ## Coercion matrix
    ///
    /// Aligned with [`Value::total_cmp`]'s numeric ordering, where
    /// `Int`/`Float`/`Timestamp` form one numeric family and `Bool` sits
    /// outside it. `✓` = accepted (plus `Null` into every column):
    ///
    /// | column \ value | Int | Float | Timestamp | Bool | Str |
    /// |----------------|-----|-------|-----------|------|-----|
    /// | Int            | ✓   |       | ✓         |      |     |
    /// | Timestamp      | ✓   |       | ✓         |      |     |
    /// | Float          | ✓   | ✓     | ✓         | ✓    |     |
    /// | Bool           |     |       |           | ✓    |     |
    /// | Str            |     |       |           |      | ✓   |
    ///
    /// Int↔Timestamp is symmetric (both are `i64` ticks; discovery and
    /// soft joins already treat the pair as compatible). Float accepts the
    /// whole family through [`Value::as_f64`] — including `Bool`'s one-way
    /// 0/1 embedding, which is lossy to reverse and therefore *not*
    /// mirrored by Int/Timestamp/Bool columns.
    pub fn push(&mut self, value: Value) -> Result<()> {
        let mismatch = |v: &Value, dtype: DataType| TableError::TypeMismatch {
            column: self.name.clone(),
            expected: dtype.to_string(),
            actual: format!("{v:?}"),
        };
        match (&mut self.data, &value) {
            (ColumnData::Int(v), Value::Null) => v.push(None),
            (ColumnData::Int(v), Value::Int(x) | Value::Timestamp(x)) => v.push(Some(*x)),
            (ColumnData::Float(v), Value::Null) => v.push(None),
            (ColumnData::Float(v), other) => match other.as_f64() {
                Some(x) => v.push(Some(x)),
                None => return Err(mismatch(&value, DataType::Float)),
            },
            (ColumnData::Str(v), Value::Null) => v.push(None),
            (ColumnData::Str(v), Value::Str(s)) => v.push(Some(s.clone())),
            (ColumnData::Bool(v), Value::Null) => v.push(None),
            (ColumnData::Bool(v), Value::Bool(b)) => v.push(Some(*b)),
            (ColumnData::Timestamp(v), Value::Null) => v.push(None),
            (ColumnData::Timestamp(v), Value::Timestamp(x) | Value::Int(x)) => v.push(Some(*x)),
            (data, v) => return Err(mismatch(v, data.dtype())),
        }
        Ok(())
    }

    /// Mean of the non-null numeric values (None for all-null or non-numeric).
    pub fn mean(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for i in 0..self.len() {
            if let Some(x) = self.get_f64(i) {
                sum += x;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Median of the non-null numeric values.
    pub fn median(&self) -> Option<f64> {
        let mut vals: Vec<f64> = (0..self.len()).filter_map(|i| self.get_f64(i)).collect();
        if vals.is_empty() {
            return None;
        }
        vals.sort_by(|a, b| a.total_cmp(b));
        let mid = vals.len() / 2;
        Some(if vals.len().is_multiple_of(2) {
            (vals[mid - 1] + vals[mid]) / 2.0
        } else {
            vals[mid]
        })
    }

    /// Distinct non-null values (order of first appearance).
    pub fn distinct(&self) -> Vec<Value> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for v in self.iter() {
            if let Some(k) = v.key() {
                if seen.insert(k) {
                    out.push(v);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_lengths() {
        let c = Column::from_i64("a", vec![1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.dtype(), DataType::Int);
        assert_eq!(c.null_count(), 0);
        let c = Column::from_f64_opt("b", vec![Some(1.0), None]);
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn get_and_take() {
        let c = Column::from_str("s", vec!["x", "y", "z"]);
        assert_eq!(c.get(1), Value::Str("y".into()));
        let t = c.take(&[2, 0, 0]);
        assert_eq!(t.get(0), Value::Str("z".into()));
        assert_eq!(t.get(1), Value::Str("x".into()));
        assert_eq!(t.get(2), Value::Str("x".into()));
    }

    #[test]
    fn take_opt_inserts_nulls() {
        let c = Column::from_i64("a", vec![10, 20]);
        let t = c.take_opt(&[Some(1), None, Some(0)]);
        assert_eq!(t.get(0), Value::Int(20));
        assert_eq!(t.get(1), Value::Null);
        assert_eq!(t.get(2), Value::Int(10));
        assert_eq!(t.null_count(), 1);
    }

    #[test]
    fn push_type_checked() {
        let mut c = Column::from_i64("a", vec![1]);
        c.push(Value::Int(2)).unwrap();
        c.push(Value::Null).unwrap();
        assert!(c.push(Value::Str("no".into())).is_err());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn float_column_accepts_ints_on_push() {
        let mut c = Column::from_f64("f", vec![1.0]);
        c.push(Value::Int(2)).unwrap();
        assert_eq!(c.get_f64(1), Some(2.0));
    }

    #[test]
    fn mean_median() {
        let c = Column::from_f64_opt("x", vec![Some(1.0), Some(3.0), None, Some(2.0)]);
        assert_eq!(c.mean(), Some(2.0));
        assert_eq!(c.median(), Some(2.0));
        let even = Column::from_f64("y", vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(even.median(), Some(2.5));
        let empty = Column::from_f64_opt("z", vec![None, None]);
        assert_eq!(empty.mean(), None);
        assert_eq!(empty.median(), None);
    }

    #[test]
    fn distinct_skips_nulls() {
        let c = Column::from_str_opt(
            "s",
            vec![Some("a".into()), None, Some("b".into()), Some("a".into())],
        );
        let d = c.distinct();
        assert_eq!(d, vec![Value::Str("a".into()), Value::Str("b".into())]);
    }

    #[test]
    fn from_values_conversions() {
        let c = Column::from_values(
            "v",
            DataType::Float,
            vec![Value::Int(1), Value::Float(2.5), Value::Null],
        )
        .unwrap();
        assert_eq!(c.get_f64(0), Some(1.0));
        assert_eq!(c.get_f64(1), Some(2.5));
        assert!(c.get(2).is_null());
        let err = Column::from_values("v", DataType::Int, vec![Value::Str("x".into())]);
        assert!(err.is_err());
    }

    #[test]
    fn try_get_bounds() {
        let c = Column::from_i64("a", vec![1]);
        assert!(c.try_get(0).is_ok());
        assert!(matches!(
            c.try_get(5),
            Err(TableError::RowOutOfBounds { .. })
        ));
    }

    #[test]
    fn timestamp_numeric_view() {
        let c = Column::from_timestamps("t", vec![100, 200]);
        assert_eq!(c.dtype(), DataType::Timestamp);
        assert_eq!(c.get_f64(1), Some(200.0));
    }

    /// Pin the full `push` coercion matrix (see the method docs). The
    /// Int↔Timestamp pair is symmetric — the PR 5 audit found `push`
    /// accepted Int into Timestamp builders but not the reverse, at odds
    /// with `Value::total_cmp` treating them as one numeric family.
    #[test]
    fn push_coercion_matrix() {
        let empty = |dt: DataType| -> Column { Column::from_values("c", dt, vec![]).unwrap() };
        let probes = [
            Value::Int(3),
            Value::Float(2.5),
            Value::Timestamp(9),
            Value::Bool(true),
            Value::Str("s".into()),
        ];
        // (column dtype, accepted probe indices into `probes`).
        let matrix: [(DataType, &[usize]); 5] = [
            (DataType::Int, &[0, 2]),
            (DataType::Timestamp, &[0, 2]),
            (DataType::Float, &[0, 1, 2, 3]),
            (DataType::Bool, &[3]),
            (DataType::Str, &[4]),
        ];
        for (dt, accepted) in matrix {
            for (i, probe) in probes.iter().enumerate() {
                let mut col = empty(dt);
                let res = col.push(probe.clone());
                assert_eq!(
                    res.is_ok(),
                    accepted.contains(&i),
                    "push {probe:?} into {dt} column"
                );
            }
            // Null goes everywhere.
            let mut col = empty(dt);
            col.push(Value::Null).unwrap();
            assert_eq!(col.null_count(), 1);
        }
        // The accepted coercions preserve the numeric value.
        let mut int_col = empty(DataType::Int);
        int_col.push(Value::Timestamp(42)).unwrap();
        assert_eq!(int_col.get(0), Value::Int(42));
        let mut ts_col = empty(DataType::Timestamp);
        ts_col.push(Value::Int(42)).unwrap();
        assert_eq!(ts_col.get(0), Value::Timestamp(42));
    }

    /// `from_values` enforces the same matrix, except `Str` which also
    /// stringifies (the documented constructor-only conversion). Bool into
    /// Int is rejected on both paths — it used to slip through
    /// `from_values` only.
    #[test]
    fn from_values_matches_push_matrix() {
        for dt in [DataType::Int, DataType::Timestamp] {
            assert!(Column::from_values("c", dt, vec![Value::Int(1)]).is_ok());
            assert!(Column::from_values("c", dt, vec![Value::Timestamp(1)]).is_ok());
            assert!(Column::from_values("c", dt, vec![Value::Bool(true)]).is_err());
            assert!(Column::from_values("c", dt, vec![Value::Float(1.0)]).is_err());
            assert!(Column::from_values("c", dt, vec![Value::Str("1".into())]).is_err());
        }
        assert!(Column::from_values("c", DataType::Bool, vec![Value::Int(1)]).is_err());
        let f = Column::from_values(
            "c",
            DataType::Float,
            vec![
                Value::Int(1),
                Value::Timestamp(2),
                Value::Bool(true),
                Value::Float(0.5),
            ],
        )
        .unwrap();
        assert_eq!(
            f.to_f64_vec(),
            vec![Some(1.0), Some(2.0), Some(1.0), Some(0.5)]
        );
        // Constructor-only: Str stringifies anything.
        let s = Column::from_values(
            "c",
            DataType::Str,
            vec![Value::Int(7), Value::Timestamp(5), Value::Null],
        )
        .unwrap();
        assert_eq!(s.get(0), Value::Str("7".into()));
        assert_eq!(s.get(1), Value::Str("@5".into()));
        assert!(s.get(2).is_null());
    }
}
