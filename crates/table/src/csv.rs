//! Minimal CSV reading/writing with type inference.
//!
//! ARDA's inputs are repositories of heterogeneous tables; CSV is the lingua
//! franca. This module implements a small RFC-4180-ish parser (quoted fields,
//! embedded commas/quotes) plus per-column type inference with the priority
//! `Int → Float → Bool → Str`; empty fields become nulls.

use crate::{Column, ColumnData, Result, Table, TableError};
use std::io::{BufReader, Read, Write};
use std::path::Path;

/// Parse one CSV record, honouring double quotes.
fn parse_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Inferred {
    Int,
    Float,
    Bool,
    Str,
}

fn infer_one(s: &str) -> Inferred {
    if s.parse::<i64>().is_ok() {
        Inferred::Int
    } else if s.parse::<f64>().is_ok() {
        Inferred::Float
    } else if matches!(s, "true" | "false" | "TRUE" | "FALSE" | "True" | "False") {
        Inferred::Bool
    } else {
        Inferred::Str
    }
}

/// Widen `a` to cover `b`.
fn unify(a: Inferred, b: Inferred) -> Inferred {
    use Inferred::*;
    match (a, b) {
        (x, y) if x == y => x,
        (Int, Float) | (Float, Int) => Float,
        _ => Str,
    }
}

/// Read a table from CSV text. The first record is the header. An empty
/// line is a record of empty (null) fields — only the final trailing
/// newline is ignored.
pub fn read_csv_str(name: &str, text: &str) -> Result<Table> {
    let mut raw: Vec<&str> = text
        .split('\n')
        .map(|l| l.strip_suffix('\r').unwrap_or(l))
        .collect();
    if raw.last() == Some(&"") {
        raw.pop();
    }
    let mut lines = raw.into_iter();
    let header = lines
        .next()
        .ok_or_else(|| TableError::Csv("empty input".into()))?;
    if header.trim().is_empty() {
        return Err(TableError::Csv("empty header".into()));
    }
    let names = parse_record(header);
    let width = names.len();

    let mut cells: Vec<Vec<Option<String>>> = vec![Vec::new(); width];
    for (row_no, line) in lines.enumerate() {
        let rec = parse_record(line);
        if rec.len() != width {
            return Err(TableError::Csv(format!(
                "row {} has {} fields, expected {width}",
                row_no + 2,
                rec.len()
            )));
        }
        for (c, field) in rec.into_iter().enumerate() {
            cells[c].push(if field.is_empty() { None } else { Some(field) });
        }
    }

    let mut columns = Vec::with_capacity(width);
    for (c, name) in names.iter().enumerate() {
        let mut ty: Option<Inferred> = None;
        for v in cells[c].iter().flatten() {
            let t = infer_one(v);
            ty = Some(match ty {
                None => t,
                Some(prev) => unify(prev, t),
            });
        }
        let data = match ty.unwrap_or(Inferred::Str) {
            Inferred::Int => ColumnData::Int(
                cells[c]
                    .iter()
                    .map(|v| {
                        v.as_deref()
                            .map(|s| s.parse::<i64>().expect("inferred int"))
                    })
                    .collect(),
            ),
            Inferred::Float => ColumnData::Float(
                cells[c]
                    .iter()
                    .map(|v| {
                        v.as_deref()
                            .map(|s| s.parse::<f64>().expect("inferred float"))
                    })
                    .collect(),
            ),
            Inferred::Bool => ColumnData::Bool(
                cells[c]
                    .iter()
                    .map(|v| v.as_deref().map(|s| s.eq_ignore_ascii_case("true")))
                    .collect(),
            ),
            Inferred::Str => ColumnData::Str(std::mem::take(&mut cells[c])),
        };
        columns.push(Column::new(name.clone(), data));
    }
    Table::new(name, columns)
}

/// Read a table from a CSV file; the table is named after the file stem.
pub fn read_csv(path: impl AsRef<Path>) -> Result<Table> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| TableError::Csv(e.to_string()))?;
    let mut text = String::new();
    BufReader::new(file)
        .read_to_string(&mut text)
        .map_err(|e| TableError::Csv(e.to_string()))?;
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("table");
    read_csv_str(name, &text)
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Write a table as CSV (nulls become empty fields).
pub fn write_csv(table: &Table, mut out: impl Write) -> Result<()> {
    let io_err = |e: std::io::Error| TableError::Csv(e.to_string());
    let header: Vec<String> = table.columns().iter().map(|c| escape(c.name())).collect();
    writeln!(out, "{}", header.join(",")).map_err(io_err)?;
    for i in 0..table.n_rows() {
        let row: Vec<String> = table
            .columns()
            .iter()
            .map(|c| {
                let v = c.get(i);
                if v.is_null() {
                    String::new()
                } else {
                    escape(&v.to_string())
                }
            })
            .collect();
        writeln!(out, "{}", row.join(",")).map_err(io_err)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataType, Value};

    #[test]
    fn parses_types_and_nulls() {
        let t = read_csv_str("t", "id,price,name,flag\n1,2.5,apple,true\n2,,pear,false\n").unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.column("id").unwrap().dtype(), DataType::Int);
        assert_eq!(t.column("price").unwrap().dtype(), DataType::Float);
        assert_eq!(t.column("name").unwrap().dtype(), DataType::Str);
        assert_eq!(t.column("flag").unwrap().dtype(), DataType::Bool);
        assert!(t.column("price").unwrap().get(1).is_null());
    }

    #[test]
    fn int_widens_to_float() {
        let t = read_csv_str("t", "x\n1\n2.5\n").unwrap();
        assert_eq!(t.column("x").unwrap().dtype(), DataType::Float);
        assert_eq!(t.column("x").unwrap().get_f64(0), Some(1.0));
    }

    #[test]
    fn mixed_becomes_string() {
        let t = read_csv_str("t", "x\n1\nhello\n").unwrap();
        assert_eq!(t.column("x").unwrap().dtype(), DataType::Str);
    }

    #[test]
    fn quoted_fields() {
        let t = read_csv_str("t", "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(t.column("a").unwrap().get(0), Value::Str("x,y".into()));
        assert_eq!(
            t.column("b").unwrap().get(0),
            Value::Str("he said \"hi\"".into())
        );
    }

    #[test]
    fn ragged_rows_error() {
        assert!(read_csv_str("t", "a,b\n1\n").is_err());
        assert!(read_csv_str("t", "").is_err());
    }

    #[test]
    fn round_trip() {
        let t = read_csv_str("t", "id,name\n1,apple\n2,\n").unwrap();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv_str("t", std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(back.n_rows(), 2);
        assert!(back.column("name").unwrap().get(1).is_null());
        assert_eq!(back.column("id").unwrap().get(0), Value::Int(1));
    }

    #[test]
    fn write_escapes_commas() {
        let t = Table::new("t", vec![Column::from_str("s", vec!["a,b"])]).unwrap();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("\"a,b\""));
    }

    #[test]
    fn file_round_trip() {
        let t = read_csv_str("t", "a\n1\n2\n").unwrap();
        let dir = std::env::temp_dir().join("arda_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("small.csv");
        let f = std::fs::File::create(&path).unwrap();
        write_csv(&t, f).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.name(), "small");
        assert_eq!(back.n_rows(), 2);
    }
}
