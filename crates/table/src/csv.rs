//! Streaming CSV ingestion with type inference.
//!
//! ARDA's inputs are *repositories* of heterogeneous tables fed by a
//! discovery system (§2, Figure 1); CSV is the lingua franca. This module
//! implements a streaming, budget-parallel RFC-4180 reader plus per-column
//! type inference with the priority
//! `Timestamp(@tick) → Int → finite Float → Bool → Str`; empty fields
//! become nulls.
//!
//! ## The streaming engine
//!
//! The reader never slurps a file into one `String`. Input is consumed in
//! fixed-size byte chunks ([`CsvReadOptions::chunk_size`]); a *quote-aware*
//! boundary scanner — quote parity is tracked across chunk boundaries, so a
//! `"` / `\n` split between two reads cannot confuse it — carves the byte
//! stream into **blocks** of complete records. Records therefore terminate
//! only at newlines *outside* quoted fields, which is what makes embedded
//! `\n` / `\r\n` inside quoted cells parse correctly (RFC 4180 §2.6)
//! instead of erroring as ragged rows.
//!
//! Parsing runs in **two streaming passes** so memory stays bounded by
//! `O(budget width × chunk_size)` of raw text (plus the final columns)
//! rather than `raw text + dynamic cells + columns` all at once:
//!
//! 1. **Infer** — blocks are fanned out on the ambient [`arda_par`] work
//!    budget; each worker parses its block and accumulates per-column
//!    [`Inferred`] types, which are folded back *in block order* with the
//!    deterministic widen-merge [`unify`] (`Int ∪ Float → Float`, anything
//!    else mixed → `Str`). Ragged rows surface the earliest offending row,
//!    exactly like a sequential scan.
//! 2. **Build** — the source is re-opened and blocks are fanned out again,
//!    this time materializing *typed* columnar builders directly (no
//!    intermediate per-cell `String` table); partial columns are appended
//!    in block order.
//!
//! Chunk boundaries, block boundaries and the merge order depend only on
//! `chunk_size` — never on the budget width or how many permits the pool
//! granted — so the resulting [`Table`] is **bit-identical** at any
//! `ARDA_THREADS` / budget, and identical to a whole-file parse at any
//! chunk size. `tests/csv_stream.rs` asserts both properties.
//!
//! ## Semantics
//!
//! * The first record is the header; duplicate names are rejected by
//!   [`Table::new`].
//! * An empty record (blank line) is a full-width row of nulls.
//! * A record's trailing `\r` (the `\r\n` terminator) is stripped; a bare
//!   `\r` *inside* a field is data and [`write_csv`] quotes it (a field
//!   ending in `\r` would otherwise be silently truncated on read-back).
//! * Writing always round-trips: quoted fields escape `"` as `""` and are
//!   emitted for any field containing `,`, `"`, `\n` or `\r`.
//! * `Timestamp` columns write as `@<tick>` and read back as `Timestamp`
//!   (a column must be *all* `@tick`-or-null to infer as `Timestamp`;
//!   mixed with anything else it is text).
//!
//! ## Type-surface limits (use the binary [`crate::store`] format instead)
//!
//! CSV text cannot distinguish `Str("7")` from `Int(7)`, `Str("@5")` from
//! `Timestamp(5)`, or `Str("inf")` from `Float(∞)`. Inference resolves the
//! first two in favour of the typed reading, and the third in favour of
//! `Str`: Float inference admits **finite** literals only, so non-finite
//! values in a Float column degrade to a `Str` column of `inf`/`NaN`
//! tokens on re-read (previously such *text* columns silently became
//! non-finite Float columns that poison k-NN/Relief distances). The
//! `.arda` binary shard format round-trips all five dtypes bit-exactly
//! and is the right store for anything that must survive persistence.

use crate::{Column, ColumnData, Result, Table, TableError};
use std::io::Read;
use std::path::Path;

/// Tuning knobs for the streaming CSV reader.
#[derive(Debug, Clone)]
pub struct CsvReadOptions {
    /// Bytes per streamed chunk. Blocks handed to parallel workers are at
    /// least this large (they extend to the last complete record found).
    /// `usize::MAX` degenerates to a whole-input parse ("slurp mode") —
    /// the output is identical either way.
    pub chunk_size: usize,
}

impl Default for CsvReadOptions {
    fn default() -> Self {
        CsvReadOptions {
            chunk_size: 64 * 1024,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Inferred {
    Int,
    Float,
    Bool,
    Str,
    Timestamp,
}

/// Per-cell type inference with the priority
/// `Timestamp(@tick) → Int → finite Float → Bool → Str`.
///
/// * `@<i64>` is the [`crate::Value::Timestamp`] display form, so a column
///   [`write_csv`] emitted from a Timestamp column reads back as
///   `Timestamp` — the CSV leg of the PR 5 round-trip bugfix (previously
///   such columns silently degraded to `Str`).
/// * Float inference accepts **finite** literals only: tokens like
///   `inf` / `-inf` / `NaN` / `Infinity` / `1e999` stay `Str`. Otherwise an
///   all-text column of such tokens became a Float column of non-finite
///   values that poison k-NN/Relief distances downstream. The trade-off
///   (documented in the module docs) is that non-finite values in a real
///   Float column do not survive a CSV round-trip — use the binary
///   [`crate::store`] format, which round-trips every bit pattern.
fn infer_one(s: &str) -> Inferred {
    if let Some(tick) = s.strip_prefix('@') {
        if tick.parse::<i64>().is_ok() {
            return Inferred::Timestamp;
        }
    }
    if s.parse::<i64>().is_ok() {
        Inferred::Int
    } else if s.parse::<f64>().is_ok_and(f64::is_finite) {
        Inferred::Float
    } else if matches!(s, "true" | "false" | "TRUE" | "FALSE" | "True" | "False") {
        Inferred::Bool
    } else {
        Inferred::Str
    }
}

/// Widen `a` to cover `b`. Associative and commutative, so the per-block
/// fold order cannot change the merged type (the fold still runs in block
/// order for determinism by construction). `Timestamp` only unifies with
/// itself — `@tick` mixed with anything else is text.
fn unify(a: Inferred, b: Inferred) -> Inferred {
    use Inferred::*;
    match (a, b) {
        (x, y) if x == y => x,
        (Int, Float) | (Float, Int) => Float,
        _ => Str,
    }
}

// ---------------------------------------------------------------------------
// Record-level parsing
// ---------------------------------------------------------------------------

/// Parse one raw record (which may contain newlines inside quoted fields)
/// into fields, calling `f(field_index, text)` per unescaped field.
/// Returns the field count.
///
/// Quote handling is deliberately lenient, matching the original reader: a
/// quote toggles quoted mode wherever it appears, `""` inside quotes is a
/// literal `"`.
fn for_each_field(record: &str, mut f: impl FnMut(usize, &str)) -> usize {
    let mut cur = String::new();
    let mut idx = 0usize;
    let mut chars = record.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                f(idx, &cur);
                idx += 1;
                cur.clear();
            }
            c => cur.push(c),
        }
    }
    f(idx, &cur);
    idx + 1
}

/// Parse one record into owned fields (test/oracle convenience).
fn parse_record(record: &str) -> Vec<String> {
    let mut fields = Vec::new();
    for_each_field(record, |_, s| fields.push(s.to_string()));
    fields
}

/// Iterate the complete records of `block`, stripping the `\n` terminator
/// and one trailing `\r` per record. `block` must start at a record
/// boundary; newlines inside quoted fields (tracked by quote *parity*,
/// which is equivalent to the field parser's toggling for `""` escapes) do
/// not terminate a record. A final unterminated record (EOF without a
/// newline) is yielded too.
fn for_each_record(block: &str, mut f: impl FnMut(usize, &str) -> Result<()>) -> Result<()> {
    let bytes = block.as_bytes();
    let mut in_quotes = false;
    let mut start = 0usize;
    let mut rec_no = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_quotes = !in_quotes,
            b'\n' if !in_quotes => {
                let mut end = i;
                if end > start && bytes[end - 1] == b'\r' {
                    end -= 1;
                }
                f(rec_no, &block[start..end])?;
                rec_no += 1;
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < bytes.len() {
        let mut end = bytes.len();
        if bytes[end - 1] == b'\r' {
            end -= 1;
        }
        f(rec_no, &block[start..end])?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Chunked block streaming
// ---------------------------------------------------------------------------

/// A run of complete records carved out of the byte stream.
struct Block {
    text: String,
    /// Global index (header = 0) of this block's first record.
    first_record: usize,
}

/// Streams fixed-size chunks from a reader and carves them into [`Block`]s
/// of complete records at quote-aware boundaries. Quote parity persists
/// across chunk reads, so structural characters split between two reads
/// are classified exactly as in a whole-input scan.
struct BlockStream<R: Read> {
    reader: R,
    chunk_size: usize,
    carry: Vec<u8>,
    /// Quote parity at `carry[scanned]`.
    in_quotes: bool,
    /// Prefix of `carry` already boundary-scanned.
    scanned: usize,
    /// Offset just past the last record terminator found in `carry`.
    last_end: usize,
    /// Record terminators found in `carry[..last_end]`.
    pending_records: usize,
    records_emitted: usize,
    eof: bool,
}

impl<R: Read> BlockStream<R> {
    fn new(reader: R, chunk_size: usize) -> Self {
        BlockStream {
            reader,
            chunk_size: chunk_size.max(1),
            carry: Vec::new(),
            in_quotes: false,
            scanned: 0,
            last_end: 0,
            pending_records: 0,
            records_emitted: 0,
            eof: false,
        }
    }

    /// Read one chunk and boundary-scan the new bytes.
    fn fill(&mut self) -> Result<()> {
        let before = self.carry.len();
        let n = self
            .reader
            .by_ref()
            .take(self.chunk_size as u64)
            .read_to_end(&mut self.carry)
            .map_err(|e| TableError::Csv(e.to_string()))?;
        if n == 0 {
            self.eof = true;
        }
        debug_assert_eq!(self.scanned, before);
        for i in self.scanned..self.carry.len() {
            match self.carry[i] {
                b'"' => self.in_quotes = !self.in_quotes,
                b'\n' if !self.in_quotes => {
                    self.last_end = i + 1;
                    self.pending_records += 1;
                }
                _ => {}
            }
        }
        self.scanned = self.carry.len();
        Ok(())
    }

    /// Next block of complete records, or `None` at end of input. Blocks
    /// split only at record boundaries, so each is valid UTF-8 iff the
    /// input is.
    fn next_block(&mut self) -> Result<Option<Block>> {
        loop {
            if self.last_end > 0 {
                let rest = self.carry.split_off(self.last_end);
                let bytes = std::mem::replace(&mut self.carry, rest);
                let text = String::from_utf8(bytes)
                    .map_err(|_| TableError::Csv("input is not valid UTF-8".into()))?;
                let block = Block {
                    text,
                    first_record: self.records_emitted,
                };
                self.records_emitted += self.pending_records;
                self.scanned -= self.last_end;
                self.last_end = 0;
                self.pending_records = 0;
                return Ok(Some(block));
            }
            if self.eof {
                // A lone `\r` tail is the `\r` of a final `\r\n`-style
                // empty line: the original parser stripped it and popped
                // the resulting empty last line, so it is not a record.
                if self.carry.is_empty() || self.carry == b"\r" {
                    return Ok(None);
                }
                let bytes = std::mem::take(&mut self.carry);
                let text = String::from_utf8(bytes)
                    .map_err(|_| TableError::Csv("input is not valid UTF-8".into()))?;
                let block = Block {
                    text,
                    first_record: self.records_emitted,
                };
                self.records_emitted += 1;
                self.scanned = 0;
                return Ok(Some(block));
            }
            self.fill()?;
        }
    }

    /// Pull up to `n` blocks (one parallel window's worth).
    fn next_window(&mut self, n: usize) -> Result<Vec<Block>> {
        let mut blocks = Vec::new();
        while blocks.len() < n.max(1) {
            match self.next_block()? {
                Some(b) => blocks.push(b),
                None => break,
            }
        }
        Ok(blocks)
    }
}

/// The first record of `block` (terminator and one trailing `\r`
/// stripped), without scanning past it — a block can be the whole input in
/// slurp mode, and the header never needs more than its own bytes.
fn first_record(block: &str) -> &str {
    let bytes = block.as_bytes();
    let mut in_quotes = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_quotes = !in_quotes,
            b'\n' if !in_quotes => {
                let end = if i > 0 && bytes[i - 1] == b'\r' {
                    i - 1
                } else {
                    i
                };
                return &block[..end];
            }
            _ => {}
        }
    }
    let mut end = bytes.len();
    if end > 0 && bytes[end - 1] == b'\r' {
        end -= 1;
    }
    &block[..end]
}

fn ragged(record: usize, got: usize, width: usize) -> TableError {
    // Data record r (header = record 0) is "row r + 1" in the 1-based
    // message convention the original reader used.
    TableError::Csv(format!(
        "row {} has {} fields, expected {width}",
        record + 1,
        got
    ))
}

// ---------------------------------------------------------------------------
// Pass 1: header + type inference
// ---------------------------------------------------------------------------

struct InferState {
    names: Vec<String>,
    /// Per-column merged type; `None` = no non-null value seen.
    types: Vec<Option<Inferred>>,
    n_rows: usize,
}

/// Infer per-column types for one block of data records.
fn infer_block(
    block: &str,
    first_record: usize,
    skip_records: usize,
    width: usize,
) -> Result<(Vec<Option<Inferred>>, usize)> {
    let mut types: Vec<Option<Inferred>> = vec![None; width];
    let mut rows = 0usize;
    for_each_record(block, |i, rec| {
        if i < skip_records {
            return Ok(());
        }
        rows += 1;
        if rec.is_empty() {
            return Ok(()); // full-width null row
        }
        let n = for_each_field(rec, |c, field| {
            if c < width && !field.is_empty() {
                let t = infer_one(field);
                types[c] = Some(match types[c] {
                    None => t,
                    Some(prev) => unify(prev, t),
                });
            }
        });
        if n != width {
            return Err(ragged(first_record + i, n, width));
        }
        Ok(())
    })?;
    Ok((types, rows))
}

fn infer_pass<R: Read>(reader: R, opts: &CsvReadOptions) -> Result<InferState> {
    let mut stream = BlockStream::new(reader, opts.chunk_size);
    let Some(first) = stream.next_block()? else {
        return Err(TableError::Csv("empty input".into()));
    };

    // The header is the first record of the first block; peel it off
    // inline, then infer the rest of that block sequentially (it is one
    // block's worth of work) and window the remainder in parallel.
    let header = first_record(&first.text);
    if header.trim().is_empty() {
        return Err(TableError::Csv("empty header".into()));
    }
    let names = parse_record(header);
    let width = names.len();

    let (mut types, mut n_rows) = infer_block(&first.text, 0, 1, width)?;
    loop {
        let window = stream.next_window(arda_par::resolve_threads(0))?;
        if window.is_empty() {
            break;
        }
        let results = arda_par::par_map(&window, 0, |_, block| {
            infer_block(&block.text, block.first_record, 0, width)
        });
        // Fold in block order; `unify` is order-insensitive but the fold
        // order is fixed anyway, and the *earliest* ragged row wins just
        // like a sequential scan.
        for res in results {
            let (block_types, rows) = res?;
            n_rows += rows;
            for (slot, t) in types.iter_mut().zip(block_types) {
                *slot = match (*slot, t) {
                    (prev, None) => prev,
                    (None, got) => got,
                    (Some(prev), Some(got)) => Some(unify(prev, got)),
                };
            }
        }
    }
    Ok(InferState {
        names,
        types,
        n_rows,
    })
}

// ---------------------------------------------------------------------------
// Pass 2: typed columnar build
// ---------------------------------------------------------------------------

fn new_builder(t: Inferred, capacity: usize) -> ColumnData {
    match t {
        Inferred::Int => ColumnData::Int(Vec::with_capacity(capacity)),
        Inferred::Float => ColumnData::Float(Vec::with_capacity(capacity)),
        Inferred::Bool => ColumnData::Bool(Vec::with_capacity(capacity)),
        Inferred::Str => ColumnData::Str(Vec::with_capacity(capacity)),
        Inferred::Timestamp => ColumnData::Timestamp(Vec::with_capacity(capacity)),
    }
}

fn push_null(data: &mut ColumnData) {
    match data {
        ColumnData::Int(v) | ColumnData::Timestamp(v) => v.push(None),
        ColumnData::Float(v) => v.push(None),
        ColumnData::Str(v) => v.push(None),
        ColumnData::Bool(v) => v.push(None),
    }
}

/// Parse `field` into the builder's type. Inference already proved every
/// non-null cell parses; a failure here means the source changed between
/// the two passes.
fn push_field(data: &mut ColumnData, field: &str) -> Result<()> {
    if field.is_empty() {
        push_null(data);
        return Ok(());
    }
    let changed = || TableError::Csv("input changed between streaming passes".into());
    match data {
        ColumnData::Int(v) => v.push(Some(field.parse::<i64>().map_err(|_| changed())?)),
        ColumnData::Timestamp(v) => {
            let tick = field.strip_prefix('@').ok_or_else(changed)?;
            v.push(Some(tick.parse::<i64>().map_err(|_| changed())?))
        }
        ColumnData::Float(v) => {
            let x = field.parse::<f64>().map_err(|_| changed())?;
            if !x.is_finite() {
                // Inference only admits finite literals; a non-finite one
                // here means the source changed between the two passes.
                return Err(changed());
            }
            v.push(Some(x))
        }
        ColumnData::Bool(v) => match field {
            "true" | "TRUE" | "True" => v.push(Some(true)),
            "false" | "FALSE" | "False" => v.push(Some(false)),
            _ => return Err(changed()),
        },
        ColumnData::Str(v) => v.push(Some(field.to_string())),
    }
    Ok(())
}

fn append_data(dst: &mut ColumnData, src: ColumnData) {
    match (dst, src) {
        (ColumnData::Int(d), ColumnData::Int(mut s)) => d.append(&mut s),
        (ColumnData::Float(d), ColumnData::Float(mut s)) => d.append(&mut s),
        (ColumnData::Str(d), ColumnData::Str(mut s)) => d.append(&mut s),
        (ColumnData::Bool(d), ColumnData::Bool(mut s)) => d.append(&mut s),
        (ColumnData::Timestamp(d), ColumnData::Timestamp(mut s)) => d.append(&mut s),
        _ => unreachable!("builders share one inferred type per column"),
    }
}

/// Materialize one block of records into typed partial columns.
fn build_block(
    block: &str,
    first_record: usize,
    skip_records: usize,
    types: &[Inferred],
) -> Result<Vec<ColumnData>> {
    let width = types.len();
    let mut cols: Vec<ColumnData> = types.iter().map(|&t| new_builder(t, 0)).collect();
    for_each_record(block, |i, rec| {
        if i < skip_records {
            return Ok(());
        }
        if rec.is_empty() {
            for col in &mut cols {
                push_null(col);
            }
            return Ok(());
        }
        let mut err: Option<TableError> = None;
        let n = for_each_field(rec, |c, field| {
            if err.is_none() {
                if let Some(col) = cols.get_mut(c) {
                    if let Err(e) = push_field(col, field) {
                        err = Some(e);
                    }
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        if n != width {
            return Err(ragged(first_record + i, n, width));
        }
        Ok(())
    })?;
    Ok(cols)
}

fn build_pass<R: Read>(
    reader: R,
    opts: &CsvReadOptions,
    state: &InferState,
) -> Result<Vec<ColumnData>> {
    let types: Vec<Inferred> = state
        .types
        .iter()
        .map(|t| t.unwrap_or(Inferred::Str))
        .collect();
    let mut columns: Vec<ColumnData> = types
        .iter()
        .map(|&t| new_builder(t, state.n_rows))
        .collect();
    let mut stream = BlockStream::new(reader, opts.chunk_size);
    let mut first = true;
    loop {
        let window = stream.next_window(arda_par::resolve_threads(0))?;
        if window.is_empty() {
            break;
        }
        let skip_header = first;
        first = false;
        let parts = arda_par::par_map(&window, 0, |bi, block| {
            let skip = usize::from(skip_header && bi == 0);
            build_block(&block.text, block.first_record, skip, &types)
        });
        for part in parts {
            for (dst, src) in columns.iter_mut().zip(part?) {
                append_data(dst, src);
            }
        }
    }
    if columns.first().is_some_and(|c| c.len() != state.n_rows) {
        return Err(TableError::Csv(
            "input changed between streaming passes".into(),
        ));
    }
    Ok(columns)
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// Run both streaming passes over a re-openable byte source.
fn ingest<R: Read>(
    name: &str,
    open: impl Fn() -> Result<R>,
    opts: &CsvReadOptions,
) -> Result<Table> {
    let state = infer_pass(open()?, opts)?;
    let columns = build_pass(open()?, opts, &state)?;
    let columns: Vec<Column> = state
        .names
        .iter()
        .zip(columns)
        .map(|(n, data)| Column::new(n.clone(), data))
        .collect();
    Table::new(name, columns)
}

/// Read a table from CSV text with explicit options. The first record is
/// the header; an empty record is a row of nulls; quoted fields may span
/// lines.
pub fn read_csv_str_with(name: &str, text: &str, opts: &CsvReadOptions) -> Result<Table> {
    ingest(name, || Ok(text.as_bytes()), opts)
}

/// Read a table from CSV text (default streaming options).
pub fn read_csv_str(name: &str, text: &str) -> Result<Table> {
    read_csv_str_with(name, text, &CsvReadOptions::default())
}

/// Read a table from a CSV file with explicit options; the table is named
/// after the file stem. The file is streamed twice (infer, then build) so
/// raw text, dynamic cells and columns are never all resident at once.
pub fn read_csv_with(path: impl AsRef<Path>, opts: &CsvReadOptions) -> Result<Table> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("table")
        .to_string();
    ingest(
        &name,
        || std::fs::File::open(path).map_err(|e| TableError::Csv(e.to_string())),
        opts,
    )
}

/// Read a table from a CSV file (default streaming options).
pub fn read_csv(path: impl AsRef<Path>) -> Result<Table> {
    read_csv_with(path, &CsvReadOptions::default())
}

/// Read only the header record of a CSV file: the column names, in order.
/// This is the manifest-scan primitive behind directory-sharded
/// repositories — it reads at most a few chunks, never the whole file.
pub fn read_csv_header(path: impl AsRef<Path>) -> Result<Vec<String>> {
    let file = std::fs::File::open(path.as_ref()).map_err(|e| TableError::Csv(e.to_string()))?;
    let mut stream = BlockStream::new(file, CsvReadOptions::default().chunk_size);
    let Some(first) = stream.next_block()? else {
        return Err(TableError::Csv("empty input".into()));
    };
    let header = first_record(&first.text);
    if header.trim().is_empty() {
        return Err(TableError::Csv("empty header".into()));
    }
    Ok(parse_record(header))
}

fn escape(field: &str) -> String {
    // `\r` must be quoted too: an unquoted field ending in `\r` would be
    // read back with the `\r\n`-terminator stripping applied — silent data
    // corruption rather than an error.
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Write a table as CSV (nulls become empty fields). Output always
/// round-trips through the streaming reader.
pub fn write_csv(table: &Table, mut out: impl std::io::Write) -> Result<()> {
    let io_err = |e: std::io::Error| TableError::Csv(e.to_string());
    let header: Vec<String> = table.columns().iter().map(|c| escape(c.name())).collect();
    writeln!(out, "{}", header.join(",")).map_err(io_err)?;
    for i in 0..table.n_rows() {
        let row: Vec<String> = table
            .columns()
            .iter()
            .map(|c| {
                let v = c.get(i);
                if v.is_null() {
                    String::new()
                } else {
                    escape(&v.to_string())
                }
            })
            .collect();
        writeln!(out, "{}", row.join(",")).map_err(io_err)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataType, Value};

    #[test]
    fn parses_types_and_nulls() {
        let t = read_csv_str("t", "id,price,name,flag\n1,2.5,apple,true\n2,,pear,false\n").unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.column("id").unwrap().dtype(), DataType::Int);
        assert_eq!(t.column("price").unwrap().dtype(), DataType::Float);
        assert_eq!(t.column("name").unwrap().dtype(), DataType::Str);
        assert_eq!(t.column("flag").unwrap().dtype(), DataType::Bool);
        assert!(t.column("price").unwrap().get(1).is_null());
    }

    #[test]
    fn int_widens_to_float() {
        let t = read_csv_str("t", "x\n1\n2.5\n").unwrap();
        assert_eq!(t.column("x").unwrap().dtype(), DataType::Float);
        assert_eq!(t.column("x").unwrap().get_f64(0), Some(1.0));
    }

    #[test]
    fn mixed_becomes_string() {
        let t = read_csv_str("t", "x\n1\nhello\n").unwrap();
        assert_eq!(t.column("x").unwrap().dtype(), DataType::Str);
    }

    #[test]
    fn quoted_fields() {
        let t = read_csv_str("t", "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(t.column("a").unwrap().get(0), Value::Str("x,y".into()));
        assert_eq!(
            t.column("b").unwrap().get(0),
            Value::Str("he said \"hi\"".into())
        );
    }

    #[test]
    fn ragged_rows_error() {
        assert!(read_csv_str("t", "a,b\n1\n").is_err());
        assert!(read_csv_str("t", "").is_err());
    }

    #[test]
    fn ragged_error_reports_earliest_row() {
        let err = read_csv_str("t", "a,b\n1,2\n3\n4,5\n6\n").unwrap_err();
        assert_eq!(err.to_string(), "csv error: row 3 has 1 fields, expected 2");
    }

    #[test]
    fn round_trip() {
        let t = read_csv_str("t", "id,name\n1,apple\n2,\n").unwrap();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv_str("t", std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(back.n_rows(), 2);
        assert!(back.column("name").unwrap().get(1).is_null());
        assert_eq!(back.column("id").unwrap().get(0), Value::Int(1));
    }

    #[test]
    fn write_escapes_commas() {
        let t = Table::new("t", vec![Column::from_str("s", vec!["a,b"])]).unwrap();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("\"a,b\""));
    }

    #[test]
    fn file_round_trip() {
        let t = read_csv_str("t", "a\n1\n2\n").unwrap();
        let dir = std::env::temp_dir().join("arda_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("small.csv");
        let f = std::fs::File::create(&path).unwrap();
        write_csv(&t, f).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.name(), "small");
        assert_eq!(back.n_rows(), 2);
    }

    // ---- PR 4 regression tests -------------------------------------------

    /// Bugfix: quoted fields containing newlines round-trip. The previous
    /// reader split on `\n` *before* quote handling, so reading back what
    /// `write_csv` produced errored with a ragged-row message.
    #[test]
    fn embedded_newlines_round_trip() {
        let t = Table::new(
            "t",
            vec![
                Column::from_str("s", vec!["a\nb", "c\r\nd", "e,f", "plain"]),
                Column::from_i64("k", vec![1, 2, 3, 4]),
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv_str("t", std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(back.n_rows(), 4);
        assert_eq!(back.column("s").unwrap().get(0), Value::Str("a\nb".into()));
        assert_eq!(
            back.column("s").unwrap().get(1),
            Value::Str("c\r\nd".into())
        );
        assert_eq!(back.column("s").unwrap().get(2), Value::Str("e,f".into()));
        assert_eq!(back.column("k").unwrap().get(3), Value::Int(4));
    }

    /// Bugfix: an interior blank line is a full-width record of nulls, as
    /// the doc always promised — previously any table wider than one
    /// column errored on it.
    #[test]
    fn blank_interior_line_is_null_record() {
        let t = read_csv_str("t", "a,b,c\n1,x,true\n\n2,y,false\n").unwrap();
        assert_eq!(t.n_rows(), 3);
        for col in ["a", "b", "c"] {
            assert!(
                t.column(col).unwrap().get(1).is_null(),
                "blank line nulls column {col}"
            );
        }
        assert_eq!(t.column("a").unwrap().get(2), Value::Int(2));
        // A blank *final* line before the trailing newline counts too.
        let t = read_csv_str("t", "a,b\n1,2\n\n").unwrap();
        assert_eq!(t.n_rows(), 2);
        assert!(t.column("a").unwrap().get(1).is_null());
    }

    /// Bugfix: a field with a bare `\r` must be quoted on write; unquoted
    /// it was silently truncated by the reader's `\r\n` stripping — data
    /// corruption, not an error.
    #[test]
    fn bare_cr_fields_survive_round_trip() {
        let t = Table::new(
            "t",
            vec![Column::from_str("s", vec!["ends-in\r", "mid\rdle", "\r"])],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"ends-in\r\""), "cr field quoted: {text:?}");
        let back = read_csv_str("t", &text).unwrap();
        assert_eq!(
            back.column("s").unwrap().get(0),
            Value::Str("ends-in\r".into()),
            "no truncation"
        );
        assert_eq!(
            back.column("s").unwrap().get(1),
            Value::Str("mid\rdle".into())
        );
        assert_eq!(back.column("s").unwrap().get(2), Value::Str("\r".into()));
    }

    /// The streaming reader is chunk-size invariant, including chunks far
    /// smaller than a record and chunks that split quotes/CRLF/UTF-8.
    #[test]
    fn chunk_size_invariance() {
        let text = "name,x,note\nαβγ,1,\"line one\nline two\"\nplain,2,\"q\"\"uote\"\nlast,3,\r\n";
        let whole = read_csv_str_with(
            "t",
            text,
            &CsvReadOptions {
                chunk_size: usize::MAX,
            },
        )
        .unwrap();
        for chunk in [1usize, 2, 3, 7, 64, 4096] {
            let got = read_csv_str_with("t", text, &CsvReadOptions { chunk_size: chunk }).unwrap();
            assert_eq!(got, whole, "chunk_size={chunk}");
        }
        assert_eq!(whole.n_rows(), 3);
        assert_eq!(
            whole.column("note").unwrap().get(0),
            Value::Str("line one\nline two".into())
        );
        assert!(whole.column("note").unwrap().get(2).is_null());
    }

    /// A lone `\r` after the final newline (a `\r\n`-style trailing empty
    /// line truncated at the `\r`) is not a record — the seed parser
    /// stripped it to an empty last line and popped it.
    #[test]
    fn lone_cr_tail_is_not_a_record() {
        let t = read_csv_str("t", "a,b\n1,2\n\r").unwrap();
        assert_eq!(t.n_rows(), 1);
        assert!(read_csv_str("t", "\r").is_err(), "empty input");
        // A `\r` tail *with* content stays a (stripped) record.
        let t = read_csv_str("t", "a,b\n1,2\n3,4\r").unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.column("a").unwrap().get(1), Value::Int(3));
    }

    // ---- PR 5 regression tests -------------------------------------------

    /// Bugfix: a `Timestamp` column survives `write_csv` → read with dtype
    /// and values identical. Previously `@tick` strings read back as `Str`
    /// (the `Inferred` enum had no `Timestamp` variant), so every
    /// persisted repository lost its soft time keys.
    #[test]
    fn timestamp_round_trip() {
        let t = Table::new(
            "t",
            vec![
                Column::new(
                    "ts",
                    ColumnData::Timestamp(vec![Some(86_400), None, Some(-7), Some(0)]),
                ),
                Column::from_i64("k", vec![1, 2, 3, 4]),
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("@86400"), "@tick syntax written: {text:?}");
        for chunk_size in [3usize, 64, usize::MAX] {
            let back = read_csv_str_with("t", &text, &CsvReadOptions { chunk_size }).unwrap();
            assert_eq!(back, t, "chunk_size={chunk_size}");
            assert_eq!(back.column("ts").unwrap().dtype(), DataType::Timestamp);
            assert_eq!(back.column("k").unwrap().dtype(), DataType::Int);
        }
    }

    /// `@tick` mixed with non-timestamp values (or malformed `@` tokens)
    /// stays text — only an all-`@tick` column infers as `Timestamp`.
    #[test]
    fn malformed_or_mixed_ticks_stay_str() {
        for text in ["x\n@5\n6\n", "x\n@5\nhello\n", "x\n@\n@1.5\n", "x\n@@3\n"] {
            let t = read_csv_str("t", text).unwrap();
            assert_eq!(t.column("x").unwrap().dtype(), DataType::Str, "{text:?}");
        }
        // Null cells don't block timestamp inference.
        let t = read_csv_str("t", "x\n@5\n\n@-6\n").unwrap();
        assert_eq!(t.column("x").unwrap().dtype(), DataType::Timestamp);
        assert_eq!(t.column("x").unwrap().get(1), Value::Null);
        assert_eq!(t.column("x").unwrap().get(2), Value::Timestamp(-6));
    }

    /// Bugfix: non-finite float literals no longer infer as `Float`. An
    /// all-text column of `inf`/`NaN`-style tokens used to become a Float
    /// column whose non-finite values poison k-NN/Relief distances.
    #[test]
    fn non_finite_tokens_stay_str() {
        let t = read_csv_str("t", "x\ninf\nNaN\n-inf\nInfinity\n1e999\n").unwrap();
        let col = t.column("x").unwrap();
        assert_eq!(col.dtype(), DataType::Str);
        assert_eq!(col.get(0), Value::Str("inf".into()));
        assert_eq!(col.get(4), Value::Str("1e999".into()));
        // Finite literals still widen Int → Float as before.
        let t = read_csv_str("t", "x\n1\n2.5e3\n").unwrap();
        assert_eq!(t.column("x").unwrap().dtype(), DataType::Float);
    }

    /// The documented CSV degradation: non-finite values in a *real* Float
    /// column come back as their text tokens (`Str`), values preserved as
    /// strings — not silently re-typed. The binary store round-trips them
    /// exactly; this pin makes the CSV trade-off explicit.
    #[test]
    fn non_finite_floats_degrade_to_str_on_csv_round_trip() {
        let t = Table::new(
            "t",
            vec![Column::from_f64("x", vec![1.5, f64::INFINITY, f64::NAN])],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv_str("t", std::str::from_utf8(&buf).unwrap()).unwrap();
        let col = back.column("x").unwrap();
        assert_eq!(col.dtype(), DataType::Str);
        assert_eq!(col.get(0), Value::Str("1.5".into()));
        assert_eq!(col.get(1), Value::Str("inf".into()));
        assert_eq!(col.get(2), Value::Str("NaN".into()));
    }

    #[test]
    fn header_only_and_header_scan() {
        let t = read_csv_str("t", "a,b\n").unwrap();
        assert_eq!(t.n_rows(), 0);
        assert_eq!(t.column("a").unwrap().dtype(), DataType::Str);

        let dir = std::env::temp_dir().join("arda_csv_header_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.csv");
        std::fs::write(&path, "k,\"v,1\",w\n1,2,3\n").unwrap();
        assert_eq!(
            read_csv_header(&path).unwrap(),
            vec!["k".to_string(), "v,1".to_string(), "w".to_string()]
        );
    }
}
