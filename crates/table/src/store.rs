//! Typed binary columnar shard store (the `.arda` format).
//!
//! CSV is the repository's interchange surface, but it is *typed-lossy*:
//! it has no timestamp syntax beyond the `@tick` display form and cannot
//! distinguish `Str("7")` from `Int(7)` or `Str("inf")` from a non-finite
//! float. ARDA's join discovery keys on column **types** (timestamp pairs
//! become soft time keys, floats never key), so a storage layer that
//! silently demotes dtypes corrupts the whole downstream plan. This module
//! is the root fix: a dependency-free, length-prefixed binary columnar
//! format that round-trips every [`DataType`] — values, nulls and dtypes —
//! bit-identically, with budget-parallel per-column encode/decode on
//! [`arda_par`].
//!
//! ## Byte-level layout (version 1, all integers little-endian)
//!
//! ```text
//! offset  size        field
//! 0       4           magic `b"ARDA"`
//! 4       2           format version  (u16, = 1)
//! 6       2           reserved        (u16, = 0)
//! 8       4           n_cols          (u32)
//! 12      8           n_rows          (u64)
//! 20      —           column directory, n_cols entries:
//!                       name_len (u32) · name (UTF-8 bytes)
//!                       dtype tag (u8: 0=int 1=float 2=str 3=bool 4=timestamp)
//!                       payload_len (u64)
//! ...     —           column payloads, concatenated in column order
//! ```
//!
//! Each column payload starts with a **validity bitmap** of
//! `ceil(n_rows/8)` bytes (bit `i % 8` of byte `i / 8` set ⇔ row `i` is
//! non-null, LSB first), followed by the values:
//!
//! * `int` / `timestamp` — `n_rows` × `i64` (nulls stored as `0`);
//! * `float` — `n_rows` × `f64` bit patterns via [`f64::to_bits`] (exact
//!   for every value including `-0.0`, infinities and NaN payloads);
//! * `bool` — a second `ceil(n_rows/8)` bitmap (nulls stored as `0`);
//! * `str` — `n_rows + 1` × `u64` monotone byte offsets, then the
//!   concatenated UTF-8 blob (`offsets[i]..offsets[i+1]` is row `i`;
//!   nulls are empty ranges).
//!
//! Because every column's payload is length-prefixed in the directory,
//! readers slice the body into independent per-column regions and decode
//! them in parallel on the ambient work budget; writers encode per column
//! in parallel and concatenate. Output bytes and decoded tables are
//! bit-identical at any budget.
//!
//! ## Failure behaviour
//!
//! Decoding never panics on hostile input: bad magic, unsupported
//! versions, truncated directories or payloads, out-of-range or
//! non-monotone string offsets, invalid UTF-8 and dtype tags all surface
//! as [`TableError::Store`]. All size arithmetic is checked before any
//! allocation is sized from untrusted input.

use crate::{Column, ColumnData, DataType, Field, Result, Schema, Table, TableError};
use std::io::{Read, Write};
use std::path::Path;

/// File magic, the first four bytes of every shard.
pub const ARDA_MAGIC: [u8; 4] = *b"ARDA";
/// Current format version.
pub const ARDA_VERSION: u16 = 1;

fn err(msg: impl Into<String>) -> TableError {
    TableError::Store(msg.into())
}

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
        DataType::Timestamp => 4,
    }
}

fn dtype_from_tag(tag: u8) -> Option<DataType> {
    DataType::all().get(tag as usize).copied()
}

fn bitmap_len(n_rows: usize) -> usize {
    n_rows.div_ceil(8)
}

/// Pack per-row presence flags into an LSB-first bitmap.
fn pack_bitmap(bits: impl ExactSizeIterator<Item = bool>) -> Vec<u8> {
    let mut out = vec![0u8; bitmap_len(bits.len())];
    for (i, set) in bits.enumerate() {
        if set {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

fn bitmap_get(bitmap: &[u8], i: usize) -> bool {
    bitmap[i / 8] & (1 << (i % 8)) != 0
}

// ---------------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------------

fn encode_column(col: &Column) -> Vec<u8> {
    fn fixed<T: Copy>(values: &[Option<T>], to_le: impl Fn(T) -> [u8; 8], zero: T) -> Vec<u8> {
        let mut out = pack_bitmap(values.iter().map(Option::is_some));
        out.reserve(values.len() * 8);
        for v in values {
            out.extend_from_slice(&to_le(v.unwrap_or(zero)));
        }
        out
    }
    match col.data() {
        ColumnData::Int(v) | ColumnData::Timestamp(v) => fixed(v, i64::to_le_bytes, 0),
        ColumnData::Float(v) => fixed(v, |x: f64| x.to_bits().to_le_bytes(), 0.0),
        ColumnData::Bool(v) => {
            let mut out = pack_bitmap(v.iter().map(Option::is_some));
            out.extend_from_slice(&pack_bitmap(v.iter().map(|b| b.unwrap_or(false))));
            out
        }
        ColumnData::Str(v) => {
            let mut out = pack_bitmap(v.iter().map(Option::is_some));
            let blob_len: usize = v.iter().flatten().map(String::len).sum();
            out.reserve((v.len() + 1) * 8 + blob_len);
            let mut off = 0u64;
            out.extend_from_slice(&off.to_le_bytes());
            for s in v {
                off += s.as_deref().map_or(0, str::len) as u64;
                out.extend_from_slice(&off.to_le_bytes());
            }
            for s in v.iter().flatten() {
                out.extend_from_slice(s.as_bytes());
            }
            out
        }
    }
}

/// Serialize `table` into the version-1 shard format. Columns encode in
/// parallel on the ambient work budget; the byte stream is identical at
/// any budget (payloads are written in column order).
pub fn write_arda(table: &Table, mut out: impl Write) -> Result<()> {
    let io_err = |e: std::io::Error| err(format!("write failed: {e}"));
    let payloads: Vec<Vec<u8>> = arda_par::par_map(table.columns(), 0, |_, c| encode_column(c));

    out.write_all(&ARDA_MAGIC).map_err(io_err)?;
    out.write_all(&ARDA_VERSION.to_le_bytes()).map_err(io_err)?;
    out.write_all(&0u16.to_le_bytes()).map_err(io_err)?;
    let n_cols = u32::try_from(table.n_cols()).map_err(|_| {
        err(format!(
            "{} columns exceed the u32 directory",
            table.n_cols()
        ))
    })?;
    out.write_all(&n_cols.to_le_bytes()).map_err(io_err)?;
    out.write_all(&(table.n_rows() as u64).to_le_bytes())
        .map_err(io_err)?;
    for (col, payload) in table.columns().iter().zip(&payloads) {
        let name = col.name().as_bytes();
        let name_len = u32::try_from(name.len())
            .map_err(|_| err(format!("column name of {} bytes too long", name.len())))?;
        out.write_all(&name_len.to_le_bytes()).map_err(io_err)?;
        out.write_all(name).map_err(io_err)?;
        out.write_all(&[dtype_tag(col.dtype())]).map_err(io_err)?;
        out.write_all(&(payload.len() as u64).to_le_bytes())
            .map_err(io_err)?;
    }
    for payload in &payloads {
        out.write_all(payload).map_err(io_err)?;
    }
    Ok(())
}

/// [`write_arda`] into a file at `path`.
pub fn write_arda_file(table: &Table, path: impl AsRef<Path>) -> Result<()> {
    let path = path.as_ref();
    let file = std::fs::File::create(path)
        .map_err(|e| err(format!("cannot create {}: {e}", path.display())))?;
    let mut buf = std::io::BufWriter::new(file);
    write_arda(table, &mut buf)?;
    buf.flush()
        .map_err(|e| err(format!("cannot flush {}: {e}", path.display())))
}

// ---------------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------------

/// A shard's decoded directory: schema and row count, read without
/// touching any payload bytes. This is the manifest/catalog primitive —
/// on a file it reads only the header region.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardHeader {
    /// Column names and dtypes, in column order.
    pub schema: Schema,
    /// Number of rows in every column.
    pub n_rows: usize,
    /// Per-column payload byte lengths (directory order).
    payload_lens: Vec<usize>,
    /// Byte length of the header itself (payloads start here).
    header_len: usize,
}

/// Incrementally pull exact byte counts out of a reader, tracking the
/// running offset so truncation errors can say where.
struct HeaderReader<R: Read> {
    inner: R,
    offset: usize,
}

impl<R: Read> HeaderReader<R> {
    fn take(&mut self, n: usize, what: &str) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; n];
        self.inner.read_exact(&mut buf).map_err(|_| {
            err(format!(
                "truncated header: {what} at byte {} needs {n} more bytes",
                self.offset
            ))
        })?;
        self.offset += n;
        Ok(buf)
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
}

/// Parse the magic, version, counts and column directory from `reader`.
/// `source_size` (the byte length of the slice or file being decoded)
/// bounds every directory-claimed length, so hostile headers cannot size
/// an allocation beyond the input that claims it.
fn parse_header<R: Read>(reader: R, source_size: u64) -> Result<ShardHeader> {
    let mut r = HeaderReader {
        inner: reader,
        offset: 0,
    };
    let magic = r.take(4, "magic")?;
    if magic != ARDA_MAGIC {
        return Err(err(format!("bad magic {magic:02x?}, expected \"ARDA\"")));
    }
    let version = u16::from_le_bytes(r.take(2, "version")?.try_into().expect("2 bytes"));
    if version != ARDA_VERSION {
        return Err(err(format!(
            "unsupported format version {version} (reader supports {ARDA_VERSION})"
        )));
    }
    r.take(2, "reserved")?;
    let n_cols = r.u32("n_cols")? as usize;
    let n_rows_raw = r.u64("n_rows")?;
    let n_rows = usize::try_from(n_rows_raw)
        .map_err(|_| err(format!("n_rows {n_rows_raw} exceeds addressable memory")))?;
    let bound = source_size;
    // Each directory entry costs ≥ 13 bytes; a hostile n_cols is rejected
    // before any per-column allocation.
    if (n_cols as u64).saturating_mul(13) > bound {
        return Err(err(format!(
            "directory claims {n_cols} columns, file too small"
        )));
    }
    let mut fields = Vec::with_capacity(n_cols);
    let mut payload_lens = Vec::with_capacity(n_cols);
    for c in 0..n_cols {
        let name_len = r.u32(&format!("column {c} name length"))? as usize;
        if name_len as u64 > bound {
            return Err(err(format!(
                "column {c} claims a {name_len}-byte name, file too small"
            )));
        }
        let name = String::from_utf8(r.take(name_len, &format!("column {c} name"))?)
            .map_err(|_| err(format!("column {c} name is not valid UTF-8")))?;
        let tag = r.take(1, &format!("column {c} dtype"))?[0];
        let dtype = dtype_from_tag(tag)
            .ok_or_else(|| err(format!("column {c} ({name}) has unknown dtype tag {tag}")))?;
        let payload_len_raw = r.u64(&format!("column {c} payload length"))?;
        if payload_len_raw > bound {
            return Err(err(format!(
                "column {c} ({name}) claims a {payload_len_raw}-byte payload, file too small"
            )));
        }
        let payload_len = usize::try_from(payload_len_raw)
            .map_err(|_| err(format!("column {c} payload length overflows usize")))?;
        fields.push(Field::new(name, dtype));
        payload_lens.push(payload_len);
    }
    let schema = Schema::new(fields).map_err(|e| err(format!("invalid shard schema: {e}")))?;
    Ok(ShardHeader {
        schema,
        n_rows,
        payload_lens,
        header_len: r.offset,
    })
}

/// Read only a shard file's header: schema and row count. Never reads
/// payload bytes, so it is cheap even on multi-gigabyte shards.
pub fn read_arda_header(path: impl AsRef<Path>) -> Result<ShardHeader> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)
        .map_err(|e| err(format!("cannot open {}: {e}", path.display())))?;
    // The size bound is load-bearing (it caps every directory-claimed
    // allocation), so an unreadable size is an error, not an unbounded
    // parse.
    let size = file
        .metadata()
        .map_err(|e| err(format!("cannot stat {}: {e}", path.display())))?
        .len();
    parse_header(std::io::BufReader::new(file), size)
        .map_err(|e| err(format!("{}: {e}", path.display())))
}

/// Expected payload byte length for a fixed-width column, with checked
/// arithmetic (an attacker-controlled `n_rows` must not wrap).
fn expect_len(n_rows: usize, per_row: usize, extra: usize) -> Result<usize> {
    n_rows
        .checked_mul(per_row)
        .and_then(|v| v.checked_add(extra))
        .ok_or_else(|| err(format!("payload size for {n_rows} rows overflows")))
}

fn decode_column(name: &str, dtype: DataType, n_rows: usize, bytes: &[u8]) -> Result<Column> {
    let ctx = |msg: String| err(format!("column {name}: {msg}"));
    let bm = bitmap_len(n_rows);
    let fixed_expected = expect_len(n_rows, 8, bm)?;
    let check = |expected: usize| -> Result<()> {
        if bytes.len() != expected {
            return Err(ctx(format!(
                "payload is {} bytes, expected {expected} for {n_rows} rows of {dtype}",
                bytes.len()
            )));
        }
        Ok(())
    };
    let read_i64 = |chunk: &[u8]| i64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
    let data = match dtype {
        DataType::Int | DataType::Timestamp => {
            check(fixed_expected)?;
            let (bitmap, body) = bytes.split_at(bm);
            let v: Vec<Option<i64>> = body
                .chunks_exact(8)
                .enumerate()
                .map(|(i, c)| bitmap_get(bitmap, i).then(|| read_i64(c)))
                .collect();
            if dtype == DataType::Int {
                ColumnData::Int(v)
            } else {
                ColumnData::Timestamp(v)
            }
        }
        DataType::Float => {
            check(fixed_expected)?;
            let (bitmap, body) = bytes.split_at(bm);
            ColumnData::Float(
                body.chunks_exact(8)
                    .enumerate()
                    .map(|(i, c)| {
                        bitmap_get(bitmap, i).then(|| {
                            f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes")))
                        })
                    })
                    .collect(),
            )
        }
        DataType::Bool => {
            check(bm.checked_mul(2).ok_or_else(|| err("bitmap overflows"))?)?;
            let (bitmap, body) = bytes.split_at(bm);
            ColumnData::Bool(
                (0..n_rows)
                    .map(|i| bitmap_get(bitmap, i).then(|| bitmap_get(body, i)))
                    .collect(),
            )
        }
        DataType::Str => {
            let offsets_len = expect_len(n_rows + 1, 8, 0)?;
            let min = bm
                .checked_add(offsets_len)
                .ok_or_else(|| err("offset table overflows"))?;
            if bytes.len() < min {
                return Err(ctx(format!(
                    "payload is {} bytes, needs at least {min} for the string offset table",
                    bytes.len()
                )));
            }
            let (bitmap, rest) = bytes.split_at(bm);
            let (offset_bytes, blob) = rest.split_at(offsets_len);
            let offsets: Vec<u64> = offset_bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect();
            if offsets[0] != 0 {
                return Err(ctx(format!(
                    "string offsets must start at 0, got {}",
                    offsets[0]
                )));
            }
            if offsets.windows(2).any(|w| w[1] < w[0]) {
                return Err(ctx("string offsets are not monotone".into()));
            }
            if offsets[n_rows] != blob.len() as u64 {
                return Err(ctx(format!(
                    "string blob is {} bytes but offsets end at {}",
                    blob.len(),
                    offsets[n_rows]
                )));
            }
            ColumnData::Str(
                (0..n_rows)
                    .map(|i| {
                        if !bitmap_get(bitmap, i) {
                            return Ok(None);
                        }
                        let s = &blob[offsets[i] as usize..offsets[i + 1] as usize];
                        std::str::from_utf8(s)
                            .map(|s| Some(s.to_string()))
                            .map_err(|_| ctx(format!("row {i} is not valid UTF-8")))
                    })
                    .collect::<Result<_>>()?,
            )
        }
    };
    Ok(Column::new(name, data))
}

/// Decode a shard from an in-memory byte slice. Per-column payloads are
/// independent regions, so they decode in parallel on the ambient work
/// budget; the resulting [`Table`] is bit-identical at any budget.
pub fn read_arda_bytes(name: &str, bytes: &[u8]) -> Result<Table> {
    let header = parse_header(bytes, bytes.len() as u64)?;
    let body = &bytes[header.header_len..];
    let total: usize = header
        .payload_lens
        .iter()
        .try_fold(0usize, |acc, &l| acc.checked_add(l))
        .ok_or_else(|| err("payload lengths overflow"))?;
    if body.len() != total {
        return Err(err(format!(
            "body is {} bytes but the directory claims {total}",
            body.len()
        )));
    }
    let mut regions = Vec::with_capacity(header.schema.len());
    let mut offset = 0usize;
    for (field, &len) in header.schema.fields().iter().zip(&header.payload_lens) {
        regions.push((field.clone(), &body[offset..offset + len]));
        offset += len;
    }
    let columns = arda_par::par_map(&regions, 0, |_, (field, slice)| {
        decode_column(&field.name, field.dtype, header.n_rows, slice)
    })
    .into_iter()
    .collect::<Result<Vec<Column>>>()?;
    Table::new(name, columns)
}

/// Read a shard file; the table is named after the file stem, exactly
/// like [`crate::read_csv`].
pub fn read_arda(path: impl AsRef<Path>) -> Result<Table> {
    let path = path.as_ref();
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("table")
        .to_string();
    let bytes =
        std::fs::read(path).map_err(|e| err(format!("cannot read {}: {e}", path.display())))?;
    read_arda_bytes(&name, &bytes).map_err(|e| err(format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn sample() -> Table {
        Table::new(
            "s",
            vec![
                Column::from_i64_opt("id", vec![Some(1), None, Some(-3)]),
                Column::from_f64_opt("x", vec![Some(-0.0), Some(f64::NAN), None]),
                Column::from_str_opt(
                    "s",
                    vec![Some("a,\"b\"\nc".into()), None, Some("日🦀".into())],
                ),
                Column::new(
                    "flag",
                    ColumnData::Bool(vec![Some(true), Some(false), None]),
                ),
                Column::new(
                    "ts",
                    ColumnData::Timestamp(vec![Some(86_400), None, Some(-5)]),
                ),
            ],
        )
        .unwrap()
    }

    fn to_bytes(t: &Table) -> Vec<u8> {
        let mut buf = Vec::new();
        write_arda(t, &mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trip_all_dtypes_exactly() {
        let t = sample();
        let back = read_arda_bytes("s", &to_bytes(&t)).unwrap();
        // Bit-exact: NaN payloads and -0.0 survive via to_bits, dtypes are
        // preserved (the fix CSV cannot provide), nulls keep their mask.
        for (a, b) in t.columns().iter().zip(back.columns()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.dtype(), b.dtype());
        }
        let nan = back.column("x").unwrap().get_f64(1).unwrap();
        assert!(nan.is_nan());
        assert_eq!(
            back.column("x").unwrap().get_f64(0).unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        assert_eq!(back.column("ts").unwrap().dtype(), DataType::Timestamp);
        assert_eq!(back.column("ts").unwrap().get(0), Value::Timestamp(86_400));
        assert_eq!(
            back.column("s").unwrap().get(0),
            Value::Str("a,\"b\"\nc".into())
        );
        assert_eq!(back.column("id").unwrap().get(1), Value::Null);
        assert_eq!(back.n_rows(), 3);
    }

    #[test]
    fn empty_tables_round_trip() {
        let zero_rows = Table::new(
            "z",
            vec![Column::from_i64("a", vec![]), Column::from_str("b", vec![])],
        )
        .unwrap();
        let back = read_arda_bytes("z", &to_bytes(&zero_rows)).unwrap();
        assert_eq!(back, zero_rows);
        let zero_cols = Table::empty("e");
        let back = read_arda_bytes("e", &to_bytes(&zero_cols)).unwrap();
        assert_eq!(back.n_cols(), 0);
        assert_eq!(back.n_rows(), 0);
    }

    #[test]
    fn header_scan_reads_schema_without_payload() {
        let t = sample();
        let dir = std::env::temp_dir().join(format!("arda_store_hdr_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.arda");
        write_arda_file(&t, &path).unwrap();
        let header = read_arda_header(&path).unwrap();
        assert_eq!(header.n_rows, 3);
        assert_eq!(header.schema, t.schema());
        let back = read_arda(&path).unwrap();
        // NaN defeats PartialEq; re-encoding both proves bit-identity.
        assert_eq!(to_bytes(&back), to_bytes(&t));
        assert_eq!(back.name(), "s", "named after the file stem");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_version_and_tag_are_errors() {
        let good = to_bytes(&sample());
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_arda_bytes("t", &bad).unwrap_err(),
            TableError::Store(_)
        ));
        let mut bad = good.clone();
        bad[4] = 99; // version
        let msg = read_arda_bytes("t", &bad).unwrap_err().to_string();
        assert!(msg.contains("version"), "{msg}");
        // Corrupt the first column's dtype tag: directory entry starts at
        // 20, tag sits after name_len(4) + name("id" = 2).
        let mut bad = good;
        bad[26] = 250;
        let msg = read_arda_bytes("t", &bad).unwrap_err().to_string();
        assert!(msg.contains("dtype tag"), "{msg}");
    }

    #[test]
    fn every_truncation_is_a_clean_error() {
        let bytes = to_bytes(&sample());
        for cut in 0..bytes.len() {
            match read_arda_bytes("t", &bytes[..cut]) {
                Err(TableError::Store(_)) => {}
                Err(other) => panic!("cut at {cut}: unexpected error kind {other}"),
                Ok(_) => panic!("cut at {cut}: truncated shard decoded"),
            }
        }
        assert!(read_arda_bytes("t", &bytes).is_ok());
    }

    #[test]
    fn corrupt_string_offsets_are_errors() {
        let t = Table::new("t", vec![Column::from_str("s", vec!["ab", "cd"])]).unwrap();
        let bytes = to_bytes(&t);
        // Payload of column 0 starts right after the header; bitmap is 1
        // byte, then 3 u64 offsets [0, 2, 4], then the 4-byte blob.
        let header_len = parse_header(&bytes[..], bytes.len() as u64)
            .unwrap()
            .header_len;
        let off0 = header_len + 1;
        let mut bad = bytes.clone();
        bad[off0] = 1; // offsets[0] != 0
        assert!(read_arda_bytes("t", &bad)
            .unwrap_err()
            .to_string()
            .contains("start at 0"));
        let mut bad = bytes.clone();
        bad[off0 + 8] = 9; // offsets[1] > offsets[2]: not monotone
        assert!(read_arda_bytes("t", &bad)
            .unwrap_err()
            .to_string()
            .contains("monotone"));
        let mut bad = bytes.clone();
        bad[off0 + 16] = 3; // offsets[n] != blob length
        assert!(read_arda_bytes("t", &bad)
            .unwrap_err()
            .to_string()
            .contains("blob"));
        let mut bad = bytes;
        bad[off0 + 24] = 0xFF; // blob byte: invalid UTF-8
        assert!(read_arda_bytes("t", &bad)
            .unwrap_err()
            .to_string()
            .contains("UTF-8"));
    }

    /// A header claiming astronomically many rows or columns errors out
    /// before any allocation is sized from the claim.
    #[test]
    fn hostile_counts_are_rejected_before_allocation() {
        let mut bytes = to_bytes(&sample());
        bytes[12..20].copy_from_slice(&u64::MAX.to_le_bytes()); // n_rows
        let msg = read_arda_bytes("t", &bytes).unwrap_err().to_string();
        assert!(
            msg.contains("expected") || msg.contains("overflow"),
            "{msg}"
        );

        let mut bytes = to_bytes(&sample());
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes()); // n_cols
        let msg = read_arda_bytes("t", &bytes).unwrap_err().to_string();
        assert!(msg.contains("columns"), "{msg}");
    }
}
