//! Column data types, fields and table schemas.

use crate::{Result, TableError};
use std::fmt;

/// Logical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats.
    Float,
    /// UTF-8 strings (categoricals).
    Str,
    /// Booleans.
    Bool,
    /// Integer timestamps (ticks). Distinguished from `Int` so join
    /// machinery can recognise soft time keys and resample granularity.
    Timestamp,
}

impl DataType {
    /// True for types with a meaningful numeric embedding.
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            DataType::Int | DataType::Float | DataType::Timestamp | DataType::Bool
        )
    }

    /// All data types, in their stable wire-tag order (see the `store`
    /// module: the binary shard format assigns tag `i` to `all()[i]`).
    pub fn all() -> [DataType; 5] {
        [
            DataType::Int,
            DataType::Float,
            DataType::Str,
            DataType::Bool,
            DataType::Timestamp,
        ]
    }
}

impl std::str::FromStr for DataType {
    type Err = TableError;

    /// Inverse of [`fmt::Display`]; used by the shard-catalog encoding.
    fn from_str(s: &str) -> Result<DataType> {
        match s {
            "int" => Ok(DataType::Int),
            "float" => Ok(DataType::Float),
            "str" => Ok(DataType::Str),
            "bool" => Ok(DataType::Bool),
            "timestamp" => Ok(DataType::Timestamp),
            other => Err(TableError::Invalid(format!("unknown dtype `{other}`"))),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Bool => "bool",
            DataType::Timestamp => "timestamp",
        };
        f.write_str(s)
    }
}

/// A named, typed column slot in a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (unique within a table).
    pub name: String,
    /// Column logical type.
    pub dtype: DataType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// Ordered collection of [`Field`]s describing a table's columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields, rejecting duplicate names.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        let mut seen = std::collections::HashSet::new();
        for f in &fields {
            if !seen.insert(f.name.as_str()) {
                return Err(TableError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Schema { fields })
    }

    /// Fields in column order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Position of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field lookup by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// All column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_rejects_duplicates() {
        let err = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Float),
        ]);
        assert_eq!(err.unwrap_err(), TableError::DuplicateColumn("a".into()));
    }

    #[test]
    fn index_and_field_lookup() {
        let s = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Str),
        ])
        .unwrap();
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("z"), None);
        assert_eq!(s.field("a").unwrap().dtype, DataType::Int);
        assert_eq!(s.names(), vec!["a", "b"]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn numeric_types() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(DataType::Timestamp.is_numeric());
        assert!(DataType::Bool.is_numeric());
        assert!(!DataType::Str.is_numeric());
    }

    #[test]
    fn display_names() {
        assert_eq!(DataType::Timestamp.to_string(), "timestamp");
        assert_eq!(DataType::Str.to_string(), "str");
    }

    #[test]
    fn dtype_display_from_str_round_trip() {
        for dt in DataType::all() {
            assert_eq!(dt.to_string().parse::<DataType>().unwrap(), dt);
        }
        assert!("datetime".parse::<DataType>().is_err());
        assert!("".parse::<DataType>().is_err());
    }
}
