//! # arda-table
//!
//! Columnar table substrate for the ARDA reproduction.
//!
//! The ARDA pipeline (VLDB 2020) manipulates relational tables: it joins a
//! user's *base table* against candidate tables from a repository, aggregates
//! foreign tables to fix join cardinality, imputes missing values and finally
//! converts the augmented table into a numeric feature matrix. This crate
//! provides exactly that relational substrate, built from scratch:
//!
//! * [`Value`] — a dynamically typed cell, including `Null`.
//! * [`Column`] — a typed, named column with a null mask (`Vec<Option<T>>`).
//! * [`Schema`] / [`Field`] — column names and [`DataType`]s.
//! * [`Table`] — a collection of equal-length columns with relational
//!   operations: projection, row `take`, filtering, sorting, horizontal
//!   concatenation and [`GroupBy`] aggregation.
//! * Streaming CSV ingestion with type inference: a chunked, quote-aware
//!   RFC-4180 reader that parses and infers on the ambient [`arda_par`]
//!   work budget under bounded memory (see the `csv` module docs), plus a
//!   round-trip-safe writer.
//! * A typed binary columnar shard format (`.arda`): length-prefixed
//!   little-endian columns with null bitmaps that round-trip every
//!   [`DataType`] bit-exactly — including `Timestamp`, which CSV cannot
//!   express — with budget-parallel per-column encode/decode and a cheap
//!   header-only scan (see the [`store`] module docs for the byte layout).
//!
//! The engine is deliberately small: ARDA needs LEFT-join-friendly row
//! addressing, group-by aggregation and cheap columnar access, not a full
//! query engine.

mod column;
mod csv;
mod display;
mod error;
mod groupby;
mod schema;
pub mod store;
mod table;
mod value;

pub use column::{Column, ColumnData};
pub use csv::{
    read_csv, read_csv_header, read_csv_str, read_csv_str_with, read_csv_with, write_csv,
    CsvReadOptions,
};
pub use error::TableError;
pub use groupby::{AggExpr, Aggregation, GroupBy};
pub use schema::{DataType, Field, Schema};
pub use store::{
    read_arda, read_arda_bytes, read_arda_header, write_arda, write_arda_file, ShardHeader,
};
pub use table::Table;
pub use value::{Key, Value};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TableError>;
