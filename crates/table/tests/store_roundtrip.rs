//! Property suite for the binary columnar shard store (PR 5).
//!
//! * **Round-trip**: random tables over all five dtypes — nulls, hostile
//!   strings (embedded separators, quotes, newlines, multi-byte UTF-8),
//!   non-finite floats, negative timestamps — encode → decode
//!   **bit-identically** at work budgets {1, 2, 8}. Bit-identity is
//!   checked by re-encoding (NaN defeats `PartialEq`); the encoded byte
//!   stream itself must also be identical at every budget.
//! * **Corruption**: every possible truncation of a valid shard, plus
//!   random single-byte flips, decode to a clean [`TableError::Store`]
//!   (or, for value-byte flips, a well-formed table) — never a panic.
//!
//! The catalog-staleness counterpart (`_catalog.arda` invalidation on
//! mtime/size change) lives with the `Repository` tests in
//! `arda-discovery`.

use arda_table::{read_arda_bytes, write_arda, Column, ColumnData, Table, TableError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn hostile_string(rng: &mut StdRng) -> String {
    let alphabet = [
        'a', 'Z', '0', '@', ',', '"', '\n', '\r', '\0', ' ', '\t', '.', '-', 'é', '日', '🦀',
    ];
    let len = rng.gen_range(0usize..12);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0usize..alphabet.len())])
        .collect()
}

fn random_table(rng: &mut StdRng) -> Table {
    let n_rows = rng.gen_range(0usize..40);
    let n_cols = rng.gen_range(1usize..7);
    let cols = (0..n_cols)
        .map(|c| {
            let name = format!("c{c}");
            let null = |rng: &mut StdRng| rng.gen_bool(0.2);
            match rng.gen_range(0u32..5) {
                0 => Column::new(
                    &name,
                    ColumnData::Int(
                        (0..n_rows)
                            .map(|_| (!null(rng)).then(|| rng.gen_range(i64::MIN..i64::MAX)))
                            .collect(),
                    ),
                ),
                1 => Column::new(
                    &name,
                    ColumnData::Float(
                        (0..n_rows)
                            .map(|_| {
                                (!null(rng)).then(|| match rng.gen_range(0u32..8) {
                                    0 => f64::NAN,
                                    1 => f64::INFINITY,
                                    2 => f64::NEG_INFINITY,
                                    3 => -0.0,
                                    _ => rng.gen_range(-1e12..1e12),
                                })
                            })
                            .collect(),
                    ),
                ),
                2 => Column::new(
                    &name,
                    ColumnData::Bool(
                        (0..n_rows)
                            .map(|_| (!null(rng)).then(|| rng.gen_bool(0.5)))
                            .collect(),
                    ),
                ),
                3 => Column::new(
                    &name,
                    ColumnData::Str(
                        (0..n_rows)
                            .map(|_| (!null(rng)).then(|| hostile_string(rng)))
                            .collect(),
                    ),
                ),
                _ => Column::new(
                    &name,
                    ColumnData::Timestamp(
                        (0..n_rows)
                            .map(|_| (!null(rng)).then(|| rng.gen_range(i64::MIN..i64::MAX)))
                            .collect(),
                    ),
                ),
            }
        })
        .collect();
    Table::new("t", cols).unwrap()
}

fn to_bytes(t: &Table) -> Vec<u8> {
    let mut buf = Vec::new();
    write_arda(t, &mut buf).unwrap();
    buf
}

/// Random tables round-trip bit-identically at every work budget, and the
/// encoded byte stream is budget-invariant too.
#[test]
fn random_tables_round_trip_bit_identically_across_budgets() {
    let restore = arda_par::default_threads();
    let mut rng = StdRng::seed_from_u64(0x57a5);
    for case in 0..60 {
        let table = random_table(&mut rng);
        let mut reference: Option<Vec<u8>> = None;
        for budget in [1usize, 2, 8] {
            arda_par::set_default_threads(budget);
            let bytes = to_bytes(&table);
            match &reference {
                None => reference = Some(bytes.clone()),
                Some(r) => assert_eq!(&bytes, r, "case {case}: encode at budget {budget}"),
            }
            let back = read_arda_bytes("t", &bytes)
                .unwrap_or_else(|e| panic!("case {case} budget {budget}: {e}"));
            // Dtypes survive exactly (the fix CSV cannot provide) ...
            assert_eq!(back.schema(), table.schema(), "case {case}");
            assert_eq!(back.n_rows(), table.n_rows(), "case {case}");
            // ... and so does every value bit: re-encode and compare.
            assert_eq!(
                to_bytes(&back),
                bytes,
                "case {case} budget {budget}: decode∘encode is the identity"
            );
        }
    }
    arda_par::set_default_threads(restore);
}

/// Every truncation of a valid shard is a clean `Store` error; random
/// single-byte corruption never panics (flips in value bytes may still
/// decode — to a well-formed table — but structural damage must error).
#[test]
fn corrupted_shards_error_cleanly() {
    let mut rng = StdRng::seed_from_u64(0xdead);
    let table = random_table(&mut rng);
    let bytes = to_bytes(&table);
    assert!(!bytes.is_empty());

    for cut in 0..bytes.len() {
        match read_arda_bytes("t", &bytes[..cut]) {
            Err(TableError::Store(msg)) => assert!(!msg.is_empty()),
            Err(other) => panic!("cut {cut}: wrong error kind {other}"),
            Ok(_) => panic!("cut {cut}: truncated shard decoded"),
        }
    }

    for _ in 0..200 {
        let mut corrupt = bytes.clone();
        let i = rng.gen_range(0usize..corrupt.len());
        corrupt[i] ^= 1 << rng.gen_range(0u32..8);
        // Must not panic; any `Err` must be the Store kind.
        if let Err(e) = read_arda_bytes("t", &corrupt) {
            assert!(
                matches!(e, TableError::Store(_)),
                "flip at byte {i}: wrong error kind {e}"
            );
        }
    }
}
