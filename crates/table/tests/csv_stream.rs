//! CSV property suite for the streaming reader (PR 4).
//!
//! Three families of properties:
//!
//! 1. **Round-trip**: random tables over all dtypes — with nulls and
//!    hostile strings (embedded `\n`, `\r\n`, bare `\r`, `,`, `"`,
//!    multi-byte UTF-8) — survive `write_csv` → streaming read *exactly*,
//!    **including `Timestamp` columns** (the PR 5 bugfix: `@tick` is now
//!    CSV timestamp syntax, so dtypes and values come back identical).
//! 2. **Seed equivalence**: on every input the original slurping parser
//!    handled, the streaming reader produces a bit-identical table at
//!    every chunk size in {7, 64, 4096, whole-file}. The original parser
//!    is embedded below as `seed_read_csv_str`, verbatim. Since PR 5 the
//!    equivalence domain excludes tokens the reader now types more
//!    precisely than the seed did: `@<i64>` cells (seed: `Str`, now
//!    `Timestamp`) and non-finite float literals like `inf` / `NaN`
//!    (seed: `Float`, now `Str`) — both have dedicated regression tests
//!    in the `csv` module instead.
//! 3. **Budget invariance**: parsing is bit-identical across work budgets
//!    (chunk/block layout depends only on `chunk_size`, never on width).
//!
//! `tests/budget_determinism.rs` at the workspace root additionally drives
//! ingestion through the full pipeline across budgets.

use arda_table::{
    read_csv_str, read_csv_str_with, write_csv, Column, ColumnData, CsvReadOptions, Table,
    TableError,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// The seed parser, kept verbatim as the equivalence oracle
// ---------------------------------------------------------------------------

fn seed_parse_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum SeedInferred {
    Int,
    Float,
    Bool,
    Str,
}

fn seed_infer_one(s: &str) -> SeedInferred {
    if s.parse::<i64>().is_ok() {
        SeedInferred::Int
    } else if s.parse::<f64>().is_ok() {
        SeedInferred::Float
    } else if matches!(s, "true" | "false" | "TRUE" | "FALSE" | "True" | "False") {
        SeedInferred::Bool
    } else {
        SeedInferred::Str
    }
}

fn seed_unify(a: SeedInferred, b: SeedInferred) -> SeedInferred {
    use SeedInferred::*;
    match (a, b) {
        (x, y) if x == y => x,
        (Int, Float) | (Float, Int) => Float,
        _ => Str,
    }
}

/// The pre-PR-4 `read_csv_str`: slurp, split on `\n`, quote handling per
/// line. Only meaningful on inputs without embedded newlines or blank
/// interior lines — exactly the domain the equivalence property runs on.
fn seed_read_csv_str(name: &str, text: &str) -> Result<Table, TableError> {
    let mut raw: Vec<&str> = text
        .split('\n')
        .map(|l| l.strip_suffix('\r').unwrap_or(l))
        .collect();
    if raw.last() == Some(&"") {
        raw.pop();
    }
    let mut lines = raw.into_iter();
    let header = lines
        .next()
        .ok_or_else(|| TableError::Csv("empty input".into()))?;
    if header.trim().is_empty() {
        return Err(TableError::Csv("empty header".into()));
    }
    let names = seed_parse_record(header);
    let width = names.len();

    let mut cells: Vec<Vec<Option<String>>> = vec![Vec::new(); width];
    for (row_no, line) in lines.enumerate() {
        let rec = seed_parse_record(line);
        if rec.len() != width {
            return Err(TableError::Csv(format!(
                "row {} has {} fields, expected {width}",
                row_no + 2,
                rec.len()
            )));
        }
        for (c, field) in rec.into_iter().enumerate() {
            cells[c].push(if field.is_empty() { None } else { Some(field) });
        }
    }

    let mut columns = Vec::with_capacity(width);
    for (c, name) in names.iter().enumerate() {
        let mut ty: Option<SeedInferred> = None;
        for v in cells[c].iter().flatten() {
            let t = seed_infer_one(v);
            ty = Some(match ty {
                None => t,
                Some(prev) => seed_unify(prev, t),
            });
        }
        let data = match ty.unwrap_or(SeedInferred::Str) {
            SeedInferred::Int => ColumnData::Int(
                cells[c]
                    .iter()
                    .map(|v| {
                        v.as_deref()
                            .map(|s| s.parse::<i64>().expect("inferred int"))
                    })
                    .collect(),
            ),
            SeedInferred::Float => ColumnData::Float(
                cells[c]
                    .iter()
                    .map(|v| {
                        v.as_deref()
                            .map(|s| s.parse::<f64>().expect("inferred float"))
                    })
                    .collect(),
            ),
            SeedInferred::Bool => ColumnData::Bool(
                cells[c]
                    .iter()
                    .map(|v| v.as_deref().map(|s| s.eq_ignore_ascii_case("true")))
                    .collect(),
            ),
            SeedInferred::Str => ColumnData::Str(std::mem::take(&mut cells[c])),
        };
        columns.push(Column::new(name.clone(), data));
    }
    Table::new(name, columns)
}

// ---------------------------------------------------------------------------
// Random table generation
// ---------------------------------------------------------------------------

const CHUNK_SIZES: [usize; 4] = [7, 64, 4096, usize::MAX];

/// Hostile characters for string cells. `allow_newlines = false` keeps the
/// value inside the seed parser's domain (it split on `\n` before quotes).
fn hostile_string(rng: &mut StdRng, allow_newlines: bool) -> String {
    let full = [
        'a', 'Z', '0', '7', ',', '"', '\n', '\r', ' ', '\t', '.', '-', 'é', '日', '🦀',
    ];
    // Without newlines: the same alphabet minus `\n` / `\r`, keeping the
    // value inside the seed parser's domain.
    let seed_safe = [
        'a', 'Z', '0', '7', ',', '"', ' ', '\t', '.', '-', 'é', '日', '🦀',
    ];
    let len = rng.gen_range(1usize..10);
    let mut s = String::new();
    for _ in 0..len {
        if allow_newlines {
            s.push(full[rng.gen_range(0usize..full.len())]);
        } else {
            s.push(seed_safe[rng.gen_range(0usize..seed_safe.len())]);
        }
    }
    // Keep the value unambiguously a string: non-empty and not parseable
    // as int/float/bool (an all-digit value would legitimately read back
    // as an Int column).
    if s.trim().is_empty()
        || s.parse::<i64>().is_ok()
        || s.parse::<f64>().is_ok()
        || matches!(
            s.as_str(),
            "true" | "false" | "TRUE" | "FALSE" | "True" | "False"
        )
    {
        s.insert(0, 's');
        s.push('_');
    }
    s
}

/// A random table that CSV round-trips *identically* — all five dtypes
/// when `allow_timestamps` (Timestamp now has the `@tick` CSV syntax);
/// restrict to the seed parser's type surface with
/// `allow_timestamps = false` for the seed-equivalence properties.
fn random_table(rng: &mut StdRng, allow_newlines: bool, allow_timestamps: bool) -> Table {
    let n_rows = rng.gen_range(1usize..30);
    let n_cols = rng.gen_range(1usize..6);
    let mut cols: Vec<Column> = Vec::new();
    let dtype_kinds = if allow_timestamps { 5u32 } else { 4 };
    for c in 0..n_cols {
        let name = format!("c{c}");
        // Row 0 is always non-null so no column collapses to the all-null
        // `Str` fallback (that case has its own test below).
        let null = |rng: &mut StdRng, i: usize| i > 0 && rng.gen_bool(0.25);
        match rng.gen_range(0u32..dtype_kinds) {
            0 => {
                let v: Vec<Option<i64>> = (0..n_rows)
                    .map(|i| (!null(rng, i)).then(|| rng.gen_range(-1_000_000i64..1_000_000)))
                    .collect();
                cols.push(Column::new(&name, ColumnData::Int(v)));
            }
            1 => {
                let v: Vec<Option<f64>> = (0..n_rows)
                    .map(|i| {
                        if i == 0 {
                            Some(0.5) // guarantees the column infers Float
                        } else {
                            (!null(rng, i)).then(|| rng.gen_range(-1e6..1e6))
                        }
                    })
                    .collect();
                cols.push(Column::new(&name, ColumnData::Float(v)));
            }
            2 => {
                let v: Vec<Option<bool>> = (0..n_rows)
                    .map(|i| (!null(rng, i)).then(|| rng.gen_bool(0.5)))
                    .collect();
                cols.push(Column::new(&name, ColumnData::Bool(v)));
            }
            3 => {
                let v: Vec<Option<String>> = (0..n_rows)
                    .map(|i| (!null(rng, i)).then(|| hostile_string(rng, allow_newlines)))
                    .collect();
                cols.push(Column::new(&name, ColumnData::Str(v)));
            }
            _ => {
                let v: Vec<Option<i64>> = (0..n_rows)
                    .map(|i| (!null(rng, i)).then(|| rng.gen_range(-1_000_000i64..1_000_000)))
                    .collect();
                cols.push(Column::new(&name, ColumnData::Timestamp(v)));
            }
        }
    }
    Table::new("t", cols).unwrap()
}

fn to_csv(table: &Table) -> String {
    let mut buf = Vec::new();
    write_csv(table, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

/// Random tables (all five dtypes — Timestamp included since PR 5 —
/// nulls, hostile strings incl. embedded newlines) round-trip `write_csv`
/// → streaming reader *identically*, at every chunk size.
#[test]
fn random_tables_round_trip_exactly() {
    let mut rng = StdRng::seed_from_u64(0x4a5d);
    for case in 0..40 {
        let table = random_table(&mut rng, true, true);
        let text = to_csv(&table);
        for chunk_size in CHUNK_SIZES {
            let got = read_csv_str_with("t", &text, &CsvReadOptions { chunk_size })
                .unwrap_or_else(|e| panic!("case {case} chunk {chunk_size}: {e}\n{text:?}"));
            assert_eq!(
                got, table,
                "case {case} chunk {chunk_size} round-trip\n{text:?}"
            );
        }
    }
}

/// On seed-parsable inputs (no `@tick` / non-finite tokens — those are
/// typed more precisely now), the streaming reader is bit-identical to
/// the seed parser at every chunk size in {7, 64, 4096, whole-file}.
#[test]
fn streaming_matches_seed_parser_on_every_chunk_size() {
    let mut rng = StdRng::seed_from_u64(0xc0ffee);
    for case in 0..25 {
        let table = random_table(&mut rng, false, false);
        let text = to_csv(&table);
        let seed = seed_read_csv_str("t", &text)
            .unwrap_or_else(|e| panic!("case {case}: seed parser choked: {e}\n{text:?}"));
        for chunk_size in CHUNK_SIZES {
            let got = read_csv_str_with("t", &text, &CsvReadOptions { chunk_size }).unwrap();
            assert_eq!(got, seed, "case {case} chunk {chunk_size}\n{text:?}");
        }
    }
}

/// Hand-written fixtures covering the seed parser's quirks (lenient
/// mid-field quotes, trailing `\r` stripping at EOF, width-1 blank lines,
/// missing trailing newline) stay bit-identical too.
#[test]
fn streaming_matches_seed_parser_on_quirk_fixtures() {
    let fixtures = [
        "a,b\n1,2\n3,4\n",
        "a,b\n1,2\n3,4", // no trailing newline
        "x\n1\n\n2\n",   // width-1 blank line = null (both parsers)
        "a,b\r\n1,x\r\n2,y\r\n",
        "s\nab\"cd,e\"f\n",   // lenient mid-field quotes
        "s\n\"\"\n",          // quoted empty string = null
        "k,v\n1,\n,2\n",      // nulls both sides
        "n\n1\n2.5\n-3\n",    // int widens to float
        "b\ntrue\nFALSE\n",   // bool casings
        "m\n1\nx\n2.5\n",     // mixed to string
        "u,v\nαβ,\"日🦀\"\n", // multi-byte UTF-8
        "t\n@x5\n@\n",        // `@` tokens that are NOT `@<i64>` stay strings
        "a,b\n\"x,y\",\"q\"\"q\"\n",
        "pad\n 1\n",     // leading space defeats int parse in both
        "a,b\n1,2\n\r",  // lone \r tail = popped trailing empty line
        "a,b\n1,2\r",    // \r tail with content = stripped record
        "e\n1e3\n2.5\n", // exponent floats
    ];
    for text in fixtures {
        let seed = seed_read_csv_str("t", text).unwrap();
        for chunk_size in CHUNK_SIZES {
            let got = read_csv_str_with("t", text, &CsvReadOptions { chunk_size }).unwrap();
            assert_eq!(got, seed, "fixture {text:?} chunk {chunk_size}");
        }
    }
}

/// Error cases agree with the seed parser on its own domain: same ragged
/// row reported, same empty-input/header errors.
#[test]
fn streaming_matches_seed_parser_errors() {
    let fixtures = ["a,b\n1\n", "", "\n", "  \nx\n", "a,b\n1,2\n1,2,3\n"];
    for text in fixtures {
        let seed = seed_read_csv_str("t", text).unwrap_err();
        let got = read_csv_str("t", text).unwrap_err();
        assert_eq!(got.to_string(), seed.to_string(), "fixture {text:?}");
    }
}

/// An all-null column falls back to `Str` storage in both parsers.
#[test]
fn all_null_column_matches_seed_fallback() {
    let text = "k,empty\n1,\n2,\n";
    let seed = seed_read_csv_str("t", text).unwrap();
    let got = read_csv_str("t", text).unwrap();
    assert_eq!(got, seed);
    assert_eq!(
        got.column("empty").unwrap().data(),
        &ColumnData::Str(vec![None, None])
    );
}

/// Parsing is bit-identical across work budgets {1, 2, 8}: block layout
/// derives from `chunk_size` alone, and per-block results merge in block
/// order regardless of how many workers the pool grants.
#[test]
fn ingestion_identical_across_budgets() {
    let restore = arda_par::default_threads();
    let mut rng = StdRng::seed_from_u64(0xbadc0de);
    let texts: Vec<String> = (0..6)
        .map(|_| to_csv(&random_table(&mut rng, true, true)))
        .collect();
    for text in &texts {
        let mut reference: Option<Table> = None;
        for budget in [1usize, 2, 8] {
            arda_par::set_default_threads(budget);
            let got = read_csv_str_with(
                "t",
                text,
                &CsvReadOptions {
                    chunk_size: 64, // small chunks → many blocks → real fan-out
                },
            )
            .unwrap();
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(&got, r, "budget {budget}\n{text:?}"),
            }
        }
    }
    arda_par::set_default_threads(restore);
}
