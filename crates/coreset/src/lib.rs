//! # arda-coreset
//!
//! Coreset constructions (ARDA §3.1): replace a large base table with a
//! small, representative set of rows before joining and feature selection.
//!
//! Three constructions from the paper:
//!
//! * **Uniform sampling** ([`uniform_indices`]) — cheap, data-oblivious.
//! * **Stratified sampling** ([`stratified_indices`]) — proportional per
//!   class, so no label is overlooked.
//! * **Sketching** ([`sketch_xy`]) — an OSNAP subspace embedding applied
//!   *after* the join (sketching takes linear combinations of rows, so it
//!   cannot run before joins without corrupting key columns; §3.1). For
//!   classification the rows of each label are sketched independently,
//!   "analogous to stratified sampling".
//!
//! [`CoresetSpec`] bundles a method + size; [`row_coreset`] applies the
//! sampling methods to any row count.

use arda_linalg::{Matrix, Osnap};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Which coreset construction to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoresetMethod {
    /// Uniform row sampling without replacement (the ARDA default).
    Uniform,
    /// Label-stratified sampling (classification) with proportional
    /// allocation; falls back to uniform when no labels are given.
    Stratified,
    /// OSNAP sketch applied to the featurized matrix after joining.
    Sketch,
}

/// A coreset request: method plus target size (`None` → auto heuristic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoresetSpec {
    /// Construction method.
    pub method: CoresetMethod,
    /// Target number of rows (`None` → [`auto_size`]).
    pub size: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CoresetSpec {
    fn default() -> Self {
        CoresetSpec {
            method: CoresetMethod::Uniform,
            size: None,
            seed: 0,
        }
    }
}

impl CoresetSpec {
    /// Resolve the target size for `n` rows.
    pub fn resolve_size(&self, n: usize) -> usize {
        self.size
            .unwrap_or_else(|| auto_size(n))
            .min(n)
            .max(1.min(n))
    }
}

/// ARDA's "simple heuristic" for automatic coreset sizing: keep small tables
/// whole, cap large ones at 2 000 rows (large enough for stable feature
/// selection, small enough to keep repeated model fits cheap).
pub fn auto_size(n_rows: usize) -> usize {
    n_rows.min(2_000)
}

/// Uniformly sample `size` distinct row indices from `0..n` (sorted).
pub fn uniform_indices(n: usize, size: usize, seed: u64) -> Vec<usize> {
    let size = size.min(n);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    idx.truncate(size);
    idx.sort_unstable();
    idx
}

/// Stratified sampling: allocate `size` slots across label strata
/// proportionally (each non-empty stratum gets at least one slot), then
/// sample uniformly within each stratum. Indices are sorted.
pub fn stratified_indices(labels: &[f64], size: usize, seed: u64) -> Vec<usize> {
    let n = labels.len();
    let size = size.min(n);
    if size == 0 {
        return Vec::new();
    }
    // BTreeMap for deterministic stratum ordering.
    let mut strata: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
    for (i, &y) in labels.iter().enumerate() {
        strata.entry(y as i64).or_default().push(i);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<usize> = Vec::with_capacity(size);

    // Proportional allocation with floor, then distribute the remainder to
    // the largest fractional parts.
    let mut allocations: Vec<(i64, usize, f64)> = strata
        .iter()
        .map(|(&label, rows)| {
            let exact = size as f64 * rows.len() as f64 / n as f64;
            (
                label,
                (exact.floor() as usize).max(1).min(rows.len()),
                exact - exact.floor(),
            )
        })
        .collect();
    let mut used: usize = allocations.iter().map(|a| a.1).sum();
    // Give remaining slots to strata with capacity, largest fraction first.
    allocations.sort_by(|a, b| b.2.total_cmp(&a.2));
    let mut i = 0;
    let n_alloc = allocations.len();
    while used < size && n_alloc > 0 {
        let slot = i % n_alloc;
        let cap = strata[&allocations[slot].0].len();
        if allocations[slot].1 < cap {
            allocations[slot].1 += 1;
            used += 1;
        }
        i += 1;
        if i > n_alloc * (size + 1) {
            break; // every stratum saturated
        }
    }
    // Trim overshoot (possible when `max(1)` floors exceeded `size`).
    allocations.sort_by_key(|a| std::cmp::Reverse(a.1));
    while used > size {
        if let Some(a) = allocations.iter_mut().find(|a| a.1 > 1) {
            a.1 -= 1;
            used -= 1;
        } else {
            break;
        }
    }

    for (label, alloc, _) in allocations {
        let mut rows = strata[&label].clone();
        rows.shuffle(&mut rng);
        out.extend(rows.into_iter().take(alloc));
    }
    out.sort_unstable();
    out
}

/// Dispatch the row-sampling methods of a [`CoresetSpec`]. `labels` enables
/// stratification; sketching is not a row sampler — use [`sketch_xy`].
pub fn row_coreset(n: usize, labels: Option<&[f64]>, spec: &CoresetSpec) -> Vec<usize> {
    let size = spec.resolve_size(n);
    match (spec.method, labels) {
        (CoresetMethod::Stratified, Some(y)) => stratified_indices(y, size, spec.seed),
        // Sketch is a post-join construction; as a *row* coreset it
        // degrades to uniform (documented behaviour).
        _ => uniform_indices(n, size, spec.seed),
    }
}

/// Sketch a featurized dataset down to `target_rows` rows with OSNAP.
///
/// * Regression: one sketch is applied jointly to `x` and `y`, preserving
///   the regression subspace (`‖Π(Xw − y)‖ ≈ ‖Xw − y‖`).
/// * Classification: rows of each class are sketched independently and the
///   class label is retained for the sketched rows (§3.1: "ARDA sketch rows
///   independently within each label, analogous to stratified sampling").
pub fn sketch_xy(
    x: &Matrix,
    y: &[f64],
    is_classification: bool,
    target_rows: usize,
    seed: u64,
) -> (Matrix, Vec<f64>) {
    assert_eq!(x.rows(), y.len(), "sketch_xy: rows vs labels");
    let n = x.rows();
    let target_rows = target_rows.clamp(1, n.max(1));
    if n == 0 || target_rows >= n {
        return (x.clone(), y.to_vec());
    }

    if !is_classification {
        let os = Osnap::new(n, target_rows, seed);
        return (os.apply(x), os.apply_vec(y));
    }

    // Per-label sketching with proportional row budgets.
    let mut strata: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
    for (i, &label) in y.iter().enumerate() {
        strata.entry(label as i64).or_default().push(i);
    }
    let mut out_x: Option<Matrix> = None;
    let mut out_y: Vec<f64> = Vec::with_capacity(target_rows);
    for (stratum_no, (label, rows)) in strata.iter().enumerate() {
        let share = ((target_rows as f64 * rows.len() as f64 / n as f64).round() as usize)
            .clamp(1, rows.len());
        let sub = x.select_rows(rows).expect("stratum rows in bounds");
        let os = Osnap::new(rows.len(), share, seed.wrapping_add(stratum_no as u64));
        let sk = os.apply(&sub);
        out_y.extend(std::iter::repeat_n(*label as f64, sk.rows()));
        out_x = Some(match out_x {
            None => sk,
            Some(acc) => {
                let mut rows_acc: Vec<Vec<f64>> =
                    (0..acc.rows()).map(|r| acc.row(r).to_vec()).collect();
                rows_acc.extend((0..sk.rows()).map(|r| sk.row(r).to_vec()));
                Matrix::from_rows(&rows_acc).expect("rectangular")
            }
        });
    }
    (out_x.expect("at least one stratum"), out_y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_returns_distinct_sorted() {
        let idx = uniform_indices(100, 10, 0);
        assert_eq!(idx.len(), 10);
        let mut dedup = idx.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "indices must be distinct");
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(idx.iter().all(|&i| i < 100));
    }

    #[test]
    fn uniform_caps_at_n() {
        assert_eq!(uniform_indices(5, 99, 0).len(), 5);
        assert!(uniform_indices(0, 3, 0).is_empty());
    }

    #[test]
    fn stratified_keeps_rare_labels() {
        // 95 of class 0, 5 of class 1: a 10-row uniform sample often misses
        // class 1, stratified never does.
        let labels: Vec<f64> = (0..100).map(|i| if i < 95 { 0.0 } else { 1.0 }).collect();
        let idx = stratified_indices(&labels, 10, 3);
        assert_eq!(idx.len(), 10);
        assert!(
            idx.iter().any(|&i| labels[i] == 1.0),
            "rare class must be represented"
        );
    }

    #[test]
    fn stratified_proportional_allocation() {
        let labels: Vec<f64> = (0..100).map(|i| if i < 80 { 0.0 } else { 1.0 }).collect();
        let idx = stratified_indices(&labels, 20, 0);
        let c1 = idx.iter().filter(|&&i| labels[i] == 1.0).count();
        assert!(
            (3..=5).contains(&c1),
            "≈20% of sample from class 1, got {c1}"
        );
    }

    #[test]
    fn stratified_handles_size_exceeding_n() {
        let labels = vec![0.0, 1.0, 1.0];
        let idx = stratified_indices(&labels, 50, 0);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn row_coreset_dispatch() {
        let labels: Vec<f64> = (0..50).map(|i| (i % 2) as f64).collect();
        let spec = CoresetSpec {
            method: CoresetMethod::Stratified,
            size: Some(10),
            seed: 0,
        };
        let idx = row_coreset(50, Some(&labels), &spec);
        assert_eq!(idx.len(), 10);
        let spec_u = CoresetSpec {
            method: CoresetMethod::Uniform,
            size: Some(10),
            seed: 0,
        };
        assert_eq!(row_coreset(50, None, &spec_u).len(), 10);
        // Sketch as row sampler degrades to uniform.
        let spec_s = CoresetSpec {
            method: CoresetMethod::Sketch,
            size: Some(10),
            seed: 0,
        };
        assert_eq!(row_coreset(50, None, &spec_s).len(), 10);
    }

    #[test]
    fn auto_size_caps() {
        assert_eq!(auto_size(100), 100);
        assert_eq!(auto_size(1_000_000), 2_000);
        let spec = CoresetSpec::default();
        assert_eq!(spec.resolve_size(500), 500);
        assert_eq!(spec.resolve_size(10_000), 2_000);
    }

    #[test]
    fn sketch_regression_shrinks_rows() {
        let x = Matrix::from_rows(
            &(0..100)
                .map(|i| vec![i as f64, (i * i) as f64])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let y: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let (sx, sy) = sketch_xy(&x, &y, false, 20, 0);
        assert_eq!(sx.rows(), 20);
        assert_eq!(sy.len(), 20);
        assert_eq!(sx.cols(), 2);
    }

    #[test]
    fn sketch_classification_preserves_labels_per_stratum() {
        let x = Matrix::from_rows(&(0..60).map(|i| vec![i as f64]).collect::<Vec<_>>()).unwrap();
        let y: Vec<f64> = (0..60).map(|i| (i % 3) as f64).collect();
        let (sx, sy) = sketch_xy(&x, &y, true, 15, 0);
        assert_eq!(sx.rows(), sy.len());
        for c in [0.0, 1.0, 2.0] {
            assert!(sy.contains(&c), "class {c} must survive sketching");
        }
    }

    #[test]
    fn sketch_noop_when_target_not_smaller() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let y = vec![0.0, 1.0];
        let (sx, sy) = sketch_xy(&x, &y, false, 10, 0);
        assert_eq!(sx, x);
        assert_eq!(sy, y);
    }

    #[test]
    fn sketch_preserves_least_squares_solution_approximately() {
        // y = 3x exactly: the sketched regression must recover w ≈ 3.
        let x = Matrix::from_rows(&(1..=200).map(|i| vec![i as f64 / 10.0]).collect::<Vec<_>>())
            .unwrap();
        let y: Vec<f64> = (1..=200).map(|i| 3.0 * i as f64 / 10.0).collect();
        let (sx, sy) = sketch_xy(&x, &y, false, 50, 1);
        // Solve 1-d least squares on the sketch.
        let num: f64 = (0..sx.rows()).map(|r| sx.get(r, 0) * sy[r]).sum();
        let den: f64 = (0..sx.rows()).map(|r| sx.get(r, 0) * sx.get(r, 0)).sum();
        let w = num / den;
        assert!((w - 3.0).abs() < 1e-9, "sketched LS solution {w}");
    }

    #[test]
    fn stratified_deterministic_per_seed() {
        let labels: Vec<f64> = (0..40).map(|i| (i % 2) as f64).collect();
        assert_eq!(
            stratified_indices(&labels, 8, 5),
            stratified_indices(&labels, 8, 5)
        );
    }
}
