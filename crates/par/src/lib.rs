//! # arda-par
//!
//! The workspace-wide parallel execution substrate. Every hot path in the
//! ARDA reproduction — blocked matrix kernels (`arda-linalg`), forest and
//! k-NN fitting (`arda-ml`), RIFS ensemble rounds and the τ-threshold sweep
//! (`arda-select`), soft-join row matching and group-by pre-aggregation
//! (`arda-join` / `arda-table`), join discovery (`arda-discovery`) and
//! join-plan batches (`arda-core`) — funnels through the primitives in this
//! crate instead of hand-rolling threads.
//!
//! ## The work-budget model
//!
//! ARDA's stages are embarrassingly parallel at several nesting levels at
//! once: RIFS injection rounds × forest fits × blocked linalg kernels, or
//! batch joins × per-row soft-join scans. Letting every level spawn its own
//! full complement of workers oversubscribes the machine; pinning inner
//! levels to one worker (the pre-budget approach) starves them whenever the
//! outer level happens to be narrow.
//!
//! A [`Budget`] solves both ends. It combines
//!
//! * a **permit pool** shared by the whole process: the global pool holds
//!   `default_threads() - 1` *spawn permits* (the calling thread is always
//!   the `+1`). A primitive may only spawn a worker while it holds a
//!   [`Permit`]; permits are RAII guards, so a worker that panics or exits
//!   early returns its permit immediately. Total live workers therefore
//!   never exceed the budget, at any nesting depth.
//! * a **nominal width**: the share of the machine this stage should *plan*
//!   for. Chunk layout is computed from the width alone — never from how
//!   many permits were actually granted — so a run that finds the pool
//!   drained produces chunk-for-chunk the same work decomposition (and
//!   bit-identical output) as one that got every permit.
//!
//! [`Budget::split(n)`] derives the width a stage should hand each of its
//! `n` concurrent children (`max(1, width / n)`); the children share the
//! parent's pool, so splitting never mints new permits. The budget-aware
//! primitives do this automatically: a worker executing the body of
//! [`par_map`] sees an *ambient* budget of `width / slots` via
//! [`current_budget`], which every nested `threads = 0` call picks up. The
//! practical consequence for consumers:
//!
//! * pass `threads = 0` everywhere and nesting just works — an 8-wide
//!   budget fanned over 4 RIFS rounds gives each round's forest fit a
//!   2-wide budget, while a lone join in a batch keeps all 8;
//! * call [`Budget::split`] / [`par_map_budget`] directly only when a stage
//!   wants a *different* shape than "even split over my items";
//! * never pin inner stages to 1 worker "to be safe" — the pool already
//!   guarantees no oversubscription, and the pin wastes budget when the
//!   outer fan-out is narrow.
//!
//! ## Design
//!
//! * **Dependency-free.** Built only on [`std::thread::scope`]; workers are
//!   spawned per call and joined before the call returns, so there is no
//!   pool state beyond three atomics, no channels and nothing to shut down.
//! * **Deterministic ordering.** Inputs are split into *contiguous, ordered
//!   chunks*; chunk boundaries depend only on the budget's nominal width.
//!   Workers pull whole chunks from a shared cursor and results are
//!   stitched back together in chunk order. A caller therefore observes the
//!   exact same output `Vec` (bit-for-bit, including floating-point
//!   accumulation order within an element) no matter how many workers ran.
//!   All parallel call sites in the workspace are written so that
//!   *per-element* work is independent, which makes "parallel output ==
//!   sequential output" an invariant the test suite asserts across budgets
//!   {1, 2, 3, 8} (`tests/budget_determinism.rs`) and thread counts
//!   {1, 2, 8} (`tests/par_determinism.rs`).
//! * **One knob.** The global budget size is read **once** from the
//!   `ARDA_THREADS` environment variable (falling back to
//!   [`std::thread::available_parallelism`]); every API takes a `threads`
//!   argument where `0` means "use the ambient budget". Benchmarks and
//!   tests that need to pin a size in-process use [`set_default_threads`]
//!   or pass an explicit count (which overrides the planning width but
//!   still cannot out-spawn the pool).
//!
//! ## Choosing a primitive
//!
//! | Shape of work | Primitive |
//! |---|---|
//! | independent items → owned results | [`par_map`] / [`par_map_budget`] |
//! | contiguous row ranges → owned result blocks | [`par_for_rows`] / [`par_for_rows_budget`] |
//! | disjoint in-place writes to one buffer | [`par_chunks_mut`] / [`par_chunks_mut_budget`] |
//!
//! ```
//! let squares = arda_par::par_map(&[1u64, 2, 3, 4], 0, |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // Explicit budgets for tests / custom stage shapes:
//! let budget = arda_par::Budget::isolated(4);
//! let doubled = arda_par::par_map_budget(&[1u64, 2, 3], &budget, |_, &x| x * 2);
//! assert_eq!(doubled, vec![2, 4, 6]);
//! ```

use std::cell::RefCell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Cached global default (0 = not yet initialised).
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// The global budget size: `ARDA_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism. Read once and cached;
/// [`set_default_threads`] overrides it.
pub fn default_threads() -> usize {
    let cached = DEFAULT_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("ARDA_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    // A benign race: concurrent first calls compute the same value.
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
    n
}

/// Override the global budget size for this process (used by the benchmark
/// harness to sweep budgets, and by tests). The global permit pool resizes
/// immediately; permits already granted are honoured until released.
pub fn set_default_threads(n: usize) {
    DEFAULT_THREADS.store(n.max(1), Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Permit pool
// ---------------------------------------------------------------------------

/// A pool of spawn permits. `live` counts *extra* workers currently alive
/// (the calling thread never holds a permit), so the total worker count is
/// bounded by `capacity() + 1 == budget`.
#[derive(Debug)]
struct Pool {
    /// Spawned workers currently live.
    live: AtomicUsize,
    /// High-water mark of `live` since the last counter reset.
    peak: AtomicUsize,
    /// Permits granted since the last counter reset.
    spawns: AtomicUsize,
    /// `Some(n)` = fixed capacity (isolated pools); `None` = track
    /// `default_threads() - 1` dynamically (the global pool).
    fixed: Option<usize>,
}

impl Pool {
    fn new(fixed: Option<usize>) -> Pool {
        Pool {
            live: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            spawns: AtomicUsize::new(0),
            fixed,
        }
    }

    fn capacity(&self) -> usize {
        self.fixed
            .unwrap_or_else(|| default_threads().saturating_sub(1))
    }

    fn try_spawn(self: &Arc<Self>) -> Option<Permit> {
        let cap = self.capacity();
        let mut cur = self.live.load(Ordering::Relaxed);
        loop {
            if cur >= cap {
                return None;
            }
            match self
                .live
                .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.peak.fetch_max(cur + 1, Ordering::AcqRel);
                    self.spawns.fetch_add(1, Ordering::Relaxed);
                    return Some(Permit {
                        pool: Arc::clone(self),
                    });
                }
                Err(observed) => cur = observed,
            }
        }
    }
}

fn global_pool() -> &'static Arc<Pool> {
    static POOL: OnceLock<Arc<Pool>> = OnceLock::new();
    POOL.get_or_init(|| Arc::new(Pool::new(None)))
}

/// RAII guard for one spawned worker. Dropping it — on normal worker exit,
/// early return, or unwind after a panic — returns the permit to the pool.
#[derive(Debug)]
pub struct Permit {
    pool: Arc<Pool>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.pool.live.fetch_sub(1, Ordering::AcqRel);
    }
}

// ---------------------------------------------------------------------------
// Budget
// ---------------------------------------------------------------------------

/// A work budget: a nominal planning `width` plus a handle on the permit
/// pool that actually bounds spawning. See the crate docs for the model.
#[derive(Debug, Clone)]
pub struct Budget {
    pool: Arc<Pool>,
    width: usize,
}

impl Budget {
    /// The process-wide budget: width [`default_threads`], permits from the
    /// global pool.
    pub fn global() -> Budget {
        Budget {
            pool: Arc::clone(global_pool()),
            width: default_threads(),
        }
    }

    /// A budget with its own private permit pool of `width - 1` spawn
    /// permits. For tests and benchmarks that must not share permits with
    /// the rest of the process.
    pub fn isolated(width: usize) -> Budget {
        let width = width.max(1);
        Budget {
            pool: Arc::new(Pool::new(Some(width - 1))),
            width,
        }
    }

    /// Nominal planning width (≥ 1). Chunk layouts derive from this alone.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The budget each of `stages` concurrent children should plan with:
    /// same pool, width `max(1, width / stages)`. Deterministic — it never
    /// looks at pool occupancy.
    pub fn split(&self, stages: usize) -> Budget {
        Budget {
            pool: Arc::clone(&self.pool),
            width: (self.width / stages.max(1)).max(1),
        }
    }

    /// Same pool, explicit width override (≥ 1). Used by the `threads != 0`
    /// escape hatch of the plain primitives.
    pub fn with_width(&self, width: usize) -> Budget {
        Budget {
            pool: Arc::clone(&self.pool),
            width: width.max(1),
        }
    }

    /// Try to reserve one spawn permit. Non-blocking: `None` means the pool
    /// is at capacity and the caller should do the work inline instead.
    pub fn try_spawn(&self) -> Option<Permit> {
        self.pool.try_spawn()
    }

    /// Spawned workers currently live in this budget's pool.
    pub fn live_workers(&self) -> usize {
        self.pool.live.load(Ordering::Acquire)
    }

    /// High-water mark of live spawned workers since the last reset. The
    /// oversubscription invariant is `peak_workers() + 1 <= budget`.
    pub fn peak_workers(&self) -> usize {
        self.pool.peak.load(Ordering::Acquire)
    }

    /// Permits granted since the last reset (instrumentation: proves the
    /// parallel paths actually engaged).
    pub fn total_spawns(&self) -> usize {
        self.pool.spawns.load(Ordering::Acquire)
    }

    /// Reset the `peak` / `spawns` instrumentation counters (peak resets to
    /// the current live count).
    pub fn reset_counters(&self) {
        self.pool
            .peak
            .store(self.pool.live.load(Ordering::Acquire), Ordering::Release);
        self.pool.spawns.store(0, Ordering::Release);
    }
}

/// Spawned workers currently live in the **global** pool.
pub fn live_spawned_workers() -> usize {
    Budget::global().live_workers()
}

/// High-water mark of live spawned workers in the global pool since the
/// last [`reset_spawn_counters`]. Total concurrent workers (spawned +
/// calling thread) never exceed `peak_spawned_workers() + 1`.
pub fn peak_spawned_workers() -> usize {
    Budget::global().peak_workers()
}

/// Global-pool permits granted since the last [`reset_spawn_counters`].
pub fn total_spawned_workers() -> usize {
    Budget::global().total_spawns()
}

/// Reset the global pool's instrumentation counters.
pub fn reset_spawn_counters() {
    Budget::global().reset_counters();
}

// ---------------------------------------------------------------------------
// Ambient budget propagation
// ---------------------------------------------------------------------------

thread_local! {
    static AMBIENT: RefCell<Option<Budget>> = const { RefCell::new(None) };
}

/// The budget ambient on this thread: the split installed by the enclosing
/// budget-aware primitive, or [`Budget::global`] at top level.
pub fn current_budget() -> Budget {
    AMBIENT
        .with(|a| a.borrow().clone())
        .unwrap_or_else(Budget::global)
}

/// Run `f` with `budget` installed as this thread's ambient budget,
/// restoring the previous ambient afterwards (also on unwind).
fn with_ambient<R>(budget: &Budget, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Budget>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            AMBIENT.with(|a| *a.borrow_mut() = prev);
        }
    }
    let prev = AMBIENT.with(|a| a.replace(Some(budget.clone())));
    let _restore = Restore(prev);
    f()
}

/// Resolve a caller-supplied `threads` argument: `0` → the ambient budget's
/// width. Only for callers that need a concrete number (e.g. to derive band
/// sizes); the primitives accept `0` directly.
#[inline]
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        current_budget().width()
    } else {
        requested
    }
}

/// The shared small-input policy for every parallel hot path: an explicit
/// caller request wins; otherwise stay sequential (`1`) when the kernel
/// touches fewer than `min_work` work units (thread spawn would dominate),
/// and defer to the ambient budget (`0`) above that. `min_work` is clamped
/// to at least 1 so `work == 0` can never request a full budget's worth of
/// workers for nothing. The returned value is a `threads` argument for the
/// primitives in this crate.
#[inline]
pub fn threads_for(requested: usize, work: usize, min_work: usize) -> usize {
    if requested != 0 {
        requested
    } else if work < min_work.max(1) {
        1
    } else {
        0
    }
}

/// The budget a plain primitive should run under: the ambient budget, with
/// an explicit non-zero `threads` overriding the planning width.
fn budget_for(threads: usize) -> Budget {
    let ambient = current_budget();
    if threads == 0 {
        ambient
    } else {
        ambient.with_width(threads)
    }
}

// ---------------------------------------------------------------------------
// Budget-aware primitives
// ---------------------------------------------------------------------------

/// Map `f` over `items` under `budget`, returning results in input order.
/// `f` receives the item's index, so callers can derive per-item seeds.
///
/// The items are split into `min(width, len)` contiguous chunks; the caller
/// plus up to `chunks - 1` permitted workers pull whole chunks from a
/// shared cursor and results are stitched back in chunk order, so the
/// output is identical to the sequential `items.iter().enumerate().map(..)`
/// for any budget and any permit availability. Each chunk body runs with
/// the ambient budget set to `budget.split(chunks)`.
pub fn par_map_budget<T, U, F>(items: &[T], budget: &Budget, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let slots = budget.width().min(n).max(1);
    let inner = budget.split(slots);
    let sequential = || {
        with_ambient(&inner, || {
            items.iter().enumerate().map(|(i, t)| f(i, t)).collect()
        })
    };
    if slots <= 1 || n <= 1 {
        return sequential();
    }
    let chunk = n.div_ceil(slots);
    let n_chunks = n.div_ceil(chunk);
    let permits: Vec<Permit> = (1..n_chunks).map_while(|_| budget.try_spawn()).collect();
    if permits.is_empty() {
        return sequential();
    }
    let next = AtomicUsize::new(0);
    // Pull whole chunks until the cursor runs out; chunk boundaries are
    // fixed by `slots`, only the chunk→worker assignment is dynamic.
    let run_chunks = || {
        let mut parts: Vec<(usize, Vec<U>)> = Vec::new();
        loop {
            let ci = next.fetch_add(1, Ordering::Relaxed);
            if ci >= n_chunks {
                return parts;
            }
            let lo = ci * chunk;
            let hi = ((ci + 1) * chunk).min(n);
            parts.push((
                ci,
                items[lo..hi]
                    .iter()
                    .enumerate()
                    .map(|(j, t)| f(lo + j, t))
                    .collect(),
            ));
        }
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = permits
            .into_iter()
            .map(|permit| {
                let run_chunks = &run_chunks;
                let inner = &inner;
                scope.spawn(move || {
                    let _permit = permit;
                    with_ambient(inner, run_chunks)
                })
            })
            .collect();
        let run_chunks = &run_chunks;
        let mut parts = with_ambient(&inner, run_chunks);
        for h in handles {
            parts.extend(h.join().expect("par_map worker panicked"));
        }
        parts.sort_unstable_by_key(|(ci, _)| *ci);
        let mut out = Vec::with_capacity(n);
        for (_, mut p) in parts {
            out.append(&mut p);
        }
        out
    })
}

/// Split `0..n_rows` into `min(width, n_rows)` contiguous ranges under
/// `budget`, run `f` on each range concurrently and concatenate the
/// returned blocks in range order.
///
/// The concatenation order is deterministic for any budget. Output indices
/// line up with row indices only when `f` returns exactly one item per row;
/// callers that filter rows (e.g. the k-NN scan) get the same *sequence* as
/// a sequential scan, not a per-row mapping.
pub fn par_for_rows_budget<U, F>(n_rows: usize, budget: &Budget, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(Range<usize>) -> Vec<U> + Sync,
{
    let slots = budget.width().min(n_rows.max(1)).max(1);
    let inner = budget.split(slots);
    if slots <= 1 {
        return with_ambient(&inner, || f(0..n_rows));
    }
    let chunk = n_rows.div_ceil(slots);
    let n_chunks = n_rows.div_ceil(chunk);
    let permits: Vec<Permit> = (1..n_chunks).map_while(|_| budget.try_spawn()).collect();
    if permits.is_empty() {
        return with_ambient(&inner, || f(0..n_rows));
    }
    let next = AtomicUsize::new(0);
    let run_chunks = || {
        let mut parts: Vec<(usize, Vec<U>)> = Vec::new();
        loop {
            let ci = next.fetch_add(1, Ordering::Relaxed);
            if ci >= n_chunks {
                return parts;
            }
            // Both ends clamp so a trailing chunk gets an empty range
            // (never an inverted one) when `chunk` over-covers `n_rows`.
            let lo = (ci * chunk).min(n_rows);
            let hi = ((ci + 1) * chunk).min(n_rows);
            parts.push((ci, f(lo..hi)));
        }
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = permits
            .into_iter()
            .map(|permit| {
                let run_chunks = &run_chunks;
                let inner = &inner;
                scope.spawn(move || {
                    let _permit = permit;
                    with_ambient(inner, run_chunks)
                })
            })
            .collect();
        let run_chunks = &run_chunks;
        let mut parts = with_ambient(&inner, run_chunks);
        for h in handles {
            parts.extend(h.join().expect("par_for_rows worker panicked"));
        }
        parts.sort_unstable_by_key(|(ci, _)| *ci);
        let mut out = Vec::with_capacity(n_rows);
        for (_, mut p) in parts {
            out.append(&mut p);
        }
        out
    })
}

/// Process disjoint in-place chunks of `data` concurrently under `budget`:
/// the buffer is split into consecutive chunks of `chunk_len` elements (the
/// last may be shorter) and `f(start_offset, chunk)` runs once per chunk.
///
/// Chunk boundaries are fixed by `chunk_len`; whole contiguous spans of
/// chunks are distributed over the caller plus however many workers the
/// pool permits, so outputs (positional, disjoint writes) are identical for
/// any budget. This is the write-side primitive behind the blocked matrix
/// kernels: a row-major output buffer with `chunk_len = row_len ×
/// rows_per_block` gives every worker an exclusive band of output rows.
pub fn par_chunks_mut_budget<T, F>(data: &mut [T], chunk_len: usize, budget: &Budget, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let n_chunks = data.len().div_ceil(chunk_len).max(1);
    let slots = budget.width().min(n_chunks).max(1);
    let inner = budget.split(slots);
    let mut permits: Vec<Permit> = Vec::new();
    if slots > 1 {
        permits.extend((1..slots).map_while(|_| budget.try_spawn()));
    }
    if permits.is_empty() {
        with_ambient(&inner, || {
            for (ci, ch) in data.chunks_mut(chunk_len).enumerate() {
                f(ci * chunk_len, ch);
            }
        });
        return;
    }
    let workers = permits.len() + 1;
    let span = n_chunks.div_ceil(workers) * chunk_len;
    std::thread::scope(|scope| {
        let mut permits = permits.into_iter();
        let mut own: Option<(usize, &mut [T])> = None;
        for (wi, wspan) in data.chunks_mut(span).enumerate() {
            // The caller keeps the first span and processes it below while
            // the permitted workers run the rest.
            if own.is_none() {
                own = Some((wi, wspan));
            } else {
                let permit = permits.next().expect("spans never exceed workers");
                let f = &f;
                let inner = &inner;
                scope.spawn(move || {
                    let _permit = permit;
                    with_ambient(inner, || {
                        for (ci, ch) in wspan.chunks_mut(chunk_len).enumerate() {
                            f(wi * span + ci * chunk_len, ch);
                        }
                    })
                });
            }
        }
        if let Some((wi, wspan)) = own {
            with_ambient(&inner, || {
                for (ci, ch) in wspan.chunks_mut(chunk_len).enumerate() {
                    f(wi * span + ci * chunk_len, ch);
                }
            });
        }
    });
}

// ---------------------------------------------------------------------------
// Plain primitives (ambient budget + explicit-width escape hatch)
// ---------------------------------------------------------------------------

/// Map `f` over `items` on the ambient budget (`threads = 0`) or an
/// explicit planning width, returning results in input order. See
/// [`par_map_budget`].
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_budget(items, &budget_for(threads), f)
}

/// Row-range fan-out on the ambient budget (`threads = 0`) or an explicit
/// planning width. See [`par_for_rows_budget`].
pub fn par_for_rows<U, F>(n_rows: usize, threads: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(Range<usize>) -> Vec<U> + Sync,
{
    par_for_rows_budget(n_rows, &budget_for(threads), f)
}

/// Disjoint in-place chunk processing on the ambient budget (`threads = 0`)
/// or an explicit planning width. See [`par_chunks_mut_budget`].
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_chunks_mut_budget(data, chunk_len, &budget_for(threads), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_across_thread_counts() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_map(&items, threads, |i, &x| {
                assert_eq!(i as u64, x, "index matches item position");
                x * 3 + 1
            });
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_map_edge_cases() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |_, &x| x + 1), vec![8]);
        // More threads than items.
        assert_eq!(par_map(&[1u32, 2], 16, |_, &x| x), vec![1, 2]);
    }

    #[test]
    fn par_for_rows_concatenates_in_range_order() {
        for threads in [1, 2, 5, 8] {
            let out = par_for_rows(103, threads, |range| range.collect::<Vec<usize>>());
            assert_eq!(out, (0..103).collect::<Vec<_>>(), "threads={threads}");
        }
        assert!(par_for_rows(0, 4, |r| r.collect::<Vec<usize>>()).is_empty());
    }

    #[test]
    fn par_for_rows_never_hands_out_inverted_ranges() {
        // 5 rows over 4 workers: chunk = 2, the last chunk's span starts
        // past n_rows and must clamp to an empty range, not 6..5.
        let out = par_for_rows(5, 4, |range| {
            assert!(range.start <= range.end, "inverted range {range:?}");
            let v: Vec<usize> = (range.start..range.end).collect();
            // Slicing with the range must also be safe.
            let data = [0usize, 1, 2, 3, 4];
            assert_eq!(&data[range], v.as_slice());
            v
        });
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn par_chunks_mut_covers_every_chunk_once() {
        for threads in [1, 2, 3, 8] {
            let mut data = vec![0usize; 97];
            par_chunks_mut(&mut data, 10, threads, |start, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = start + i;
                }
            });
            let expected: Vec<usize> = (0..97).collect();
            assert_eq!(data, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_mut_chunk_longer_than_data() {
        let mut data = vec![1u8; 5];
        par_chunks_mut(&mut data, 100, 4, |start, chunk| {
            assert_eq!(start, 0);
            for v in chunk.iter_mut() {
                *v = 2;
            }
        });
        assert_eq!(data, vec![2; 5]);
    }

    #[test]
    fn resolve_and_set_default() {
        set_default_threads(3);
        assert_eq!(resolve_threads(0), 3);
        assert_eq!(resolve_threads(7), 7);
        set_default_threads(0); // clamps to 1
        assert_eq!(resolve_threads(0), 1);
    }

    // ---- Budget unit tests -------------------------------------------------

    #[test]
    fn budget_split_arithmetic() {
        let b = Budget::isolated(8);
        assert_eq!(b.width(), 8);
        assert_eq!(b.split(1).width(), 8);
        assert_eq!(b.split(2).width(), 4);
        assert_eq!(b.split(3).width(), 2);
        assert_eq!(b.split(8).width(), 1);
        assert_eq!(b.split(9).width(), 1, "splits never go below 1");
        assert_eq!(b.split(0).width(), 8, "0 stages clamps to 1");
        // Splits of splits keep dividing and share the pool.
        assert_eq!(b.split(2).split(2).width(), 2);
        assert_eq!(Budget::isolated(0).width(), 1, "zero width clamps to 1");
        assert_eq!(b.with_width(3).width(), 3);
        assert_eq!(b.with_width(0).width(), 1);
    }

    #[test]
    fn permits_are_bounded_and_returned_on_drop() {
        let b = Budget::isolated(3); // 2 spawn permits
        let p1 = b.try_spawn().expect("first permit");
        let p2 = b.try_spawn().expect("second permit");
        assert!(b.try_spawn().is_none(), "pool exhausted at width - 1");
        assert_eq!(b.live_workers(), 2);
        drop(p1);
        assert_eq!(b.live_workers(), 1);
        let p3 = b.try_spawn().expect("permit returned by drop is reusable");
        drop(p2);
        drop(p3);
        assert_eq!(b.live_workers(), 0);
        assert_eq!(b.peak_workers(), 2);
        assert_eq!(b.total_spawns(), 3);
        b.reset_counters();
        assert_eq!(b.peak_workers(), 0);
        assert_eq!(b.total_spawns(), 0);
    }

    #[test]
    fn split_budgets_share_one_pool() {
        let b = Budget::isolated(4); // 3 permits shared by every split
        let child = b.split(2);
        let _p1 = child.try_spawn().unwrap();
        let _p2 = child.try_spawn().unwrap();
        let _p3 = b.try_spawn().unwrap();
        assert!(b.try_spawn().is_none());
        assert!(child.try_spawn().is_none(), "children drain the same pool");
        assert_eq!(b.live_workers(), 3);
    }

    #[test]
    fn zero_and_one_permit_budgets_run_sequentially() {
        for width in [0usize, 1] {
            let b = Budget::isolated(width);
            let out = par_map_budget(&[1u32, 2, 3], &b, |_, &x| x * 10);
            assert_eq!(out, vec![10, 20, 30]);
            assert_eq!(b.total_spawns(), 0, "width {width} must not spawn");
            assert_eq!(b.live_workers(), 0);
        }
    }

    #[test]
    fn permit_returned_when_worker_panics() {
        let b = Budget::isolated(4);
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map_budget(&items, &b, |i, &x| {
                if i == 40 {
                    panic!("boom");
                }
                x
            })
        }));
        assert!(result.is_err(), "worker panic propagates");
        assert_eq!(b.live_workers(), 0, "permits returned after panic unwind");
    }

    #[test]
    fn budget_peak_never_exceeds_width_minus_one() {
        let b = Budget::isolated(4);
        let items: Vec<u64> = (0..256).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for _ in 0..8 {
            assert_eq!(par_map_budget(&items, &b, |_, &x| x * x), expected);
        }
        assert!(b.peak_workers() <= 3, "peak {} > 3", b.peak_workers());
        assert_eq!(b.live_workers(), 0);
    }

    #[test]
    fn nested_calls_inherit_split_ambient_budget() {
        let b = Budget::isolated(8);
        // 2 slots → each item body plans with width 8 / 2 = 4.
        let widths = par_map_budget(&[0u8, 1], &b, |_, _| current_budget().width());
        assert_eq!(widths, vec![4, 4]);
        // A lone item keeps the whole budget.
        let widths = par_map_budget(&[0u8], &b, |_, _| current_budget().width());
        assert_eq!(widths, vec![8]);
        // Nested par_map with threads = 0 picks the ambient split up and
        // splits again; results stay ordered.
        let out = par_map_budget(&[10u64, 20], &b, |_, &base| {
            let inner: Vec<u64> = par_map(&[1u64, 2, 3], 0, |_, &x| base + x);
            inner
        });
        assert_eq!(out, vec![vec![11, 12, 13], vec![21, 22, 23]]);
        assert_eq!(b.live_workers(), 0);
    }

    #[test]
    fn threads_for_clamps_empty_work() {
        // An explicit request always wins.
        assert_eq!(threads_for(5, 0, 0), 5);
        // work = 0 must never defer to the full budget, even with the
        // degenerate min_work = 0 that previously let it through.
        assert_eq!(threads_for(0, 0, 0), 1);
        assert_eq!(threads_for(0, 0, 100), 1);
        // At or above the (clamped) threshold → ambient budget.
        assert_eq!(threads_for(0, 1, 0), 0);
        assert_eq!(threads_for(0, 100, 100), 0);
        assert_eq!(threads_for(0, 99, 100), 1);
    }

    #[test]
    fn threads_for_feeds_budget_planning() {
        let b = Budget::isolated(4);
        with_ambient(&b, || {
            // Small work → sequential regardless of the ambient budget.
            assert_eq!(resolve_threads(threads_for(0, 10, 1000)), 1);
            // Large work → the ambient width.
            assert_eq!(resolve_threads(threads_for(0, 10_000, 1000)), 4);
            // Explicit request passes straight through.
            assert_eq!(resolve_threads(threads_for(2, 10_000, 1000)), 2);
        });
    }

    #[test]
    fn budget_outputs_identical_across_widths_and_split_shapes() {
        let items: Vec<u64> = (0..145).collect();
        let reference: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x * 7 + i as u64)
            .collect();
        for width in [1usize, 2, 3, 8] {
            let b = Budget::isolated(width);
            let got = par_map_budget(&items, &b, |i, &x| x * 7 + i as u64);
            assert_eq!(got, reference, "width={width}");
            for stages in [1usize, 2, 5] {
                let got = par_map_budget(&items, &b.split(stages), |i, &x| x * 7 + i as u64);
                assert_eq!(got, reference, "width={width} split={stages}");
            }
        }
    }

    #[test]
    fn par_for_rows_and_chunks_mut_budget_variants_deterministic() {
        for width in [1usize, 2, 3, 8] {
            let b = Budget::isolated(width);
            let rows = par_for_rows_budget(103, &b, |r| r.collect::<Vec<usize>>());
            assert_eq!(rows, (0..103).collect::<Vec<_>>(), "width={width}");
            let mut data = vec![0usize; 97];
            par_chunks_mut_budget(&mut data, 10, &b, |start, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = start + i;
                }
            });
            assert_eq!(data, (0..97).collect::<Vec<_>>(), "width={width}");
            assert_eq!(b.live_workers(), 0, "width={width}");
        }
    }
}
