//! # arda-par
//!
//! The workspace-wide parallel execution substrate. Every hot path in the
//! ARDA reproduction — blocked matrix kernels (`arda-linalg`), forest and
//! k-NN fitting (`arda-ml`), RIFS ensemble rounds (`arda-select`), soft-join
//! row matching (`arda-join`) and join-plan batches (`arda-core`) — funnels
//! through the three primitives in this crate instead of hand-rolling
//! threads.
//!
//! ## Design
//!
//! * **Dependency-free.** Built only on [`std::thread::scope`]; workers are
//!   spawned per call and joined before the call returns, so there is no
//!   pool state, no channels and nothing to shut down.
//! * **Deterministic ordering.** Inputs are split into *contiguous, ordered
//!   chunks*; each worker owns whole chunks and results are stitched back
//!   together in chunk order. A caller therefore observes the exact same
//!   output `Vec` (bit-for-bit, including floating-point accumulation
//!   order within an element) no matter how many workers ran. All parallel
//!   call sites in the workspace are written so that *per-element* work is
//!   independent, which makes "parallel output == sequential output" an
//!   invariant the test suite asserts across thread counts {1, 2, 8}.
//! * **One knob.** The global default worker count is read **once** from
//!   the `ARDA_THREADS` environment variable (falling back to
//!   [`std::thread::available_parallelism`]); every API takes a `threads`
//!   argument where `0` means "use the global default". Benchmarks and
//!   tests that need to pin a count in-process use
//!   [`set_default_threads`] or pass an explicit count.
//!
//! ## Choosing a primitive
//!
//! | Shape of work | Primitive |
//! |---|---|
//! | independent items → owned results | [`par_map`] |
//! | contiguous row ranges → owned result blocks | [`par_for_rows`] |
//! | disjoint in-place writes to one buffer | [`par_chunks_mut`] |
//!
//! ```
//! let squares = arda_par::par_map(&[1u64, 2, 3, 4], 0, |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Cached global default (0 = not yet initialised).
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// The global default worker count: `ARDA_THREADS` if set to a positive
/// integer, otherwise the machine's available parallelism. Read once and
/// cached; [`set_default_threads`] overrides it.
pub fn default_threads() -> usize {
    let cached = DEFAULT_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("ARDA_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    // A benign race: concurrent first calls compute the same value.
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
    n
}

/// Override the global default worker count for this process (used by the
/// benchmark harness to sweep thread counts, and by tests).
pub fn set_default_threads(n: usize) {
    DEFAULT_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// Resolve a caller-supplied `threads` argument: `0` → global default.
#[inline]
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        default_threads()
    } else {
        requested
    }
}

/// The shared small-input policy for every parallel hot path: an explicit
/// caller request wins; otherwise stay sequential (`1`) when the kernel
/// touches fewer than `min_work` work units (thread spawn would dominate),
/// and defer to the global default (`0`) above that. The returned value is
/// a `threads` argument for the primitives in this crate.
#[inline]
pub fn threads_for(requested: usize, work: usize, min_work: usize) -> usize {
    if requested != 0 {
        requested
    } else if work < min_work {
        1
    } else {
        0
    }
}

/// Map `f` over `items` on up to `threads` workers (`0` = global default),
/// returning results in input order. `f` receives the item's index, so
/// callers can derive per-item seeds.
///
/// Each worker processes one contiguous chunk of items; results are
/// concatenated in chunk order, so the output is identical to the
/// sequential `items.iter().enumerate().map(..)` for any thread count.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = resolve_threads(threads).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, ch)| {
                let f = &f;
                scope.spawn(move || {
                    ch.iter()
                        .enumerate()
                        .map(|(j, t)| f(ci * chunk + j, t))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for h in handles {
            out.extend(h.join().expect("par_map worker panicked"));
        }
        out
    })
}

/// Split `0..n_rows` into up to `threads` contiguous ranges (`0` = global
/// default), run `f` on each range concurrently and concatenate the
/// returned blocks in range order.
///
/// The concatenation order is deterministic for any thread count. Output
/// indices line up with row indices only when `f` returns exactly one item
/// per row; callers that filter rows (e.g. the k-NN scan) get the same
/// *sequence* as a sequential scan, not a per-row mapping.
pub fn par_for_rows<U, F>(n_rows: usize, threads: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(Range<usize>) -> Vec<U> + Sync,
{
    let threads = resolve_threads(threads).min(n_rows.max(1));
    if threads <= 1 {
        return f(0..n_rows);
    }
    let chunk = n_rows.div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let f = &f;
                // Both ends clamp so a trailing worker gets an empty range
                // (never an inverted one) when `chunk` over-covers `n_rows`.
                let lo = (w * chunk).min(n_rows);
                let hi = ((w + 1) * chunk).min(n_rows);
                scope.spawn(move || f(lo..hi))
            })
            .collect();
        let mut out = Vec::with_capacity(n_rows);
        for h in handles {
            out.extend(h.join().expect("par_for_rows worker panicked"));
        }
        out
    })
}

/// Process disjoint in-place chunks of `data` concurrently: the buffer is
/// split into consecutive chunks of `chunk_len` elements (the last may be
/// shorter), whole chunks are distributed over up to `threads` workers
/// (`0` = global default) and `f(start_offset, chunk)` runs once per chunk.
///
/// This is the write-side primitive behind the blocked matrix kernels: a
/// row-major output buffer with `chunk_len = row_len × rows_per_block`
/// gives every worker an exclusive band of output rows.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_len = chunk_len.max(1);
    let n_chunks = data.len().div_ceil(chunk_len).max(1);
    let threads = resolve_threads(threads).min(n_chunks);
    if threads <= 1 {
        for (ci, ch) in data.chunks_mut(chunk_len).enumerate() {
            f(ci * chunk_len, ch);
        }
        return;
    }
    let span = n_chunks.div_ceil(threads) * chunk_len;
    std::thread::scope(|scope| {
        for (wi, wspan) in data.chunks_mut(span).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (ci, ch) in wspan.chunks_mut(chunk_len).enumerate() {
                    f(wi * span + ci * chunk_len, ch);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_across_thread_counts() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = par_map(&items, threads, |i, &x| {
                assert_eq!(i as u64, x, "index matches item position");
                x * 3 + 1
            });
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_map_edge_cases() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |_, &x| x + 1), vec![8]);
        // More threads than items.
        assert_eq!(par_map(&[1u32, 2], 16, |_, &x| x), vec![1, 2]);
    }

    #[test]
    fn par_for_rows_concatenates_in_range_order() {
        for threads in [1, 2, 5, 8] {
            let out = par_for_rows(103, threads, |range| range.collect::<Vec<usize>>());
            assert_eq!(out, (0..103).collect::<Vec<_>>(), "threads={threads}");
        }
        assert!(par_for_rows(0, 4, |r| r.collect::<Vec<usize>>()).is_empty());
    }

    #[test]
    fn par_for_rows_never_hands_out_inverted_ranges() {
        // 5 rows over 4 workers: chunk = 2, the last worker's span starts
        // past n_rows and must clamp to an empty range, not 6..5.
        let out = par_for_rows(5, 4, |range| {
            assert!(range.start <= range.end, "inverted range {range:?}");
            let v: Vec<usize> = (range.start..range.end).collect();
            // Slicing with the range must also be safe.
            let data = [0usize, 1, 2, 3, 4];
            assert_eq!(&data[range], v.as_slice());
            v
        });
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn par_chunks_mut_covers_every_chunk_once() {
        for threads in [1, 2, 3, 8] {
            let mut data = vec![0usize; 97];
            par_chunks_mut(&mut data, 10, threads, |start, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = start + i;
                }
            });
            let expected: Vec<usize> = (0..97).collect();
            assert_eq!(data, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_mut_chunk_longer_than_data() {
        let mut data = vec![1u8; 5];
        par_chunks_mut(&mut data, 100, 4, |start, chunk| {
            assert_eq!(start, 0);
            for v in chunk.iter_mut() {
                *v = 2;
            }
        });
        assert_eq!(data, vec![2; 5]);
    }

    #[test]
    fn resolve_and_set_default() {
        set_default_threads(3);
        assert_eq!(resolve_threads(0), 3);
        assert_eq!(resolve_threads(7), 7);
        set_default_threads(0); // clamps to 1
        assert_eq!(resolve_threads(0), 1);
    }
}
