//! Column statistics: means, variances, covariance, correlation,
//! standardisation.

use crate::Matrix;

/// Mean of each column.
pub fn column_means(m: &Matrix) -> Vec<f64> {
    let n = m.rows().max(1);
    let mut sums = vec![0.0; m.cols()];
    for r in 0..m.rows() {
        for (s, v) in sums.iter_mut().zip(m.row(r)) {
            *s += v;
        }
    }
    sums.iter_mut().for_each(|s| *s /= n as f64);
    sums
}

/// Population variance of each column.
pub fn column_variances(m: &Matrix) -> Vec<f64> {
    let means = column_means(m);
    let n = m.rows().max(1);
    let mut out = vec![0.0; m.cols()];
    for r in 0..m.rows() {
        for ((o, v), mu) in out.iter_mut().zip(m.row(r)).zip(&means) {
            let d = v - mu;
            *o += d * d;
        }
    }
    out.iter_mut().for_each(|o| *o /= n as f64);
    out
}

/// Empirical mean of the *feature vectors* (columns treated as points in
/// `R^rows`), i.e. `µ = (1/d) Σ_i A_{*,i}` — exactly ARDA Algorithm 2 step 1.
pub fn feature_mean(m: &Matrix) -> Vec<f64> {
    let d = m.cols().max(1);
    let mut mu = vec![0.0; m.rows()];
    for r in 0..m.rows() {
        mu[r] = m.row(r).iter().sum::<f64>() / d as f64;
    }
    mu
}

/// Pearson correlation between two equal-length slices (0 when either side
/// is constant).
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson: length mismatch");
    let n = x.len();
    if n == 0 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Z-score standardise columns in place; constant columns are left centred.
/// Returns the (mean, std) pairs used so test data can reuse them.
pub fn standardize_columns(m: &mut Matrix) -> Vec<(f64, f64)> {
    let means = column_means(m);
    let vars = column_variances(m);
    let stds: Vec<f64> = vars.iter().map(|v| v.sqrt()).collect();
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        for ((v, mu), sd) in row.iter_mut().zip(&means).zip(&stds) {
            *v -= mu;
            if *sd > 1e-12 {
                *v /= sd;
            }
        }
    }
    means.into_iter().zip(stds).collect()
}

/// Apply previously computed (mean, std) pairs to new data (e.g. a holdout
/// split) so train and test share one scaling.
pub fn apply_standardization(m: &mut Matrix, params: &[(f64, f64)]) {
    assert_eq!(
        params.len(),
        m.cols(),
        "apply_standardization: column mismatch"
    );
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        for (v, (mu, sd)) in row.iter_mut().zip(params) {
            *v -= mu;
            if *sd > 1e-12 {
                *v /= sd;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_and_variances() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 10.0]]).unwrap();
        assert_eq!(column_means(&m), vec![2.0, 10.0]);
        assert_eq!(column_variances(&m), vec![1.0, 0.0]);
    }

    #[test]
    fn feature_mean_averages_columns() {
        let m = Matrix::from_rows(&[vec![1.0, 3.0], vec![2.0, 6.0]]).unwrap();
        assert_eq!(feature_mean(&m), vec![2.0, 4.0]);
    }

    #[test]
    fn pearson_perfect_and_constant() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![2.0, 4.0, 6.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn standardize_produces_zero_mean_unit_var() {
        let mut m = Matrix::from_rows(&[vec![1.0, 5.0], vec![2.0, 5.0], vec![3.0, 5.0]]).unwrap();
        let params = standardize_columns(&mut m);
        let means = column_means(&m);
        let vars = column_variances(&m);
        assert!(means[0].abs() < 1e-12);
        assert!((vars[0] - 1.0).abs() < 1e-12);
        // Constant column: centred but not scaled.
        assert!(means[1].abs() < 1e-12);
        assert_eq!(vars[1], 0.0);
        assert_eq!(params.len(), 2);
    }

    #[test]
    fn apply_standardization_reuses_params() {
        let mut train = Matrix::from_rows(&[vec![0.0], vec![2.0]]).unwrap();
        let params = standardize_columns(&mut train);
        let mut test = Matrix::from_rows(&[vec![1.0]]).unwrap();
        apply_standardization(&mut test, &params);
        // train mean 1, std 1 → (1-1)/1 = 0.
        assert!(test.get(0, 0).abs() < 1e-12);
    }
}
