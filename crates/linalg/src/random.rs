//! Random sampling: Box–Muller standard normals and the moment-matched
//! multivariate normal of ARDA's Algorithm 2.

use crate::Matrix;
use rand::Rng;

/// One standard-normal draw via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Fill a vector with i.i.d. standard normals.
pub fn normal_vec<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Vec<f64> {
    (0..len).map(|_| standard_normal(rng)).collect()
}

/// Moment-matched multivariate normal sampler — ARDA **Algorithm 2**.
///
/// Given a data matrix `A ∈ R^{n×d}` whose *columns* are feature vectors, fit
/// `N(µ, Σ)` with the empirical feature mean `µ = (1/d) Σ_i A_{*,i}` and
/// covariance `Σ = (1/d) Σ_i (A_{*,i} − µ)(A_{*,i} − µ)ᵀ`, then draw i.i.d.
/// samples. Σ is `n×n` and never materialised: with centred columns
/// `C = A − µ1ᵀ`, the draw `µ + C g / √d` for `g ~ N(0, I_d)` has exactly
/// covariance `(1/d) C Cᵀ = Σ`, so each sample costs `O(nd)`.
#[derive(Debug, Clone)]
pub struct MomentMatchedSampler {
    mu: Vec<f64>,
    /// Centred data, row-major `n×d`.
    centered: Matrix,
    inv_sqrt_d: f64,
}

impl MomentMatchedSampler {
    /// Fit the sampler to the columns of `a` (features as columns).
    pub fn fit(a: &Matrix) -> Self {
        let n = a.rows();
        let d = a.cols().max(1);
        let mu = crate::stats::feature_mean(a);
        let mut centered = a.clone();
        for r in 0..n {
            let m = mu[r];
            for v in centered.row_mut(r) {
                *v -= m;
            }
        }
        MomentMatchedSampler {
            mu,
            centered,
            inv_sqrt_d: 1.0 / (d as f64).sqrt(),
        }
    }

    /// Dimension of each sample (= number of rows of the fitted data).
    pub fn dim(&self) -> usize {
        self.mu.len()
    }

    /// The fitted empirical mean µ.
    pub fn mean(&self) -> &[f64] {
        &self.mu
    }

    /// Draw one sample from `N(µ, Σ)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let g = normal_vec(rng, self.centered.cols());
        let mut out = self.mu.clone();
        for (r, o) in out.iter_mut().enumerate() {
            let dot: f64 = self
                .centered
                .row(r)
                .iter()
                .zip(&g)
                .map(|(a, b)| a * b)
                .sum();
            *o += dot * self.inv_sqrt_d;
        }
        out
    }

    /// Draw `k` samples as the columns of an `n×k` matrix (ready to append to
    /// a feature matrix as injected random features).
    pub fn sample_columns<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Matrix {
        let n = self.dim();
        let mut out = Matrix::zeros(n, k);
        for c in 0..k {
            let s = self.sample(rng);
            for (r, v) in s.into_iter().enumerate() {
                out.set(r, c, v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let xs = normal_vec(&mut rng, n);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn sampler_matches_mean() {
        // 3 rows (sample dim), 4 feature columns.
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0, 4.0],
            vec![10.0, 10.0, 10.0, 10.0],
            vec![-1.0, 1.0, -1.0, 1.0],
        ])
        .unwrap();
        let s = MomentMatchedSampler::fit(&a);
        assert_eq!(s.mean(), &[2.5, 10.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(7);
        let k = 4000;
        let mut sums = [0.0; 3];
        for _ in 0..k {
            for (acc, v) in sums.iter_mut().zip(s.sample(&mut rng)) {
                *acc += v;
            }
        }
        for (acc, mu) in sums.iter().zip(s.mean()) {
            let emp = acc / k as f64;
            assert!((emp - mu).abs() < 0.15, "empirical {emp} vs {mu}");
        }
    }

    #[test]
    fn sampler_matches_covariance_diag() {
        let a = Matrix::from_rows(&[vec![1.0, -1.0, 1.0, -1.0], vec![0.0, 0.0, 0.0, 0.0]]).unwrap();
        // Row 0 centred values ±1 → Σ_00 = 1; row 1 constant → Σ_11 = 0.
        let s = MomentMatchedSampler::fit(&a);
        let mut rng = StdRng::seed_from_u64(3);
        let k = 8000;
        let mut sq = [0.0; 2];
        for _ in 0..k {
            let v = s.sample(&mut rng);
            sq[0] += v[0] * v[0];
            sq[1] += (v[1] - 0.0) * (v[1] - 0.0);
        }
        let var0 = sq[0] / k as f64; // mean is 0 for row 0
        assert!((var0 - 1.0).abs() < 0.1, "var0 {var0}");
        assert!(
            sq[1] / (k as f64) < 1e-20,
            "constant row must stay constant"
        );
    }

    #[test]
    fn sample_columns_shape() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let s = MomentMatchedSampler::fit(&a);
        let mut rng = StdRng::seed_from_u64(1);
        let m = s.sample_columns(&mut rng, 5);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 5);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        let s = MomentMatchedSampler::fit(&a);
        let x1 = s.sample(&mut StdRng::seed_from_u64(9));
        let x2 = s.sample(&mut StdRng::seed_from_u64(9));
        assert_eq!(x1, x2);
    }
}
