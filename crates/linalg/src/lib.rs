//! # arda-linalg
//!
//! Dense linear algebra substrate for the ARDA reproduction.
//!
//! ARDA's feature-selection machinery needs a small set of numeric
//! primitives, all implemented here from scratch:
//!
//! * [`Matrix`] — row-major dense matrix with multiplication, transpose and
//!   slicing helpers.
//! * [`cholesky_solve`] / [`lu_solve`] — SPD and general linear solves used
//!   by ridge regression and the ℓ2,1 IRLS solver.
//! * [`stats`] — column means/variances, covariance and Pearson correlation.
//! * [`random`] — Box–Muller normals and the *moment-matched multivariate
//!   normal sampler* of ARDA's Algorithm 2 (`N(µ, Σ)` with µ, Σ the empirical
//!   feature mean/covariance, sampled implicitly in `O(nd)` per draw without
//!   forming Σ).
//! * [`sketch`] — OSNAP / CountSketch sparse subspace embeddings (§3.1,
//!   Definition 2) used by sketching coresets.

// Numeric kernels below index several arrays with one loop variable;
// iterator rewrites would obscure the math.
#![allow(clippy::needless_range_loop)]

mod matrix;
pub mod random;
pub mod sketch;
mod solve;
pub mod stats;

pub use matrix::Matrix;
pub use random::{standard_normal, MomentMatchedSampler};
pub use sketch::{CountSketch, Osnap};
pub use solve::{cholesky_decompose, cholesky_solve, cholesky_solve_multi, lu_solve};

/// Error type for linear-algebra failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Matrix dimensions incompatible with the requested operation.
    DimensionMismatch { context: String },
    /// Matrix not positive definite (Cholesky) or singular (LU).
    NotSolvable(String),
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            LinalgError::NotSolvable(msg) => write!(f, "not solvable: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
