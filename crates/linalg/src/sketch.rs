//! Sparse subspace-embedding sketches (ARDA §3.1).
//!
//! ARDA's sketching coreset multiplies the (post-join, binarised) data matrix
//! by a sparse random matrix `Π ∈ R^{ℓ×n}` so that `‖ΠAx‖₂ ≈ ‖Ax‖₂` for all
//! `x` — an *oblivious subspace embedding* (Definition 1). Two constructions
//! are provided:
//!
//! * [`CountSketch`] — one ±1 entry per column (OSNAP with sparsity 1),
//!   computable in `nnz(A)` time.
//! * [`Osnap`] — `s = ⌈log₂ n⌉` ±1 entries per column scaled by `1/√s`
//!   (Definition 2), computable in `nnz(A)·s` time.

use crate::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// CountSketch: each input row is hashed to one output row with a random
/// sign.
#[derive(Debug, Clone)]
pub struct CountSketch {
    /// Output rows ℓ.
    pub rows: usize,
    /// target row per input row
    targets: Vec<usize>,
    /// ±1 sign per input row
    signs: Vec<f64>,
}

impl CountSketch {
    /// Sample a sketch mapping `n` input rows to `rows` output rows.
    pub fn new(n: usize, rows: usize, seed: u64) -> Self {
        assert!(rows > 0, "sketch must have at least one row");
        let mut rng = StdRng::seed_from_u64(seed);
        let targets = (0..n).map(|_| rng.gen_range(0..rows)).collect();
        let signs = (0..n)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        CountSketch {
            rows,
            targets,
            signs,
        }
    }

    /// Apply to a matrix: `ΠA` with `A` having one input row per sketch slot.
    pub fn apply(&self, a: &Matrix) -> Matrix {
        assert_eq!(a.rows(), self.targets.len(), "sketch/input row mismatch");
        let mut out = Matrix::zeros(self.rows, a.cols());
        for (i, (&t, &s)) in self.targets.iter().zip(&self.signs).enumerate() {
            let src = a.row(i);
            let dst = out.row_mut(t);
            for (d, v) in dst.iter_mut().zip(src) {
                *d += s * v;
            }
        }
        out
    }

    /// Apply to a target vector `y` (kept aligned with the sketched rows).
    pub fn apply_vec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.targets.len(), "sketch/vector mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, (&t, &s)) in self.targets.iter().zip(&self.signs).enumerate() {
            out[t] += s * y[i];
        }
        out
    }
}

/// OSNAP sketch with `s` non-zeros per column of `Π` (Definition 2): repeat
/// the CountSketch hashing `s` times and scale by `1/√s`.
#[derive(Debug, Clone)]
pub struct Osnap {
    sketches: Vec<CountSketch>,
    scale: f64,
}

impl Osnap {
    /// Sketch with explicit sparsity `s`.
    pub fn with_sparsity(n: usize, rows: usize, s: usize, seed: u64) -> Self {
        let s = s.max(1);
        let sketches = (0..s)
            .map(|i| {
                CountSketch::new(
                    n,
                    rows,
                    seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15),
                )
            })
            .collect();
        Osnap {
            sketches,
            scale: 1.0 / (s as f64).sqrt(),
        }
    }

    /// Paper default: `s = ⌈log₂ n⌉`.
    pub fn new(n: usize, rows: usize, seed: u64) -> Self {
        let s = ((n.max(2) as f64).log2().ceil() as usize).max(1);
        Osnap::with_sparsity(n, rows, s, seed)
    }

    /// Number of output rows.
    pub fn rows(&self) -> usize {
        self.sketches[0].rows
    }

    /// Sparsity (non-zeros per column of Π).
    pub fn sparsity(&self) -> usize {
        self.sketches.len()
    }

    /// Apply to a matrix: `ΠA`.
    pub fn apply(&self, a: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows(), a.cols());
        for sk in &self.sketches {
            let part = sk.apply(a);
            for (o, p) in out.data_mut().iter_mut().zip(part.data()) {
                *o += p;
            }
        }
        out.scale(self.scale);
        out
    }

    /// Apply to a vector.
    pub fn apply_vec(&self, y: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows()];
        for sk in &self.sketches {
            for (o, p) in out.iter_mut().zip(sk.apply_vec(y)) {
                *o += p;
            }
        }
        out.iter_mut().for_each(|o| *o *= self.scale);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| crate::random::standard_normal(&mut rng))
            .collect();
        Matrix::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn count_sketch_shape() {
        let a = random_matrix(100, 4, 0);
        let cs = CountSketch::new(100, 20, 1);
        let b = cs.apply(&a);
        assert_eq!(b.rows(), 20);
        assert_eq!(b.cols(), 4);
    }

    #[test]
    fn count_sketch_preserves_norm_in_expectation() {
        // E‖Πx‖² = ‖x‖² for CountSketch; average over seeds to verify.
        let a = random_matrix(200, 1, 5);
        let true_norm: f64 = a.data().iter().map(|v| v * v).sum();
        let trials = 200;
        let mut acc = 0.0;
        for s in 0..trials {
            let cs = CountSketch::new(200, 50, s);
            let b = cs.apply(&a);
            acc += b.data().iter().map(|v| v * v).sum::<f64>();
        }
        let avg = acc / trials as f64;
        assert!(
            (avg / true_norm - 1.0).abs() < 0.15,
            "ratio {}",
            avg / true_norm
        );
    }

    #[test]
    fn osnap_norm_concentration() {
        // A single OSNAP application should already be close to isometric on
        // a fixed vector with ℓ = 256, s = log n.
        let a = random_matrix(500, 1, 9);
        let true_norm: f64 = a.data().iter().map(|v| v * v).sum();
        let os = Osnap::new(500, 256, 11);
        let b = os.apply(&a);
        let got: f64 = b.data().iter().map(|v| v * v).sum();
        assert!(
            (got / true_norm - 1.0).abs() < 0.5,
            "ratio {}",
            got / true_norm
        );
    }

    #[test]
    fn osnap_linear_consistency() {
        // Π(Ax) == (ΠA)x — sketching commutes with right multiplication.
        let a = random_matrix(60, 3, 2);
        let x = vec![0.3, -0.7, 1.1];
        let os = Osnap::with_sparsity(60, 16, 4, 3);
        let ax = a.matvec(&x).unwrap();
        let left = os.apply_vec(&ax);
        let right = os.apply(&a).matvec(&x).unwrap();
        for (l, r) in left.iter().zip(&right) {
            assert!((l - r).abs() < 1e-10);
        }
    }

    #[test]
    fn osnap_default_sparsity_is_log_n() {
        let os = Osnap::new(1024, 64, 0);
        assert_eq!(os.sparsity(), 10);
        assert_eq!(os.rows(), 64);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_matrix(50, 2, 4);
        let b1 = Osnap::new(50, 10, 77).apply(&a);
        let b2 = Osnap::new(50, 10, 77).apply(&a);
        assert_eq!(b1, b2);
    }
}
