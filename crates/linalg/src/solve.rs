//! Linear solvers: Cholesky for SPD systems (ridge / IRLS normal equations)
//! and LU with partial pivoting for general square systems.

use crate::{LinalgError, Matrix, Result};

/// Cholesky factor `L` (lower triangular) with `A = L Lᵀ`.
///
/// Fails when `A` is not (numerically) positive definite. Callers that add a
/// ridge term `λI` with `λ > 0` are always safe.
pub fn cholesky_decompose(a: &Matrix) -> Result<Matrix> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "cholesky: non-square".into(),
        });
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::NotSolvable(format!(
                        "cholesky: non-positive pivot {sum:.3e} at {i}"
                    )));
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Solve `A x = b` for SPD `A` via Cholesky.
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let l = cholesky_decompose(a)?;
    Ok(cholesky_back_substitute(&l, b))
}

/// Solve `A X = B` for SPD `A` and multiple right-hand sides (columns of
/// `B`). Factorises once.
pub fn cholesky_solve_multi(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.rows() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            context: format!(
                "cholesky_solve_multi: {}x{} vs {} rows",
                a.rows(),
                a.cols(),
                b.rows()
            ),
        });
    }
    let l = cholesky_decompose(a)?;
    let mut out = Matrix::zeros(b.rows(), b.cols());
    for c in 0..b.cols() {
        let col = b.col(c);
        let x = cholesky_back_substitute(&l, &col);
        for (r, v) in x.into_iter().enumerate() {
            out.set(r, c, v);
        }
    }
    Ok(out)
}

fn cholesky_back_substitute(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    // Forward solve L y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l.get(i, k) * y[k];
        }
        y[i] = sum / l.get(i, i);
    }
    // Back solve Lᵀ x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in i + 1..n {
            sum -= l.get(k, i) * x[k];
        }
        x[i] = sum / l.get(i, i);
    }
    x
}

/// Solve `A x = b` for general square `A` via LU with partial pivoting.
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::DimensionMismatch {
            context: "lu_solve: non-square".into(),
        });
    }
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            context: format!("lu_solve: rhs len {} vs {n}", b.len()),
        });
    }
    let mut lu = a.clone();
    let mut rhs = b.to_vec();
    let mut perm: Vec<usize> = (0..n).collect();

    for col in 0..n {
        // Partial pivot.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, lu.get(r, col).abs()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty range");
        if pivot_val < 1e-12 {
            return Err(LinalgError::NotSolvable(format!(
                "lu: singular at column {col}"
            )));
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = lu.get(col, c);
                lu.set(col, c, lu.get(pivot_row, c));
                lu.set(pivot_row, c, tmp);
            }
            rhs.swap(col, pivot_row);
            perm.swap(col, pivot_row);
        }
        for r in col + 1..n {
            let factor = lu.get(r, col) / lu.get(col, col);
            lu.set(r, col, factor);
            for c in col + 1..n {
                let v = lu.get(r, c) - factor * lu.get(col, c);
                lu.set(r, c, v);
            }
            rhs[r] -= factor * rhs[col];
        }
    }

    // Back substitution on U.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = rhs[i];
        for k in i + 1..n {
            sum -= lu.get(i, k) * x[k];
        }
        x[i] = sum / lu.get(i, i);
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = M Mᵀ + I for a random-ish M — guaranteed SPD.
        Matrix::from_rows(&[
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.0],
            vec![0.6, 1.0, 3.0],
        ])
        .unwrap()
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let l = cholesky_decompose(&a).unwrap();
        let back = l.matmul(&l.transpose()).unwrap();
        for (x, y) in a.data().iter().zip(back.data()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn cholesky_solve_matches_residual() {
        let a = spd3();
        let b = vec![1.0, 2.0, 3.0];
        let x = cholesky_solve(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-10);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(cholesky_decompose(&a).is_err());
        let bad = Matrix::zeros(2, 3);
        assert!(cholesky_decompose(&bad).is_err());
    }

    #[test]
    fn multi_rhs_matches_single() {
        let a = spd3();
        let b = Matrix::from_rows(&[vec![1.0, 0.0], vec![2.0, 1.0], vec![3.0, -1.0]]).unwrap();
        let x = cholesky_solve_multi(&a, &b).unwrap();
        let x0 = cholesky_solve(&a, &b.col(0)).unwrap();
        let x1 = cholesky_solve(&a, &b.col(1)).unwrap();
        for i in 0..3 {
            assert!((x.get(i, 0) - x0[i]).abs() < 1e-12);
            assert!((x.get(i, 1) - x1[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn lu_solves_general_system() {
        let a = Matrix::from_rows(&[
            vec![0.0, 2.0, 1.0],
            vec![1.0, -2.0, -3.0],
            vec![-1.0, 1.0, 2.0],
        ])
        .unwrap();
        let b = vec![-8.0, 0.0, 3.0];
        let x = lu_solve(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-10);
        }
    }

    #[test]
    fn lu_rejects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(lu_solve(&a, &[1.0, 2.0]).is_err());
        assert!(lu_solve(&Matrix::zeros(2, 3), &[1.0, 2.0]).is_err());
        assert!(lu_solve(&Matrix::identity(2), &[1.0]).is_err());
    }

    #[test]
    fn lu_agrees_with_cholesky_on_spd() {
        let a = spd3();
        let b = vec![0.5, -1.0, 2.0];
        let x1 = cholesky_solve(&a, &b).unwrap();
        let x2 = lu_solve(&a, &b).unwrap();
        for (l, r) in x1.iter().zip(&x2) {
            assert!((l - r).abs() < 1e-9);
        }
    }
}
