//! Row-major dense matrix.

use crate::{LinalgError, Result};

/// A dense `rows × cols` matrix of `f64` stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                context: format!("from_vec: {} elements for {rows}x{cols}", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Build from nested rows (must be rectangular).
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(LinalgError::DimensionMismatch {
                    context: format!("from_rows: ragged row of {} (expected {c})", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix { rows: r, cols: c, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access (debug-checked).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                context: format!(
                    "matmul: {}x{} * {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous rows.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let other_row = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(other_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                context: format!("matvec: {}x{} * len {}", self.rows, self.cols, v.len()),
            });
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// `selfᵀ * self` (Gram matrix), computed without materialising the
    /// transpose.
    pub fn gram(&self) -> Matrix {
        let d = self.cols;
        let mut out = Matrix::zeros(d, d);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..d {
                let a = row[i];
                if a == 0.0 {
                    continue;
                }
                for j in i..d {
                    let v = a * row[j];
                    out.data[i * d + j] += v;
                }
            }
        }
        for i in 0..d {
            for j in 0..i {
                out.data[i * d + j] = out.data[j * d + i];
            }
        }
        out
    }

    /// Elementwise scale in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Sum of two matrices.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch { context: "add".into() });
        }
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch { context: "sub".into() });
        }
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Ok(Matrix { rows: self.rows, cols: self.cols, data })
    }

    /// Select a subset of columns into a new matrix.
    pub fn select_columns(&self, cols: &[usize]) -> Result<Matrix> {
        if let Some(&bad) = cols.iter().find(|&&c| c >= self.cols) {
            return Err(LinalgError::DimensionMismatch {
                context: format!("select_columns: column {bad} >= {}", self.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, cols.len());
        for r in 0..self.rows {
            let src = self.row(r);
            let dst = out.row_mut(r);
            for (d, &c) in dst.iter_mut().zip(cols) {
                *d = src[c];
            }
        }
        Ok(out)
    }

    /// Select a subset of rows (repeats allowed).
    pub fn select_rows(&self, rows: &[usize]) -> Result<Matrix> {
        if let Some(&bad) = rows.iter().find(|&&r| r >= self.rows) {
            return Err(LinalgError::DimensionMismatch {
                context: format!("select_rows: row {bad} >= {}", self.rows),
            });
        }
        let mut out = Matrix::zeros(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        Ok(out)
    }

    /// Horizontally concatenate two matrices with equal row counts.
    pub fn hcat(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::DimensionMismatch {
                context: format!("hcat: {} vs {} rows", self.rows, other.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        Ok(out)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Euclidean norms of each row.
    pub fn row_norms(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| self.row(r).iter().map(|v| v * v).sum::<f64>().sqrt())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
        assert!(a.matmul(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn gram_equals_explicit() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        for (x, y) in g.data().iter().zip(explicit.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn matvec_works() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn select_columns_and_rows() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let c = a.select_columns(&[2, 0]).unwrap();
        assert_eq!(c.row(0), &[3.0, 1.0]);
        let r = a.select_rows(&[1, 1]).unwrap();
        assert_eq!(r.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(r.rows(), 2);
        assert!(a.select_columns(&[9]).is_err());
        assert!(a.select_rows(&[9]).is_err());
    }

    #[test]
    fn hcat_widths_add() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let h = a.hcat(&b).unwrap();
        assert_eq!(h.cols(), 3);
        assert_eq!(h.row(1), &[2.0, 5.0, 6.0]);
        assert!(a.hcat(&Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.add(&b).unwrap().row(0), &[4.0, 6.0]);
        assert_eq!(b.sub(&a).unwrap().row(0), &[2.0, 2.0]);
        let mut c = a.clone();
        c.scale(2.0);
        assert_eq!(c.row(0), &[2.0, 4.0]);
        assert!(a.add(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0]]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.row_norms(), vec![5.0, 0.0]);
    }
}
