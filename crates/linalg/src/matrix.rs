//! Row-major dense matrix with cache-blocked, parallel hot-path kernels.
//!
//! `matmul`, `gram`, `transpose` and `matvec` split their *output* into
//! contiguous row bands processed concurrently via [`arda_par`]; within a
//! band the loops are blocked for cache reuse. Every kernel accumulates
//! each output element in the same (ascending) order regardless of band
//! size or thread count, so results are **bit-identical** to the sequential
//! naive versions — a property the test suite asserts across random shapes
//! and thread counts.

use crate::{LinalgError, Result};

/// Columns per j-panel in `matmul`: bounds the streamed slice of the
/// right-hand matrix to a few KB so it stays in L1 across the k loop.
const MATMUL_JC: usize = 256;
/// Rows of the right-hand matrix per k-block in `matmul`: with `MATMUL_JC`
/// this keeps the active `B` panel (`KC × JC × 8B` = 256 KiB) around L2.
const MATMUL_KC: usize = 128;
/// Square tile edge for `transpose` (8 KiB per tile pair).
const TRANSPOSE_TILE: usize = 32;
/// Minimum scalar operations before a kernel bothers spawning workers;
/// below this the scoped-thread setup dominates.
const PAR_MIN_OPS: usize = 1 << 15;

/// Worker count for a kernel touching `ops` scalar operations: the shared
/// `arda-par` small-input policy with this crate's op threshold, fully
/// resolved (never the `0` = "global default" placeholder) because the
/// kernels derive their band sizes from it.
#[inline]
fn kernel_threads(requested: usize, ops: usize) -> usize {
    arda_par::resolve_threads(arda_par::threads_for(requested, ops, PAR_MIN_OPS))
}

/// A dense `rows × cols` matrix of `f64` stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                context: format!("from_vec: {} elements for {rows}x{cols}", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Build from nested rows (must be rectangular).
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(LinalgError::DimensionMismatch {
                    context: format!("from_rows: ragged row of {} (expected {c})", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access (debug-checked).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy of column `c` (strided gather over the flat buffer).
    pub fn col(&self, c: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.col_into(c, &mut out);
        out
    }

    /// Gather column `c` into `out` (cleared first), letting callers reuse
    /// one buffer across a column sweep instead of allocating per column.
    pub fn col_into(&self, c: usize, out: &mut Vec<f64>) {
        assert!(
            c < self.cols,
            "col {c} out of range for {} columns",
            self.cols
        );
        out.clear();
        out.reserve(self.rows);
        if self.rows > 0 {
            out.extend(self.data[c..].iter().step_by(self.cols).copied());
        }
    }

    /// Build from per-column buffers (all of length `rows`), scattering
    /// directly into the row-major buffer in parallel row bands. This is
    /// the fast path for columnar sources (featurization) that skips any
    /// per-cell indirection.
    pub fn from_columns(rows: usize, columns: &[Vec<f64>]) -> Result<Matrix> {
        let d = columns.len();
        if let Some(bad) = columns.iter().find(|c| c.len() != rows) {
            return Err(LinalgError::DimensionMismatch {
                context: format!(
                    "from_columns: column of {} values for {rows} rows",
                    bad.len()
                ),
            });
        }
        let mut out = Matrix::zeros(rows, d);
        if d == 0 || rows == 0 {
            return Ok(out);
        }
        let threads = kernel_threads(0, rows * d);
        let band = rows.div_ceil(threads).max(1) * d;
        arda_par::par_chunks_mut(&mut out.data, band, threads, |start, chunk| {
            let r0 = start / d;
            for (local_r, out_row) in chunk.chunks_mut(d).enumerate() {
                let r = r0 + local_r;
                for (o, col) in out_row.iter_mut().zip(columns) {
                    *o = col[r];
                }
            }
        });
        Ok(out)
    }

    /// Transposed copy: tiled to keep both the source and destination
    /// access patterns cache-resident, parallel over output row bands.
    pub fn transpose(&self) -> Matrix {
        self.transpose_threads(0)
    }

    /// [`Matrix::transpose`] with an explicit worker count (`0` = global
    /// default).
    pub fn transpose_threads(&self, threads: usize) -> Matrix {
        let (n, d) = (self.rows, self.cols);
        let mut out = Matrix::zeros(d, n);
        if n == 0 || d == 0 {
            return out;
        }
        let threads = kernel_threads(threads, n * d);
        let src = &self.data;
        let t = TRANSPOSE_TILE;
        // Output rows are input columns; hand each worker a band of them.
        let band_rows = d.div_ceil(threads).max(1).min(t);
        arda_par::par_chunks_mut(&mut out.data, band_rows * n, threads, |start, chunk| {
            let c0 = start / n;
            let c1 = c0 + chunk.len().div_ceil(n.max(1));
            for rr in (0..n).step_by(t) {
                let r_end = (rr + t).min(n);
                for c in c0..c1 {
                    let out_row = &mut chunk[(c - c0) * n..][..n];
                    for r in rr..r_end {
                        out_row[r] = src[r * d + c];
                    }
                }
            }
        });
        out
    }

    /// Matrix product `self * other`: cache-blocked over `k` and `j`,
    /// parallel over output row bands. Bit-identical to the sequential
    /// naive i-k-j product for every thread count because each output
    /// element accumulates its `k` contributions in ascending order.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        self.matmul_threads(other, 0)
    }

    /// [`Matrix::matmul`] with an explicit worker count (`0` = global
    /// default).
    pub fn matmul_threads(&self, other: &Matrix, threads: usize) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                context: format!(
                    "matmul: {}x{} * {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let (n, kd, m) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(n, m);
        if n == 0 || kd == 0 || m == 0 {
            return Ok(out);
        }
        let threads = kernel_threads(threads, n * kd * m);
        let a = &self.data;
        let b = &other.data;
        // One contiguous row band per worker (par_chunks_mut assigns
        // contiguous spans statically, so finer bands would collapse into
        // the same partition); results are band-size-independent.
        let band_rows = n.div_ceil(threads).max(1);
        arda_par::par_chunks_mut(&mut out.data, band_rows * m, threads, |start, chunk| {
            let i0 = start / m;
            let rows_here = chunk.len() / m;
            for kk in (0..kd).step_by(MATMUL_KC) {
                let k_end = (kk + MATMUL_KC).min(kd);
                for jj in (0..m).step_by(MATMUL_JC) {
                    let j_end = (jj + MATMUL_JC).min(m);
                    for li in 0..rows_here {
                        let a_row = &a[(i0 + li) * kd..(i0 + li) * kd + kd];
                        let out_row = &mut chunk[li * m + jj..li * m + j_end];
                        for k in kk..k_end {
                            let av = a_row[k];
                            // One-hot featurized matrices are mostly zeros;
                            // adding an exact 0·x term is a bitwise no-op
                            // for finite x, so skipping keeps bit-identity.
                            if av == 0.0 {
                                continue;
                            }
                            let b_row = &b[k * m + jj..k * m + j_end];
                            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                                *o += av * bv;
                            }
                        }
                    }
                }
            }
        });
        Ok(out)
    }

    /// Matrix-vector product, parallel over output rows.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        self.matvec_threads(v, 0)
    }

    /// [`Matrix::matvec`] with an explicit worker count (`0` = global
    /// default).
    pub fn matvec_threads(&self, v: &[f64], threads: usize) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                context: format!("matvec: {}x{} * len {}", self.rows, self.cols, v.len()),
            });
        }
        let threads = kernel_threads(threads, self.rows * self.cols);
        Ok(arda_par::par_for_rows(self.rows, threads, |range| {
            range
                .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
                .collect()
        }))
    }

    /// `selfᵀ * self` (Gram matrix), computed without materialising the
    /// transpose, parallel over output rows.
    pub fn gram(&self) -> Matrix {
        self.gram_threads(0)
    }

    /// [`Matrix::gram`] with an explicit worker count (`0` = global
    /// default).
    ///
    /// Each worker owns a band of output rows and streams the input once,
    /// accumulating `out[i][j] += x[r][i] · x[r][j]` in ascending `r` for
    /// both triangles. Since IEEE multiplication commutes exactly, the two
    /// triangles come out bitwise symmetric and the result matches the
    /// sequential upper-triangle + mirror oracle bit-for-bit at any thread
    /// count — for *finite* inputs. With `±inf`/`NaN` cells the per-row
    /// zero-skip can produce `0 · inf = NaN` in the lower triangle where
    /// the mirrored oracle skipped it; no workspace data path produces
    /// non-finite features.
    pub fn gram_threads(&self, threads: usize) -> Matrix {
        let (n, d) = (self.rows, self.cols);
        let mut out = Matrix::zeros(d, d);
        if n == 0 || d == 0 {
            return out;
        }
        let threads = kernel_threads(threads, n * d * d / 2);
        let x = &self.data;
        let band_rows = d.div_ceil(threads).max(1);
        arda_par::par_chunks_mut(&mut out.data, band_rows * d, threads, |start, chunk| {
            let i0 = start / d;
            let rows_here = chunk.len() / d;
            for r in 0..n {
                let row = &x[r * d..(r + 1) * d];
                for li in 0..rows_here {
                    let a = row[i0 + li];
                    if a == 0.0 {
                        continue;
                    }
                    let out_row = &mut chunk[li * d..(li + 1) * d];
                    for (o, &v) in out_row.iter_mut().zip(row) {
                        *o += a * v;
                    }
                }
            }
        });
        out
    }

    /// Elementwise scale in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Sum of two matrices.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "add".into(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "sub".into(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Select a subset of columns into a new matrix.
    pub fn select_columns(&self, cols: &[usize]) -> Result<Matrix> {
        if let Some(&bad) = cols.iter().find(|&&c| c >= self.cols) {
            return Err(LinalgError::DimensionMismatch {
                context: format!("select_columns: column {bad} >= {}", self.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, cols.len());
        for r in 0..self.rows {
            let src = self.row(r);
            let dst = out.row_mut(r);
            for (d, &c) in dst.iter_mut().zip(cols) {
                *d = src[c];
            }
        }
        Ok(out)
    }

    /// Select a subset of rows (repeats allowed).
    pub fn select_rows(&self, rows: &[usize]) -> Result<Matrix> {
        if let Some(&bad) = rows.iter().find(|&&r| r >= self.rows) {
            return Err(LinalgError::DimensionMismatch {
                context: format!("select_rows: row {bad} >= {}", self.rows),
            });
        }
        let mut out = Matrix::zeros(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        Ok(out)
    }

    /// Horizontally concatenate two matrices with equal row counts.
    pub fn hcat(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::DimensionMismatch {
                context: format!("hcat: {} vs {} rows", self.rows, other.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        Ok(out)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Euclidean norms of each row.
    pub fn row_norms(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| self.row(r).iter().map(|v| v * v).sum::<f64>().sqrt())
            .collect()
    }
}

/// The original sequential kernels, kept verbatim as correctness oracles
/// for the blocked/parallel versions above.
#[cfg(test)]
impl Matrix {
    pub(crate) fn matmul_naive(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "matmul_naive".into(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous rows.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let other_row = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(other_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    pub(crate) fn transpose_naive(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    pub(crate) fn matvec_naive(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "matvec_naive".into(),
            });
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    pub(crate) fn gram_naive(&self) -> Matrix {
        let d = self.cols;
        let mut out = Matrix::zeros(d, d);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..d {
                let a = row[i];
                if a == 0.0 {
                    continue;
                }
                for j in i..d {
                    let v = a * row[j];
                    out.data[i * d + j] += v;
                }
            }
        }
        for i in 0..d {
            for j in 0..i {
                out.data[i * d + j] = out.data[j * d + i];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![0.0; 3]).is_err());
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
        assert!(a.matmul(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn gram_equals_explicit() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let g = a.gram();
        let explicit = a.transpose().matmul(&a).unwrap();
        for (x, y) in g.data().iter().zip(explicit.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn matvec_works() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn select_columns_and_rows() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let c = a.select_columns(&[2, 0]).unwrap();
        assert_eq!(c.row(0), &[3.0, 1.0]);
        let r = a.select_rows(&[1, 1]).unwrap();
        assert_eq!(r.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(r.rows(), 2);
        assert!(a.select_columns(&[9]).is_err());
        assert!(a.select_rows(&[9]).is_err());
    }

    #[test]
    fn hcat_widths_add() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let h = a.hcat(&b).unwrap();
        assert_eq!(h.cols(), 3);
        assert_eq!(h.row(1), &[2.0, 5.0, 6.0]);
        assert!(a.hcat(&Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.add(&b).unwrap().row(0), &[4.0, 6.0]);
        assert_eq!(b.sub(&a).unwrap().row(0), &[2.0, 2.0]);
        let mut c = a.clone();
        c.scale(2.0);
        assert_eq!(c.row(0), &[2.0, 4.0]);
        assert!(a.add(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0]]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.row_norms(), vec![5.0, 0.0]);
    }

    #[test]
    fn kernel_threads_resolves_the_default_path() {
        // Regression: band sizes derive from this value, so the default
        // path must resolve to the real worker count, never the 0
        // placeholder (which would collapse every kernel to one band).
        arda_par::set_default_threads(6);
        assert_eq!(kernel_threads(0, PAR_MIN_OPS * 2), 6);
        assert_eq!(kernel_threads(0, 10), 1, "small inputs stay sequential");
        assert_eq!(kernel_threads(3, 10), 3, "explicit request wins");
    }

    #[test]
    fn col_into_reuses_buffer() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let mut buf = vec![99.0; 10];
        a.col_into(0, &mut buf);
        assert_eq!(buf, vec![1.0, 3.0, 5.0]);
        a.col_into(1, &mut buf);
        assert_eq!(buf, vec![2.0, 4.0, 6.0]);
        assert!(Matrix::zeros(0, 3).col(1).is_empty());
    }

    #[test]
    fn from_columns_matches_from_rows() {
        let cols = vec![vec![1.0, 3.0, 5.0], vec![2.0, 4.0, 6.0]];
        let m = Matrix::from_columns(3, &cols).unwrap();
        let expect = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        assert_eq!(m, expect);
        assert_eq!(Matrix::from_columns(0, &[]).unwrap().rows(), 0);
        assert!(Matrix::from_columns(2, &[vec![1.0]]).is_err());
    }

    /// Pseudo-random but deterministic fill (no RNG dependency in this
    /// crate's tests).
    fn filled(rows: usize, cols: usize, salt: u64) -> Matrix {
        let mut state = salt.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let data = (0..rows * cols)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if state.is_multiple_of(5) {
                    0.0 // exercise the sparsity skip
                } else {
                    ((state >> 11) as f64 / (1u64 << 53) as f64) * 8.0 - 4.0
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn blocked_kernels_match_naive_oracles_across_shapes_and_threads() {
        // Shapes straddling every block/tile boundary constant.
        let shapes = [
            (1, 1, 1),
            (3, 7, 2),
            (17, 33, 9),
            (40, 130, 70),
            (65, 257, 31),
        ];
        for (si, &(n, k, m)) in shapes.iter().enumerate() {
            let a = filled(n, k, si as u64);
            let b = filled(k, m, si as u64 + 100);
            let v: Vec<f64> = (0..k).map(|i| (i as f64 * 0.37).sin()).collect();
            let mm_oracle = a.matmul_naive(&b).unwrap();
            let t_oracle = a.transpose_naive();
            let g_oracle = a.gram_naive();
            let mv_oracle = a.matvec_naive(&v).unwrap();
            for threads in [1, 2, 8] {
                assert_eq!(
                    a.matmul_threads(&b, threads).unwrap().data(),
                    mm_oracle.data(),
                    "matmul {n}x{k}x{m} threads={threads}"
                );
                assert_eq!(
                    a.transpose_threads(threads).data(),
                    t_oracle.data(),
                    "transpose {n}x{k} threads={threads}"
                );
                assert_eq!(
                    a.gram_threads(threads).data(),
                    g_oracle.data(),
                    "gram {n}x{k} threads={threads}"
                );
                assert_eq!(
                    a.matvec_threads(&v, threads).unwrap(),
                    mv_oracle,
                    "matvec {n}x{k} threads={threads}"
                );
            }
        }
    }
}
