//! Classification augmentation (the School scenario, §7.1): predict school
//! pass/fail where funding and demographics live in repository tables.
//! Compares feature selectors head-to-head on the same augmented search
//! space — a miniature of the paper's Table 1.
//!
//! Run with: `cargo run --release --example school_classification`

use arda::prelude::*;

fn main() {
    let scenario = arda::synth::school(
        &ScenarioConfig {
            n_rows: 400,
            n_decoys: 14,
            seed: 3,
        },
        false,
    );
    let repo = Repository::from_tables(scenario.repository.clone());
    println!(
        "school (S) scenario: {} schools, {} candidate tables; target `{}`\n",
        scenario.base.n_rows(),
        scenario.repository.len(),
        scenario.target,
    );

    let selectors: Vec<(&str, SelectorKind)> = vec![
        (
            "RIFS",
            SelectorKind::Rifs(RifsConfig {
                repeats: 6,
                ..Default::default()
            }),
        ),
        (
            "random forest",
            SelectorKind::Ranking(RankingMethod::RandomForest),
        ),
        (
            "sparse regression",
            SelectorKind::Ranking(RankingMethod::SparseRegression),
        ),
        (
            "mutual info",
            SelectorKind::Ranking(RankingMethod::MutualInfo),
        ),
        ("f-test", SelectorKind::Ranking(RankingMethod::FTest)),
        ("relief", SelectorKind::Ranking(RankingMethod::Relief)),
        ("all features", SelectorKind::AllFeatures),
    ];

    println!(
        "{:<20} {:>10} {:>12} {:>8} {:>8}",
        "selector", "base acc", "augmented", "Δ%", "time(s)"
    );
    for (name, selector) in selectors {
        let config = ArdaConfig {
            selector,
            seed: 3,
            ..Default::default()
        };
        let report = Arda::new(config)
            .run(&scenario.base, &repo, &scenario.target)
            .unwrap();
        println!(
            "{:<20} {:>10.3} {:>12.3} {:>+8.1} {:>8.1}",
            name,
            report.base_score,
            report.augmented_score,
            report.improvement_pct(),
            report.seconds,
        );
    }
}
