//! The paper's motivating scenario (§1): a taxi/collisions base table whose
//! real predictive signal (weather, city events) lives in other repository
//! tables, buried among decoys. Compares no augmentation, all-tables
//! augmentation and ARDA with RIFS, and shows the Tuple-Ratio prefilter.
//!
//! Run with: `cargo run --release --example taxi_weather`

use arda::prelude::*;

fn run(label: &str, config: ArdaConfig, scenario: &Scenario, repo: &Repository) {
    let report = Arda::new(config)
        .run(&scenario.base, repo, &scenario.target)
        .unwrap();
    println!(
        "{label:<28} base {:+.3}  augmented {:+.3}  ({:+.1}%)  joins {}  tr-cut {}  {:.1}s",
        report.base_score,
        report.augmented_score,
        report.improvement_pct(),
        report.joins_executed,
        report.tr_eliminated,
        report.seconds,
    );
    let mut tables: Vec<&str> = report.selected.iter().map(|s| s.table.as_str()).collect();
    tables.sort_unstable();
    tables.dedup();
    println!("{:<28} kept columns from: {:?}", "", tables);
}

fn main() {
    let scenario = arda::synth::taxi(&ScenarioConfig {
        n_rows: 300,
        n_decoys: 15,
        seed: 11,
    });
    let repo = Repository::from_tables(scenario.repository.clone());
    println!(
        "taxi scenario: {} base rows, {} candidate tables ({} relevant)\n",
        scenario.base.n_rows(),
        scenario.repository.len(),
        scenario.relevant_tables.len(),
    );

    // ARDA with RIFS (the paper's configuration).
    run(
        "ARDA (RIFS, budget join)",
        ArdaConfig {
            selector: SelectorKind::Rifs(RifsConfig {
                repeats: 6,
                ..Default::default()
            }),
            ..Default::default()
        },
        &scenario,
        &repo,
    );

    // All features: join everything, no selection (the "all tables" bar of
    // Fig. 3 — can even hurt on noisy repositories).
    run(
        "all tables (no selection)",
        ArdaConfig {
            selector: SelectorKind::AllFeatures,
            join_plan: JoinPlan::FullMaterialization,
            ..Default::default()
        },
        &scenario,
        &repo,
    );

    // Tuple-Ratio prefiltering before RIFS (Table 4): faster, similar score.
    run(
        "ARDA + TR prefilter (τ=5)",
        ArdaConfig {
            selector: SelectorKind::Rifs(RifsConfig {
                repeats: 6,
                ..Default::default()
            }),
            tr_threshold: Some(5.0),
            ..Default::default()
        },
        &scenario,
        &repo,
    );

    // Random-forest ranking + exponential search, a strong cheap baseline.
    run(
        "random-forest ranking",
        ArdaConfig {
            selector: SelectorKind::Ranking(RankingMethod::RandomForest),
            ..Default::default()
        },
        &scenario,
        &repo,
    );
}
