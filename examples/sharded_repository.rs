//! Directory-sharded repository: ARDA over a folder of CSV shards.
//!
//! ARDA's repository is normally fed by a discovery system crawling
//! thousands of tables — far more than fit in memory at once. This example
//! writes a synthetic repository to disk as CSV shards, indexes it with
//! `Repository::from_dir` (a manifest scan that reads only headers), bounds
//! the lazy-load cache to two resident shards, and runs the full pipeline.
//! Shards stream in — chunked, quote-aware, parallel on the work budget —
//! only when discovery or a join batch first touches them, and the LRU
//! bound evicts cold ones as mining moves on.
//!
//! Run with: `cargo run --release --example sharded_repository`

use arda::prelude::*;

fn main() {
    // The School scenario: base table + repository tables (funding,
    // demographics, decoys) with planted signal. Its keys are integers and
    // strings, which round-trip CSV exactly (timestamps would come back as
    // ints — CSV has no timestamp syntax).
    let scenario = arda::synth::school(
        &ScenarioConfig {
            n_rows: 160,
            n_decoys: 4,
            seed: 11,
        },
        false,
    );

    // Write the repository to disk as one CSV shard per table — the form a
    // crawled data lake actually arrives in.
    let dir = std::env::temp_dir().join(format!("arda_sharded_example_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create shard dir");
    for table in &scenario.repository {
        let path = dir.join(format!("{}.csv", table.name()));
        let file = std::fs::File::create(&path).expect("create shard");
        arda::table::write_csv(table, file).expect("write shard");
    }

    // Manifest scan: headers only, nothing parsed yet. Cap residency at 2
    // loaded shards to demonstrate larger-than-memory repositories.
    let repo = Repository::from_dir(&dir)
        .expect("index shards")
        .with_cache_capacity(2);
    println!(
        "indexed {} shard(s) from {} — {} resident before any access",
        repo.len(),
        dir.display(),
        repo.resident_shards()
    );
    for i in 0..repo.len() {
        println!(
            "  shard {i}: {} ({} columns)",
            repo.name(i).unwrap(),
            repo.n_cols(i).unwrap()
        );
    }

    // Full pipeline: discovery lazily streams each shard in as it mines.
    let config = ArdaConfig {
        selector: SelectorKind::Rifs(RifsConfig {
            repeats: 4,
            rf_trees: 10,
            ..Default::default()
        }),
        seed: 11,
        ..Default::default()
    };
    let report = Arda::new(config)
        .run(&scenario.base, &repo, &scenario.target)
        .expect("pipeline");

    println!(
        "base {:.4} → augmented {:.4} ({:+.1}%), {} joins, {} shard(s) resident after run",
        report.base_score,
        report.augmented_score,
        report.improvement_pct(),
        report.joins_executed,
        repo.resident_shards()
    );
    for s in &report.selected {
        println!("  selected {} (from shard {})", s.column, s.table);
    }
    assert!(repo.resident_shards() <= 2, "LRU bound held during the run");

    std::fs::remove_dir_all(&dir).ok();
}
