//! Directory-sharded repository: ARDA over a folder of shards, then the
//! same repository converted to the typed binary store and reloaded
//! through the persistent catalog.
//!
//! ARDA's repository is normally fed by a discovery system crawling
//! thousands of tables — far more than fit in memory at once. This example
//! writes a synthetic repository to disk as CSV shards, indexes it with
//! `Repository::from_dir` (a manifest scan that reads only headers), bounds
//! the lazy-load cache to two resident shards, and runs the full pipeline.
//! Shards stream in — chunked, quote-aware, parallel on the work budget —
//! only when discovery or a join batch first touches them, and the LRU
//! bound evicts cold ones as mining moves on.
//!
//! It then converts the CSV shards to typed binary `.arda` shards with
//! `Repository::save_dir` — dtypes survive exactly, and the written
//! `_catalog.arda` means re-indexing the directory does **zero** header
//! reads — and reruns the pipeline over the binary store, checking the
//! result is bit-identical.
//!
//! Run with: `cargo run --release --example sharded_repository`

use arda::prelude::*;

fn main() {
    // The School scenario: base table + repository tables (funding,
    // demographics, decoys) with planted signal.
    let scenario = arda::synth::school(
        &ScenarioConfig {
            n_rows: 160,
            n_decoys: 4,
            seed: 11,
        },
        false,
    );

    // Write the repository to disk as one CSV shard per table — the form a
    // crawled data lake actually arrives in.
    let dir = std::env::temp_dir().join(format!("arda_sharded_example_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create shard dir");
    for table in &scenario.repository {
        let path = dir.join(format!("{}.csv", table.name()));
        let file = std::fs::File::create(&path).expect("create shard");
        arda::table::write_csv(table, file).expect("write shard");
    }

    // Manifest scan: headers only, nothing parsed yet. Cap residency at 2
    // loaded shards to demonstrate larger-than-memory repositories.
    let repo = Repository::from_dir(&dir)
        .expect("index shards")
        .with_cache_capacity(2);
    println!(
        "indexed {} shard(s) from {} — {} resident before any access",
        repo.len(),
        dir.display(),
        repo.resident_shards()
    );
    for i in 0..repo.len() {
        println!(
            "  shard {i}: {} ({} columns)",
            repo.name(i).unwrap(),
            repo.n_cols(i).unwrap()
        );
    }

    // Full pipeline: discovery lazily streams each shard in as it mines.
    let config = ArdaConfig {
        selector: SelectorKind::Rifs(RifsConfig {
            repeats: 4,
            rf_trees: 10,
            ..Default::default()
        }),
        seed: 11,
        ..Default::default()
    };
    let report = Arda::new(config.clone())
        .run(&scenario.base, &repo, &scenario.target)
        .expect("pipeline");

    println!(
        "base {:.4} → augmented {:.4} ({:+.1}%), {} joins, {} shard(s) resident after run",
        report.base_score,
        report.augmented_score,
        report.improvement_pct(),
        report.joins_executed,
        repo.resident_shards()
    );
    for s in &report.selected {
        println!("  selected {} (from shard {})", s.column, s.table);
    }
    assert!(repo.resident_shards() <= 2, "LRU bound held during the run");

    // ---- Convert to the typed binary store + persistent catalog ---------
    // `save_dir` re-encodes every shard as a `.arda` binary columnar file
    // (all five dtypes survive bit-exactly — timestamps included, which
    // CSV only keeps via `@tick` text) and writes `_catalog.arda`.
    let bin_dir = dir.join("binary");
    repo.save_dir(&bin_dir)
        .expect("convert CSV shards to binary");

    // Re-indexing the converted directory is a pure catalog hit: the
    // manifest (names, widths, dtypes, row counts) loads without opening
    // a single shard.
    let bin_repo = Repository::from_dir(&bin_dir)
        .expect("index binary shards")
        .with_cache_capacity(2);
    println!(
        "reloaded {} binary shard(s) via catalog: hit={}, header reads={}",
        bin_repo.len(),
        bin_repo.catalog_hit(),
        bin_repo.header_scans()
    );
    assert!(bin_repo.catalog_hit(), "catalog satisfied the manifest");
    assert_eq!(bin_repo.header_scans(), 0, "zero per-shard header reads");

    let report_bin = Arda::new(config)
        .run(&scenario.base, &bin_repo, &scenario.target)
        .expect("pipeline over binary store");
    println!(
        "binary store rerun: base {:.4} → augmented {:.4} ({:+.1}%)",
        report_bin.base_score,
        report_bin.augmented_score,
        report_bin.improvement_pct()
    );
    assert_eq!(
        report.augmented_score.to_bits(),
        report_bin.augmented_score.to_bits(),
        "CSV and binary stores drive bit-identical pipelines"
    );

    std::fs::remove_dir_all(&dir).ok();
}
