//! Quickstart: augment a tiny hand-written base table from a two-table
//! repository and inspect what ARDA selected.
//!
//! Run with: `cargo run --release --example quickstart`

use arda::prelude::*;

fn main() {
    // The user's base table: daily ride counts per city, with the target
    // column `rides` to predict. The base features alone are weak.
    let base = Table::new(
        "rides",
        vec![
            Column::from_str(
                "city",
                (0..60)
                    .map(|i| ["boston", "nyc", "chicago"][i % 3])
                    .collect(),
            ),
            Column::from_timestamps("day", (0..60).map(|i| (i as i64 / 3) * 86_400).collect()),
            Column::from_f64(
                "rides",
                (0..60)
                    .map(|i| {
                        let day = (i / 3) as f64;
                        let city_effect = (i % 3) as f64 * 5.0;
                        // Signal actually comes from weather (rain) below.
                        100.0 + city_effect + 20.0 * ((day * 0.7).sin().max(0.0))
                    })
                    .collect(),
            ),
        ],
    )
    .unwrap();

    // Repository: one genuinely useful table (weather, joinable on day) and
    // one decoy with an unrelated key domain.
    let weather = Table::new(
        "weather",
        vec![
            Column::from_timestamps("day", (0..20).map(|d| d * 86_400).collect()),
            Column::from_f64(
                "rain",
                (0..20).map(|d| ((d as f64) * 0.7).sin().max(0.0)).collect(),
            ),
            Column::from_f64("wind", (0..20).map(|d| (d % 7) as f64).collect()),
        ],
    )
    .unwrap();
    let decoy = Table::new(
        "lottery",
        vec![
            Column::from_i64("ticket", (0..30).collect()),
            Column::from_f64("jackpot", (0..30).map(|i| (i * i) as f64).collect()),
        ],
    )
    .unwrap();
    let repo = Repository::from_tables(vec![weather, decoy]);

    // Discover candidate joins (the Aurum/Auctus stand-in).
    let candidates = discover_joins(&base, &repo, &DiscoveryConfig::default()).unwrap();
    println!("discovered {} candidate join(s):", candidates.len());
    for c in &candidates {
        println!(
            "  rides . {} ≈ {} . {}  [{:?}, score {:.2}]",
            c.base_key, c.table_name, c.foreign_key, c.kind, c.score
        );
    }

    // Run the full ARDA pipeline with RIFS feature selection.
    let config = ArdaConfig {
        selector: SelectorKind::Rifs(RifsConfig {
            repeats: 5,
            ..Default::default()
        }),
        ..Default::default()
    };
    let report = Arda::new(config)
        .augment(&base, &repo, &candidates, "rides")
        .unwrap();

    println!("\nbase-table score (R²):      {:+.3}", report.base_score);
    println!("augmented score (R²):       {:+.3}", report.augmented_score);
    println!(
        "improvement:                {:+.1}%",
        report.improvement_pct()
    );
    println!("joins executed:             {}", report.joins_executed);
    println!("selected foreign columns:");
    for s in &report.selected {
        println!("  {} (from {})", s.column, s.table);
    }
    println!("\naugmented table preview:\n{}", report.augmented.head(5));
}
