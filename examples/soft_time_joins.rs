//! Soft time-key joins (§4, Fig. 5 in miniature): the Pickup scenario's
//! hourly base table against 5-minute weather. Compares raw hard join,
//! nearest-neighbour, two-way nearest-neighbour interpolation and
//! time-resampled hard join, reporting the regression error each produces.
//!
//! Run with: `cargo run --release --example soft_time_joins`

use arda::ml::metrics::rmse;
use arda::ml::model::holdout_score;
use arda::prelude::*;

fn evaluate(joined: &Table, target: &str, seed: u64) -> (f64, f64) {
    let (imputed, _) = arda::join::impute::impute(joined, seed).unwrap();
    let ds = featurize(&imputed, target, false, &FeaturizeOptions::default()).unwrap();
    let (train, test) = arda::ml::train_test_split(ds.n_samples(), 0.25, seed);
    let kind = ModelKind::RandomForest {
        n_trees: 48,
        max_depth: 12,
    };
    let r2 = holdout_score(&ds, &kind, &train, &test, seed).unwrap();
    // Also report RMSE for the error view used in Fig. 5.
    let tr = ds.select_rows(&train).unwrap();
    let te = ds.select_rows(&test).unwrap();
    let model = kind.fit(&tr.x, &tr.y, ds.task, seed).unwrap();
    let pred = model.predict(&te.x).unwrap();
    (r2, rmse(&pred, &te.y))
}

fn main() {
    let scenario = arda::synth::pickup(&ScenarioConfig {
        n_rows: 400,
        n_decoys: 0,
        seed: 5,
    });
    let weather = scenario.table("weather_minute").unwrap().clone();
    println!(
        "pickup scenario: hourly base ({} rows) vs 5-minute weather ({} rows)\n",
        scenario.base.n_rows(),
        weather.n_rows(),
    );

    let strategies: Vec<(&str, JoinKind)> = vec![
        ("hard join (raw keys)", JoinKind::Hard),
        (
            "nearest neighbour",
            JoinKind::Soft(SoftMethod::Nearest { tolerance: None }),
        ),
        (
            "2-way nearest (interp.)",
            JoinKind::Soft(SoftMethod::TwoWayNearest),
        ),
        ("time-resampled hard", JoinKind::HardTimeResampled),
        (
            "time-resampled 2-way NN",
            JoinKind::SoftTimeResampled(SoftMethod::TwoWayNearest),
        ),
    ];

    println!(
        "{:<26} {:>10} {:>10} {:>14}",
        "strategy", "R²", "RMSE", "null cells"
    );
    for (name, kind) in strategies {
        let spec = JoinSpec {
            base_keys: vec!["time".into()],
            foreign_keys: vec!["time".into()],
            kind,
        };
        let joined = execute_join(&scenario.base, &weather, &spec, 5).unwrap();
        let nulls = joined.null_count();
        let (r2, err) = evaluate(&joined, &scenario.target, 5);
        println!("{name:<26} {r2:>10.3} {err:>10.3} {nulls:>14}");
    }

    println!("\nBaseline (no weather at all): R² {:.3}", {
        let ds = featurize(
            &scenario.base,
            &scenario.target,
            false,
            &FeaturizeOptions::default(),
        )
        .unwrap();
        let (train, test) = arda::ml::train_test_split(ds.n_samples(), 0.25, 5);
        holdout_score(
            &ds,
            &ModelKind::RandomForest {
                n_trees: 48,
                max_depth: 12,
            },
            &train,
            &test,
            5,
        )
        .unwrap()
    });
}
