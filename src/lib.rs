//! # arda
//!
//! A from-scratch Rust reproduction of **ARDA: Automatic Relational Data
//! Augmentation for Machine Learning** (Chepurko et al., VLDB 2020,
//! arXiv:2003.09758).
//!
//! Given a base table with a prediction target and a repository of candidate
//! tables, ARDA discovers joins, executes them safely (soft time keys,
//! pre-aggregation, imputation), prunes the resulting feature flood with
//! **RIFS** — random-injection feature selection — and returns an augmented
//! dataset that trains a measurably better model.
//!
//! ## Quickstart
//!
//! ```
//! use arda::prelude::*;
//!
//! // A synthetic "taxi" scenario: base table + repository with 2 signal
//! // tables (weather, events) and decoys.
//! let scenario = arda::synth::taxi(&ScenarioConfig { n_rows: 120, n_decoys: 3, seed: 7 });
//! let repo = Repository::from_tables(scenario.repository.clone());
//!
//! // Run the full pipeline with fast settings.
//! let mut config = ArdaConfig::default();
//! config.selector = SelectorKind::Rifs(RifsConfig { repeats: 3, rf_trees: 8, ..Default::default() });
//! let report = Arda::new(config).run(&scenario.base, &repo, &scenario.target).unwrap();
//!
//! assert!(report.augmented_score >= report.base_score - 0.1);
//! println!("base {:.3} → augmented {:.3}", report.base_score, report.augmented_score);
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`table`] | columnar tables, CSV, group-by (`arda-table`) |
//! | [`linalg`] | dense matrix, solvers, MVN sampling, OSNAP sketches |
//! | [`ml`] | trees, forests, linear models, SVMs, metrics, splits |
//! | [`join`] | hard/soft joins, time resampling, imputation |
//! | [`coreset`] | uniform / stratified / sketch coresets |
//! | [`select`] | RIFS + all baseline feature selectors |
//! | [`discovery`] | join-discovery simulator (Aurum/Auctus stand-in) |
//! | [`synth`] | scenario generators with planted ground truth |
//! | [`core`] | the end-to-end pipeline, join plans, AutoML-lite |

pub use arda_core as core;
pub use arda_coreset as coreset;
pub use arda_discovery as discovery;
pub use arda_join as join;
pub use arda_linalg as linalg;
pub use arda_ml as ml;
pub use arda_select as select;
pub use arda_synth as synth;
pub use arda_table as table;

/// Commonly used items in one import.
pub mod prelude {
    pub use arda_core::{automl_search, Arda, ArdaConfig, AugmentationReport, JoinPlan};
    pub use arda_coreset::{CoresetMethod, CoresetSpec};
    pub use arda_discovery::{discover_joins, CandidateJoin, DiscoveryConfig, KeyKind, Repository};
    pub use arda_join::{execute_join, JoinKind, JoinSpec, SoftMethod};
    pub use arda_ml::{featurize, Dataset, FeaturizeOptions, ModelKind, Task};
    pub use arda_select::{
        rank_features, run_selector, RankingMethod, RifsConfig, SelectionContext, SelectorKind,
    };
    pub use arda_synth::{Scenario, ScenarioConfig};
    pub use arda_table::{Column, DataType, Field, Schema, Table, Value};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_align() {
        use crate::prelude::*;
        let t = Table::new("t", vec![Column::from_i64("a", vec![1])]).unwrap();
        assert_eq!(t.n_rows(), 1);
        let _ = ArdaConfig::default();
        let _ = RifsConfig::default();
    }
}
