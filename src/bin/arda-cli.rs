//! `arda-cli` — run the ARDA augmentation pipeline on CSV files.
//!
//! ```text
//! arda-cli --base base.csv --target <column> --repo dir_of_csvs/ \
//!          [--out augmented.csv] [--selector rifs|rf|ftest|mi|all] \
//!          [--plan budget|table|full] [--tr <tau>] [--seed <n>] \
//!          [--cache-tables <n>]
//! ```
//!
//! The repository directory is ingested as a **sharded repository**: every
//! `*.csv` becomes a shard whose header is scanned up front (the manifest)
//! and whose body is streamed in — chunked, quote-aware, parallel on the
//! work budget — only when the pipeline first touches it. `--cache-tables`
//! bounds how many loaded shards stay resident (LRU eviction), so
//! repositories larger than memory still run. The base table is read with
//! the same streaming engine, then candidate joins are discovered, the
//! pipeline runs, and the augmented table (base coreset + selected foreign
//! columns) is written as CSV.

use arda::prelude::*;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    base: PathBuf,
    target: String,
    repo: PathBuf,
    out: Option<PathBuf>,
    selector: String,
    plan: String,
    tr: Option<f64>,
    seed: u64,
    cache_tables: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        base: PathBuf::new(),
        target: String::new(),
        repo: PathBuf::new(),
        out: None,
        selector: "rifs".into(),
        plan: "budget".into(),
        tr: None,
        seed: 0,
        cache_tables: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--base" => args.base = PathBuf::from(value("--base")?),
            "--target" => args.target = value("--target")?,
            "--repo" => args.repo = PathBuf::from(value("--repo")?),
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--selector" => args.selector = value("--selector")?,
            "--plan" => args.plan = value("--plan")?,
            "--tr" => {
                args.tr = Some(
                    value("--tr")?
                        .parse()
                        .map_err(|e| format!("--tr must be a number: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed must be an integer: {e}"))?
            }
            "--cache-tables" => {
                let n: usize = value("--cache-tables")?
                    .parse()
                    .map_err(|e| format!("--cache-tables must be an integer: {e}"))?;
                if n == 0 {
                    return Err("--cache-tables must be at least 1".into());
                }
                args.cache_tables = Some(n);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if args.base.as_os_str().is_empty()
        || args.target.is_empty()
        || args.repo.as_os_str().is_empty()
    {
        return Err(format!("--base, --target and --repo are required\n{USAGE}"));
    }
    Ok(args)
}

const USAGE: &str = "usage: arda-cli --base base.csv --target <column> --repo <dir> \
[--out augmented.csv] [--selector rifs|rf|ftest|mi|all] [--plan budget|table|full] \
[--tr <tau>] [--seed <n>] [--cache-tables <n>]

  --repo <dir>       directory of CSV shards, ingested lazily: headers are
                     scanned up front, bodies stream in (parallel, chunked)
                     on first use by discovery or a join batch
  --cache-tables <n> keep at most <n> loaded shards resident (LRU); default
                     unbounded — use for repositories larger than memory";

fn selector_from(name: &str) -> Result<SelectorKind, String> {
    Ok(match name {
        "rifs" => SelectorKind::Rifs(RifsConfig::default()),
        "rf" => SelectorKind::Ranking(RankingMethod::RandomForest),
        "ftest" => SelectorKind::Ranking(RankingMethod::FTest),
        "mi" => SelectorKind::Ranking(RankingMethod::MutualInfo),
        "all" => SelectorKind::AllFeatures,
        other => return Err(format!("unknown selector {other} (rifs|rf|ftest|mi|all)")),
    })
}

fn plan_from(name: &str) -> Result<JoinPlan, String> {
    Ok(match name {
        "budget" => JoinPlan::Budget { budget: None },
        "table" => JoinPlan::Table,
        "full" => JoinPlan::FullMaterialization,
        other => return Err(format!("unknown plan {other} (budget|table|full)")),
    })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let base = arda::table::read_csv(&args.base).map_err(|e| e.to_string())?;
    base.column(&args.target)
        .map_err(|_| format!("target column `{}` not found in base table", args.target))?;

    let mut repo = Repository::from_dir(&args.repo).map_err(|e| e.to_string())?;
    if let Some(cap) = args.cache_tables {
        repo = repo.with_cache_capacity(cap);
    }
    if repo.is_empty() {
        return Err(format!("no .csv files found in {}", args.repo.display()));
    }
    eprintln!(
        "loaded base ({} rows); indexed {} repository shard(s) (lazy{})",
        base.n_rows(),
        repo.len(),
        match args.cache_tables {
            Some(cap) => format!(", cache {cap}"),
            None => String::new(),
        }
    );
    let config = ArdaConfig {
        selector: selector_from(&args.selector)?,
        join_plan: plan_from(&args.plan)?,
        tr_threshold: args.tr,
        seed: args.seed,
        ..Default::default()
    };
    let report = Arda::new(config)
        .run(&base, &repo, &args.target)
        .map_err(|e| e.to_string())?;

    eprintln!(
        "base score {:.4} → augmented {:.4} ({:+.1}%), {} joins, {:.1}s",
        report.base_score,
        report.augmented_score,
        report.improvement_pct(),
        report.joins_executed,
        report.seconds
    );
    for s in &report.selected {
        eprintln!("  selected {} (from {})", s.column, s.table);
    }

    match args.out {
        Some(path) => {
            let file = std::fs::File::create(&path).map_err(|e| e.to_string())?;
            arda::table::write_csv(&report.augmented, file).map_err(|e| e.to_string())?;
            eprintln!("wrote {}", path.display());
        }
        None => {
            arda::table::write_csv(&report.augmented, std::io::stdout().lock())
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
