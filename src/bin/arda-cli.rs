//! `arda-cli` — run the ARDA augmentation pipeline on CSV files.
//!
//! ```text
//! arda-cli --base base.csv --target <column> --repo dir_of_csvs/ \
//!          [--out augmented.csv] [--selector rifs|rf|ftest|mi|all] \
//!          [--plan budget|table|full] [--tr <tau>] [--seed <n>]
//! ```
//!
//! Reads the base table and every `*.csv` in the repository directory,
//! discovers candidate joins, runs the pipeline and writes the augmented
//! table (base coreset + selected foreign columns) as CSV.

use arda::prelude::*;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    base: PathBuf,
    target: String,
    repo: PathBuf,
    out: Option<PathBuf>,
    selector: String,
    plan: String,
    tr: Option<f64>,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        base: PathBuf::new(),
        target: String::new(),
        repo: PathBuf::new(),
        out: None,
        selector: "rifs".into(),
        plan: "budget".into(),
        tr: None,
        seed: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--base" => args.base = PathBuf::from(value("--base")?),
            "--target" => args.target = value("--target")?,
            "--repo" => args.repo = PathBuf::from(value("--repo")?),
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--selector" => args.selector = value("--selector")?,
            "--plan" => args.plan = value("--plan")?,
            "--tr" => {
                args.tr = Some(
                    value("--tr")?
                        .parse()
                        .map_err(|e| format!("--tr must be a number: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed must be an integer: {e}"))?
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if args.base.as_os_str().is_empty()
        || args.target.is_empty()
        || args.repo.as_os_str().is_empty()
    {
        return Err(format!("--base, --target and --repo are required\n{USAGE}"));
    }
    Ok(args)
}

const USAGE: &str = "usage: arda-cli --base base.csv --target <column> --repo <dir> \
[--out augmented.csv] [--selector rifs|rf|ftest|mi|all] [--plan budget|table|full] \
[--tr <tau>] [--seed <n>]";

fn selector_from(name: &str) -> Result<SelectorKind, String> {
    Ok(match name {
        "rifs" => SelectorKind::Rifs(RifsConfig::default()),
        "rf" => SelectorKind::Ranking(RankingMethod::RandomForest),
        "ftest" => SelectorKind::Ranking(RankingMethod::FTest),
        "mi" => SelectorKind::Ranking(RankingMethod::MutualInfo),
        "all" => SelectorKind::AllFeatures,
        other => return Err(format!("unknown selector {other} (rifs|rf|ftest|mi|all)")),
    })
}

fn plan_from(name: &str) -> Result<JoinPlan, String> {
    Ok(match name {
        "budget" => JoinPlan::Budget { budget: None },
        "table" => JoinPlan::Table,
        "full" => JoinPlan::FullMaterialization,
        other => return Err(format!("unknown plan {other} (budget|table|full)")),
    })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let base = arda::table::read_csv(&args.base).map_err(|e| e.to_string())?;
    base.column(&args.target)
        .map_err(|_| format!("target column `{}` not found in base table", args.target))?;

    let mut tables = Vec::new();
    let entries = std::fs::read_dir(&args.repo)
        .map_err(|e| format!("cannot read repo dir {}: {e}", args.repo.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.extension().and_then(|e| e.to_str()) == Some("csv") {
            tables.push(arda::table::read_csv(&path).map_err(|e| e.to_string())?);
        }
    }
    if tables.is_empty() {
        return Err(format!("no .csv files found in {}", args.repo.display()));
    }
    eprintln!(
        "loaded base ({} rows) + {} repository tables",
        base.n_rows(),
        tables.len()
    );

    let repo = Repository::from_tables(tables);
    let config = ArdaConfig {
        selector: selector_from(&args.selector)?,
        join_plan: plan_from(&args.plan)?,
        tr_threshold: args.tr,
        seed: args.seed,
        ..Default::default()
    };
    let report = Arda::new(config)
        .run(&base, &repo, &args.target)
        .map_err(|e| e.to_string())?;

    eprintln!(
        "base score {:.4} → augmented {:.4} ({:+.1}%), {} joins, {:.1}s",
        report.base_score,
        report.augmented_score,
        report.improvement_pct(),
        report.joins_executed,
        report.seconds
    );
    for s in &report.selected {
        eprintln!("  selected {} (from {})", s.column, s.table);
    }

    match args.out {
        Some(path) => {
            let file = std::fs::File::create(&path).map_err(|e| e.to_string())?;
            arda::table::write_csv(&report.augmented, file).map_err(|e| e.to_string())?;
            eprintln!("wrote {}", path.display());
        }
        None => {
            arda::table::write_csv(&report.augmented, std::io::stdout().lock())
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
