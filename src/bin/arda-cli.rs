//! `arda-cli` — run the ARDA augmentation pipeline on CSV files.
//!
//! ```text
//! arda-cli --base base.csv --target <column> --repo dir_of_shards/ \
//!          [--out augmented.csv] [--selector rifs|rf|ftest|mi|all] \
//!          [--plan budget|table|full] [--tr <tau>] [--seed <n>] \
//!          [--cache-tables <n>] [--save-repo <dir>]
//! ```
//!
//! The repository directory is ingested as a **sharded repository**: every
//! `*.csv` and `*.arda` file becomes a shard whose header is scanned up
//! front (the manifest) and whose body is loaded — CSV streamed chunked
//! and quote-aware, binary shards decoded per column, both parallel on
//! the work budget — only when the pipeline first touches it. A fresh
//! `_catalog.arda` in the directory makes the manifest scan free: the
//! whole index (names, widths, dtypes, row counts) is validated against
//! file mtimes/sizes and reused with zero header reads. `--cache-tables`
//! bounds how many loaded shards stay resident (LRU eviction), so
//! repositories larger than memory still run. `--save-repo <dir>`
//! converts the repository into typed binary shards + catalog at `<dir>`
//! (Timestamps and every other dtype survive exactly; may be used alone,
//! without `--base`/`--target`, as a pure conversion). Otherwise the base
//! table is read with the streaming engine, candidate joins are
//! discovered, the pipeline runs, and the augmented table (base coreset +
//! selected foreign columns) is written as CSV.

use arda::prelude::*;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    base: PathBuf,
    target: String,
    repo: PathBuf,
    out: Option<PathBuf>,
    selector: String,
    plan: String,
    tr: Option<f64>,
    seed: u64,
    cache_tables: Option<usize>,
    save_repo: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        base: PathBuf::new(),
        target: String::new(),
        repo: PathBuf::new(),
        out: None,
        selector: "rifs".into(),
        plan: "budget".into(),
        tr: None,
        seed: 0,
        cache_tables: None,
        save_repo: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--base" => args.base = PathBuf::from(value("--base")?),
            "--target" => args.target = value("--target")?,
            "--repo" => args.repo = PathBuf::from(value("--repo")?),
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--selector" => args.selector = value("--selector")?,
            "--plan" => args.plan = value("--plan")?,
            "--tr" => {
                args.tr = Some(
                    value("--tr")?
                        .parse()
                        .map_err(|e| format!("--tr must be a number: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed must be an integer: {e}"))?
            }
            "--cache-tables" => {
                let n: usize = value("--cache-tables")?
                    .parse()
                    .map_err(|e| format!("--cache-tables must be an integer: {e}"))?;
                if n == 0 {
                    return Err("--cache-tables must be at least 1".into());
                }
                args.cache_tables = Some(n);
            }
            "--save-repo" => args.save_repo = Some(PathBuf::from(value("--save-repo")?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if args.repo.as_os_str().is_empty() {
        return Err(format!("--repo is required\n{USAGE}"));
    }
    // --base and --target come together or not at all; only a --save-repo
    // run may omit the pair (pure conversion). Supplying exactly one is
    // always a usage error — silently skipping the pipeline would let a
    // typo'd invocation exit 0 without the output the caller expected.
    let base_given = !args.base.as_os_str().is_empty();
    let target_given = !args.target.is_empty();
    if base_given != target_given {
        return Err(format!(
            "--base and --target must be given together\n{USAGE}"
        ));
    }
    if !base_given && args.save_repo.is_none() {
        return Err(format!(
            "--base and --target are required (unless only converting with --save-repo)\n{USAGE}"
        ));
    }
    Ok(args)
}

const USAGE: &str = "usage: arda-cli --base base.csv --target <column> --repo <dir> \
[--out augmented.csv] [--selector rifs|rf|ftest|mi|all] [--plan budget|table|full] \
[--tr <tau>] [--seed <n>] [--cache-tables <n>] [--save-repo <dir>]

  --repo <dir>       directory of .csv / .arda shards, ingested lazily:
                     headers are scanned up front (or, when a fresh
                     _catalog.arda covers the directory, skipped entirely),
                     bodies load in parallel on first use by discovery or
                     a join batch
  --cache-tables <n> keep at most <n> loaded shards resident (LRU); default
                     unbounded — use for repositories larger than memory
  --save-repo <dir>  convert the repository to typed binary .arda shards
                     plus a _catalog.arda at <dir>; preserves all dtypes
                     exactly (incl. timestamps, which CSV only keeps via
                     @tick text) and makes later runs start warm. With
                     --save-repo, --base/--target become optional: omit
                     them for a pure conversion run";

fn selector_from(name: &str) -> Result<SelectorKind, String> {
    Ok(match name {
        "rifs" => SelectorKind::Rifs(RifsConfig::default()),
        "rf" => SelectorKind::Ranking(RankingMethod::RandomForest),
        "ftest" => SelectorKind::Ranking(RankingMethod::FTest),
        "mi" => SelectorKind::Ranking(RankingMethod::MutualInfo),
        "all" => SelectorKind::AllFeatures,
        other => return Err(format!("unknown selector {other} (rifs|rf|ftest|mi|all)")),
    })
}

fn plan_from(name: &str) -> Result<JoinPlan, String> {
    Ok(match name {
        "budget" => JoinPlan::Budget { budget: None },
        "table" => JoinPlan::Table,
        "full" => JoinPlan::FullMaterialization,
        other => return Err(format!("unknown plan {other} (budget|table|full)")),
    })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let mut repo = Repository::from_dir(&args.repo).map_err(|e| e.to_string())?;
    if let Some(cap) = args.cache_tables {
        repo = repo.with_cache_capacity(cap);
    }
    if repo.is_empty() {
        return Err(format!(
            "no .csv or .arda files found in {}",
            args.repo.display()
        ));
    }
    eprintln!(
        "indexed {} repository shard(s) ({}; lazy{})",
        repo.len(),
        if repo.catalog_hit() {
            "catalog hit, 0 header reads".to_string()
        } else {
            format!("cold scan, {} header reads", repo.header_scans())
        },
        match args.cache_tables {
            Some(cap) => format!(", cache {cap}"),
            None => String::new(),
        }
    );

    if let Some(out_dir) = &args.save_repo {
        repo.save_dir(out_dir).map_err(|e| e.to_string())?;
        eprintln!(
            "saved {} shard(s) as typed binary .arda + _catalog.arda in {}",
            repo.len(),
            out_dir.display()
        );
        if args.base.as_os_str().is_empty() || args.target.is_empty() {
            return Ok(()); // pure conversion run
        }
    }

    let base = arda::table::read_csv(&args.base).map_err(|e| e.to_string())?;
    base.column(&args.target)
        .map_err(|_| format!("target column `{}` not found in base table", args.target))?;
    eprintln!("loaded base ({} rows)", base.n_rows());
    let config = ArdaConfig {
        selector: selector_from(&args.selector)?,
        join_plan: plan_from(&args.plan)?,
        tr_threshold: args.tr,
        seed: args.seed,
        ..Default::default()
    };
    let report = Arda::new(config)
        .run(&base, &repo, &args.target)
        .map_err(|e| e.to_string())?;

    eprintln!(
        "base score {:.4} → augmented {:.4} ({:+.1}%), {} joins, {:.1}s",
        report.base_score,
        report.augmented_score,
        report.improvement_pct(),
        report.joins_executed,
        report.seconds
    );
    for s in &report.selected {
        eprintln!("  selected {} (from {})", s.column, s.table);
    }

    match args.out {
        Some(path) => {
            let file = std::fs::File::create(&path).map_err(|e| e.to_string())?;
            arda::table::write_csv(&report.augmented, file).map_err(|e| e.to_string())?;
            eprintln!("wrote {}", path.display());
        }
        None => {
            arda::table::write_csv(&report.augmented, std::io::stdout().lock())
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
